//! Consistent-hash routing and shard health for the `regend` cluster.
//!
//! A sharded deployment is N ordinary `regend` instances, each owning
//! the content keys a [`HashRing`] maps to it, behind one proxy (see
//! [`crate::proxy`]). This module is the proxy's model of those peers:
//!
//! * [`HashRing`] — deterministic content-key → shard routing with
//!   virtual nodes. The ring hashes only stable strings (shard indices
//!   and content keys) with FNV-1a, so two processes — or the same
//!   process across runs — always agree on ownership; no `HashMap`
//!   iteration order leaks in.
//! * [`ShardHealth`] — the per-shard state machine
//!   (healthy → suspect → down) fed by active probes and passive fetch
//!   outcomes.
//! * [`Cluster`] — the fetch path: pooled keep-alive connections per
//!   shard, deterministic network-fault injection on every hop
//!   ([`NetFaultPlan`]), CRC verification of shard response bodies
//!   (a truncated or corrupted hop becomes a *detected* transient
//!   failure, never silent corruption), bounded retry with the
//!   client's seeded backoff, and health accounting.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bench::client::{backoff_delay, Connection, HttpResponse};
use spectrebench::obs::ShardState;
use spectrebench::{crc32, EventBus, EventKind, NetFaultKind, NetFaultPlan};

use crate::core::lock;

/// Virtual nodes per shard on the ring. 64 points per shard keeps the
/// key split within a few percent of even for small clusters while the
/// ring stays tiny (4 shards = 256 points).
pub const VNODES: usize = 64;

/// Consecutive failures that move a shard from suspect to down.
pub const DOWN_THRESHOLD: u32 = 3;

/// FNV-1a over `bytes`, finished with an xorshift-multiply scramble so
/// nearby keys spread over the whole u64 range.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// A consistent-hash ring: each shard contributes [`VNODES`] points,
/// and a key belongs to the shard owning the first point at or after
/// the key's hash (wrapping).
///
/// Everything is derived from stable strings and sorted `Vec`s, so the
/// assignment is a pure function of the shard set — identical across
/// processes, machines, and runs.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, shard index)`, sorted by hash.
    points: Vec<(u64, usize)>,
    shards: Vec<usize>,
}

impl HashRing {
    /// A ring over an explicit shard set (used by the removal property
    /// tests; production rings are contiguous `0..n`).
    pub fn with_shards(shards: &[usize]) -> HashRing {
        let mut points = Vec::with_capacity(shards.len() * VNODES);
        for &shard in shards {
            for vnode in 0..VNODES {
                points.push((ring_hash(format!("shard-{shard}/vnode-{vnode}").as_bytes()), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards: shards.to_vec() }
    }

    /// A ring over shards `0..n`.
    pub fn new(n: usize) -> HashRing {
        let shards: Vec<usize> = (0..n).collect();
        HashRing::with_shards(&shards)
    }

    /// The shard set this ring was built over.
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// The shard owning `content_key`. Ownership never consults shard
    /// health: a down shard keeps its ranges (failover covers the gap),
    /// so cache placement stays stable across blips.
    pub fn owner(&self, content_key: &str) -> usize {
        let h = ring_hash(content_key.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[i % self.points.len()];
        shard
    }
}

/// The proxy's health record for one shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardHealth {
    /// Current state-machine position.
    pub state: ShardState,
    /// Consecutive failures since the last success.
    pub consecutive_failures: u32,
    /// When the last probe or fetch finished (None before first
    /// contact).
    pub last_seen: Option<Instant>,
}

impl ShardHealth {
    fn new() -> ShardHealth {
        ShardHealth { state: ShardState::Healthy, consecutive_failures: 0, last_seen: None }
    }

    /// Feeds one observation through the state machine; returns the new
    /// state if it changed. Any success snaps back to healthy; one
    /// failure is suspect; [`DOWN_THRESHOLD`] consecutive failures are
    /// down.
    fn record(&mut self, ok: bool, now: Instant) -> Option<ShardState> {
        self.last_seen = Some(now);
        let next = if ok {
            self.consecutive_failures = 0;
            ShardState::Healthy
        } else {
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            if self.consecutive_failures >= DOWN_THRESHOLD {
                ShardState::Down
            } else {
                ShardState::Suspect
            }
        };
        if next == self.state {
            return None;
        }
        self.state = next;
        Some(next)
    }
}

/// One shard as the proxy sees it: its address, health, and a pool of
/// keep-alive connections (workers check one out per fetch).
#[derive(Debug)]
pub struct ShardEndpoint {
    /// `host:port` of the shard's listener.
    pub addr: String,
    health: Mutex<ShardHealth>,
    pool: Mutex<Vec<Connection>>,
    /// Monotonic per-endpoint probe counter (the probe hop's attempt
    /// axis for fault injection).
    probes: AtomicU32,
}

/// A snapshot of one shard's health, for `/healthz` and tests.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Listener address.
    pub addr: String,
    /// State-machine position.
    pub state: ShardState,
    /// Seconds since the last probe/fetch finished (None before first
    /// contact).
    pub last_seen_secs: Option<f64>,
}

/// The proxy's cluster model: ring + endpoints + fetch machinery.
#[derive(Debug)]
pub struct Cluster {
    ring: HashRing,
    endpoints: Vec<ShardEndpoint>,
    net_inject: Option<NetFaultPlan>,
    fetch_timeout: Duration,
    fetch_attempts: u32,
}

impl Cluster {
    /// Builds the model over `addrs` (shard `i` is `addrs[i]`).
    pub fn new(
        addrs: &[String],
        net_inject: Option<NetFaultPlan>,
        fetch_timeout: Duration,
        fetch_attempts: u32,
    ) -> Cluster {
        Cluster {
            ring: HashRing::new(addrs.len()),
            endpoints: addrs
                .iter()
                .map(|addr| ShardEndpoint {
                    addr: addr.clone(),
                    health: Mutex::new(ShardHealth::new()),
                    pool: Mutex::new(Vec::new()),
                    probes: AtomicU32::new(0),
                })
                .collect(),
            net_inject,
            fetch_timeout,
            fetch_attempts: fetch_attempts.max(1),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True when the cluster has no shards (never in practice; the
    /// config layer rejects it).
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The routing ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shard owning `content_key`.
    pub fn owner(&self, content_key: &str) -> usize {
        self.ring.owner(content_key)
    }

    /// Current health of `shard`.
    pub fn state(&self, shard: usize) -> ShardState {
        lock(&self.endpoints[shard].health).state
    }

    /// Health snapshot of every shard, in index order.
    pub fn statuses(&self) -> Vec<ShardStatus> {
        let now = Instant::now();
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| {
                let h = *lock(&ep.health);
                ShardStatus {
                    shard: i,
                    addr: ep.addr.clone(),
                    state: h.state,
                    last_seen_secs: h.last_seen.map(|t| now.duration_since(t).as_secs_f64()),
                }
            })
            .collect()
    }

    /// Records one hop outcome into the shard's health machine and
    /// emits the fetch/state events.
    fn record(&self, bus: &EventBus, shard: usize, path: &str, ok: bool) {
        let changed = lock(&self.endpoints[shard].health).record(ok, Instant::now());
        bus.emit("regend", path, "", 0, EventKind::ShardFetch { shard, ok });
        if let Some(state) = changed {
            bus.emit("regend", path, "", 0, EventKind::ShardStateChanged { shard, state });
        }
    }

    /// One fetch attempt against `shard`, with fault injection applied
    /// *before* the wire (drop/stall) or *after* it (truncate/
    /// corrupt-byte, which damage the received bytes so the CRC check
    /// must catch them). On error the bool reports transience.
    fn fetch_once(
        &self,
        bus: &EventBus,
        shard: usize,
        path: &str,
        attempt: u32,
    ) -> Result<HttpResponse, (bool, String)> {
        let injected = self.net_inject.as_ref().and_then(|p| p.inject(shard, path, attempt));
        if let Some(kind) = injected {
            bus.emit("regend", path, "", attempt, EventKind::NetFaultInjected { fault: kind });
        }
        match injected {
            Some(NetFaultKind::Drop) => {
                return Err((true, format!("injected drop on shard {shard} hop {path}")));
            }
            Some(NetFaultKind::Stall) => {
                // A stalled peer looks like a timeout: burn a bounded
                // wait, then fail transiently.
                std::thread::sleep(Duration::from_millis(50));
                return Err((true, format!("injected stall on shard {shard} hop {path}")));
            }
            _ => {}
        }
        let ep = &self.endpoints[shard];
        let mut conn = lock(&ep.pool)
            .pop()
            .unwrap_or_else(|| Connection::new(&ep.addr, self.fetch_timeout));
        // An errored connection is dropped here, not pooled.
        let mut response = conn.get_classified(path)?;
        match injected {
            Some(NetFaultKind::Truncate) => {
                let cut = response.body.len() / 2;
                response.body.truncate(cut);
            }
            Some(NetFaultKind::CorruptByte) => {
                if let Some(b) = response.body.first_mut() {
                    *b ^= 0x20;
                }
            }
            _ => {}
        }
        // Verify the body against the shard's checksum. Damage on the
        // wire (injected or real) becomes a detected transient failure
        // here — by construction it can never reach a client.
        if let Some(declared) = response.header("x-regend-crc32") {
            let declared = declared.to_string();
            let actual = format!("{:08x}", crc32(&response.body));
            if declared != actual {
                // The socket itself is clean (the damage is in our
                // copy), so the connection is still poolable.
                lock(&ep.pool).push(conn);
                return Err((
                    true,
                    format!(
                        "shard {shard} body checksum mismatch on {path}: got {actual}, declared {declared}"
                    ),
                ));
            }
        }
        lock(&ep.pool).push(conn);
        Ok(response)
    }

    /// Fetches `path` from `shard` with bounded retry + backoff.
    /// A shard already marked down is skipped outright (the caller
    /// fails over); otherwise up to `fetch_attempts` tries, sleeping
    /// the client's seeded backoff between transient failures.
    pub fn fetch(&self, bus: &EventBus, shard: usize, path: &str) -> Result<HttpResponse, String> {
        if self.state(shard) == ShardState::Down {
            return Err(format!("shard {shard} is down"));
        }
        let mut last = String::new();
        for attempt in 0..self.fetch_attempts {
            match self.fetch_once(bus, shard, path, attempt) {
                Ok(r) => {
                    self.record(bus, shard, path, true);
                    return Ok(r);
                }
                Err((transient, e)) => {
                    self.record(bus, shard, path, false);
                    last = e;
                    if !transient {
                        break;
                    }
                    if attempt + 1 < self.fetch_attempts {
                        let url = format!("http://{}{}", self.endpoints[shard].addr, path);
                        std::thread::sleep(backoff_delay(&url, attempt));
                    }
                }
            }
        }
        Err(format!(
            "shard {shard} fetch failed after {} attempt(s): {last}",
            self.fetch_attempts
        ))
    }

    /// Probes every shard's `/healthz` once, feeding the state
    /// machines. Down shards are probed too — that is how a resumed
    /// shard comes back. Probe hops run through the same injection and
    /// accounting as data hops.
    pub fn probe_all(&self, bus: &EventBus) {
        for shard in 0..self.endpoints.len() {
            let attempt = self.endpoints[shard].probes.fetch_add(1, Ordering::Relaxed);
            let ok = matches!(
                self.fetch_once(bus, shard, "/healthz", attempt),
                Ok(r) if r.status == 200
            );
            self.record(bus, shard, "/healthz", ok);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_owner_is_stable_and_covers_all_shards() {
        let ring = HashRing::new(4);
        let keys: Vec<String> = (0..500).map(|i| format!("cpu{i}/w/[cfg-{i}]")).collect();
        let owners: Vec<usize> = keys.iter().map(|k| ring.owner(k)).collect();
        // Stable on a fresh, identically-built ring.
        let ring2 = HashRing::new(4);
        let owners2: Vec<usize> = keys.iter().map(|k| ring2.owner(k)).collect();
        assert_eq!(owners, owners2);
        // Every shard owns something (64 vnodes over 500 keys).
        for shard in 0..4 {
            assert!(owners.contains(&shard), "shard {shard} owns no keys");
        }
    }

    #[test]
    fn health_machine_escalates_and_snaps_back() {
        let mut h = ShardHealth::new();
        let t = Instant::now();
        assert_eq!(h.record(false, t), Some(ShardState::Suspect));
        assert_eq!(h.record(false, t), None, "still suspect at 2 failures");
        assert_eq!(h.record(false, t), Some(ShardState::Down));
        assert_eq!(h.record(false, t), None, "stays down");
        assert_eq!(h.record(true, t), Some(ShardState::Healthy), "one success recovers");
        assert_eq!(h.consecutive_failures, 0);
    }

    #[test]
    fn down_shard_is_skipped_without_a_wire_attempt() {
        // Point the endpoint at a dead port; after DOWN_THRESHOLD
        // failures, fetch() must answer instantly from the state
        // machine instead of burning connect timeouts.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cluster =
            Cluster::new(&[dead], None, Duration::from_millis(200), 1);
        let bus = EventBus::new();
        for _ in 0..DOWN_THRESHOLD {
            assert!(cluster.fetch(&bus, 0, "/healthz").is_err());
        }
        assert_eq!(cluster.state(0), ShardState::Down);
        let start = Instant::now();
        let err = cluster.fetch(&bus, 0, "/healthz").unwrap_err();
        assert!(err.contains("is down"), "{err}");
        assert!(start.elapsed() < Duration::from_millis(50), "no wire attempt");
    }

    #[test]
    fn injected_drop_counts_as_a_failed_hop() {
        let plan = NetFaultPlan::new().fail_hop(Some(0), "", NetFaultKind::Drop, None);
        let cluster = Cluster::new(
            &["127.0.0.1:1".to_string()],
            Some(plan),
            Duration::from_millis(200),
            2,
        );
        let bus = EventBus::new();
        let err = cluster.fetch(&bus, 0, "/cell/x").unwrap_err();
        assert!(err.contains("injected drop"), "{err}");
        let events = bus.snapshot();
        let drops = events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::NetFaultInjected { fault: NetFaultKind::Drop })
            })
            .count();
        assert_eq!(drops, 2, "both attempts injected");
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::ShardStateChanged { shard: 0, state: ShardState::Suspect }
        )));
    }
}
