//! The cluster front end: route slow work to the owning shard, fail
//! over to local recompute when the shard cannot answer.
//!
//! A proxy `regend` runs the same routing/core as a plain server —
//! `Core::route` still answers cache hits and validation inline — but
//! its [`Core::execute`] lands here instead of on the local executor.
//! Every piece of slow work has a single *owner* shard determined by
//! the consistent-hash ring ([`crate::shard::HashRing`]): artifacts
//! hash by name, cells by content key, and `/results` fans out one
//! fetch per artifact in paper order and reassembles the document.
//! Fetched renderings land in the proxy's own rendered cache, so a
//! cross-shard cache miss is filled from the shard that already
//! journalled the work instead of being recomputed.
//!
//! Failure handling is layered, worst case last:
//!
//! 1. the hop itself retries with seeded backoff
//!    ([`Cluster::fetch`]), absorbing transient faults;
//! 2. a hop that stays broken — or a shard already marked down — fails
//!    over to the proxy's local executor, which recomputes the same
//!    deterministic bytes (`ShardFailover` event, `X-Regend-Shard-
//!    Degraded` header);
//! 3. a down shard additionally stamps `Retry-After: 1`, telling
//!    clients the cluster is degraded and when to try again.
//!
//! Silent corruption is structurally excluded: shard bodies carry
//! `X-Regend-Crc32`, verified on receipt — a damaged hop is a
//! *detected* transient failure that re-enters layer 1.

use bench::Artifact;
use spectrebench::obs::{EventKind, ShardState};

use crate::core::{artifact_response, cell_json_response, lock, Core, Rendered, SlowWork};
use crate::http::{percent_encode_path, Response};
use crate::shard::Cluster;

/// Runs one piece of slow work through the cluster.
pub(crate) fn execute(core: &Core, cluster: &Cluster, work: &SlowWork, path: &str) -> Response {
    match work {
        SlowWork::Artifact { artifact, quick } => {
            let (entry, failover) = fill_artifact(core, cluster, *artifact, *quick, path);
            let resp = match entry {
                Ok(r) => artifact_response(&r, *quick),
                Err(e) => {
                    Response::text(500, format!("regend: {} failed: {e}\n", artifact.name()))
                }
            };
            degrade(resp, cluster, &failover.into_iter().collect::<Vec<_>>())
        }
        SlowWork::Results { quick } => results_document(core, cluster, *quick, path),
        SlowWork::Cell { artifact: _, experiment, content_key, seed, quick } => {
            cell(core, cluster, work, experiment, content_key, *seed, *quick, path)
        }
    }
}

/// Obtains one artifact rendering: proxy rendered cache, then the
/// owning shard, then local recompute. Returns the entry plus the
/// shard index if layer 2 (failover) had to answer.
fn fill_artifact(
    core: &Core,
    cluster: &Cluster,
    artifact: Artifact,
    quick: bool,
    path: &str,
) -> (Result<Rendered, String>, Option<usize>) {
    if let Some(r) = lock(&core.rendered).get(&(artifact.name(), quick)).cloned() {
        core.bus.emit(artifact.name(), path, "", 0, EventKind::ArtifactCacheHit);
        return (Ok(r), None);
    }
    let shard = cluster.owner(artifact.name());
    let hop = format!("/artifact/{}?quick={}", artifact.name(), u32::from(quick));
    match cluster.fetch(&core.bus, shard, &hop) {
        Ok(resp) if resp.status == 200 => {
            let degraded = resp.header("x-regend-degraded").is_some();
            let rendered = Rendered { body: resp.body.into(), degraded };
            lock(&core.rendered).insert((artifact.name(), quick), rendered.clone());
            (Ok(rendered), None)
        }
        // A non-200 from a live shard (draining 503, artifact failure
        // 500) and a dead hop both take the same exit: recompute on
        // the proxy's own executor. The bytes are deterministic, so
        // failover cannot change what a client reads — only how long
        // it waits.
        Ok(_) | Err(_) => {
            core.bus.emit(artifact.name(), path, "", 0, EventKind::ShardFailover { shard });
            (core.obtain(artifact, quick, path), Some(shard))
        }
    }
}

/// `/results` on the proxy: one owner fetch per artifact, reassembled
/// in paper order — byte-identical to a single server's document.
fn results_document(core: &Core, cluster: &Cluster, quick: bool, path: &str) -> Response {
    let mut body = Vec::new();
    let mut failures = 0u32;
    let mut failovers: Vec<usize> = Vec::new();
    for artifact in Artifact::ALL {
        let (entry, failover) = fill_artifact(core, cluster, artifact, quick, path);
        if let Some(shard) = failover {
            if !failovers.contains(&shard) {
                failovers.push(shard);
            }
        }
        match entry {
            Ok(r) => body.extend_from_slice(&r.body),
            Err(_) => {
                failures += 1;
                body.extend_from_slice(
                    format!("== {} == FAILED\n\n", artifact.caption()).as_bytes(),
                );
            }
        }
    }
    let body: std::sync::Arc<[u8]> = body.into();
    if failures == 0 {
        lock(&core.results).insert(quick, std::sync::Arc::clone(&body));
    }
    let mut resp = Response::shared(200, body);
    if failures > 0 {
        resp = resp.with_header("X-Regend-Failures", failures.to_string());
    }
    degrade(resp, cluster, &failovers)
}

/// `/cell/...` on the proxy: fetch from the content key's owner, pass
/// the answer through; recompute locally on a broken hop.
#[allow(clippy::too_many_arguments)]
fn cell(
    core: &Core,
    cluster: &Cluster,
    work: &SlowWork,
    experiment: &str,
    content_key: &str,
    seed: u64,
    quick: bool,
    path: &str,
) -> Response {
    let shard = cluster.owner(content_key);
    let hop = format!(
        "/cell/{}/{}?seed={seed}&quick={}",
        experiment,
        percent_encode_path(content_key),
        u32::from(quick)
    );
    match cluster.fetch(&core.bus, shard, &hop) {
        Ok(resp) if resp.status == 200 => {
            cell_json_response(String::from_utf8_lossy(&resp.body).into_owned())
        }
        // Client-side errors (bad seed, unknown key) are the shard's
        // verdict on the request, not a shard failure — pass them
        // through verbatim.
        Ok(resp) if resp.status < 500 => {
            Response::text(resp.status, String::from_utf8_lossy(&resp.body).into_owned())
        }
        Ok(_) | Err(_) => {
            core.bus.emit(experiment, path, content_key, 0, EventKind::ShardFailover { shard });
            degrade(core.execute_local(work, path), cluster, &[shard])
        }
    }
}

/// Stamps degraded-mode accounting onto a response that needed
/// failover: which shards were bypassed, and `Retry-After: 1` when any
/// of them is currently down (clients should expect elevated latency
/// until the prober sees it recover).
fn degrade(resp: Response, cluster: &Cluster, failovers: &[usize]) -> Response {
    if failovers.is_empty() {
        return resp;
    }
    let list =
        failovers.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
    let mut resp = resp.with_header("X-Regend-Shard-Degraded", list);
    if failovers.iter().any(|&s| cluster.state(s) == ShardState::Down) {
        resp = resp.with_header("Retry-After", "1");
    }
    resp
}
