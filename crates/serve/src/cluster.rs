//! Booting a whole `regend` cluster inside one process.
//!
//! Production deployments run N shard processes plus a proxy process
//! (see the CI `cluster-soak` job); tests and `regend --shards N` boot
//! the same topology in-process: N [`Server`]s — each with its own
//! epoll loop, executor, and journal — plus one proxy server whose
//! [`ServerConfig::shard_addrs`] points at them. The shards are real
//! network peers of the proxy (loopback TCP), so every cross-shard hop
//! crosses a socket and is subject to [`NetFaultPlan`] injection.
//!
//! [`NetFaultPlan`]: spectrebench::NetFaultPlan

use std::thread::JoinHandle;

use crate::core::{RunSummary, ServerConfig};
use crate::server::{Server, ServerHandle};

/// One booted shard: its index, where it listens, and how to stop it.
pub struct ShardInstance {
    /// Shard index (position in the proxy's address list).
    pub index: usize,
    /// The shard's listener address (`127.0.0.1:<port>`).
    pub addr: String,
    /// Drain handle.
    pub handle: ServerHandle,
    /// The serving thread; joins to the shard's run counters.
    pub join: JoinHandle<std::io::Result<RunSummary>>,
}

/// Derives shard `i`'s config from the cluster base config: same
/// workload knobs, its own port (0 = ephemeral), its own journal
/// (`<base>-shard<i>`), and no cluster fields of its own — a shard is
/// a plain server.
pub fn shard_config(base: &ServerConfig, i: usize) -> ServerConfig {
    let mut cfg = base.clone();
    cfg.addr = "127.0.0.1:0".to_string();
    cfg.journal = base.journal.as_ref().map(|p| {
        let mut os = p.clone().into_os_string();
        os.push(format!("-shard{i}"));
        std::path::PathBuf::from(os)
    });
    cfg.shard_addrs = Vec::new();
    cfg.net_inject = None;
    cfg
}

/// Derives the proxy's config: the base config pointed at `addrs`,
/// with no journal of its own (cells are journalled where they are
/// computed — on the shards; the proxy's executor only runs on
/// failover).
pub fn proxy_config(base: &ServerConfig, addrs: Vec<String>) -> ServerConfig {
    let mut cfg = base.clone();
    cfg.shard_addrs = addrs;
    cfg.journal = None;
    cfg
}

/// Boots `n` shards derived from `base`, each serving on its own
/// thread. Returns them in index order; pass their addresses to
/// [`proxy_config`].
pub fn boot_shards(base: &ServerConfig, n: usize) -> std::io::Result<Vec<ShardInstance>> {
    let mut shards = Vec::with_capacity(n);
    for index in 0..n {
        let server = Server::bind(shard_config(base, index))?;
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        shards.push(ShardInstance { index, addr, handle, join });
    }
    Ok(shards)
}
