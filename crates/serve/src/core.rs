//! The serving core shared by both front ends.
//!
//! PR 8 split `regend` into a *front end* (how bytes move: the
//! event-driven keep-alive loop in [`crate::server`], or the frozen
//! thread-per-connection baseline in [`crate::baseline`]) and this
//! *core* (what the bytes say). The core owns the three deduplication
//! layers from PR 5 — rendered-artifact cache, single-flight group,
//! content-addressed executor cell cache — plus routing, validation,
//! and the run counters, so the two front ends cannot drift: byte-for-
//! byte, a response depends only on the request, never on which
//! acceptor model carried it. `tests/serve_determinism.rs` pins that.
//!
//! Routing is split by cost. [`Core::route`] answers everything that
//! is O(1) — health, metrics, index pages, validation errors, *cache
//! hits* — and classifies the rest as [`SlowWork`]. The event loop
//! runs `route` inline on the loop thread (a cache hit costs one
//! `HashMap` probe and then writes pre-rendered bytes zero-copy) and
//! ships `SlowWork` to the dispatch pool; the baseline runs both on
//! its per-connection thread.

// regend serves results; a request must never take down the process.
#![allow(clippy::result_large_err)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bench::{render_artifact_block, Artifact, ArtifactResult};
use spectrebench::obs::metrics::prometheus_text;
use spectrebench::obs::EventKind;
use spectrebench::{
    cell_value_json, crc32, default_jobs, EventBus, Executor, FaultPlan, FlightOutcome, Harness,
    HarnessStats, Journal, NetFaultPlan, RetryPolicy, SingleFlight,
};

use crate::http::{percent_encode_path, Request, Response};
use crate::shard::Cluster;

pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Configuration for one server (either front end).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7979` (port 0 for tests).
    pub addr: String,
    /// Worker threads executing slow (cold-cache) requests.
    pub workers: usize,
    /// Dispatch-queue capacity; a full queue answers 429.
    pub queue_capacity: usize,
    /// Serve the quick workload variants (tests; the golden renderings
    /// are the full variants).
    pub quick: bool,
    /// Executor worker threads per plan (`None`: `REGEN_JOBS` / machine
    /// default).
    pub jobs: Option<usize>,
    /// Attempts per measurement cell (`None`: the standard 3).
    pub retries: Option<u32>,
    /// Deterministic fault injection on the backing executor (tests).
    pub inject: Option<FaultPlan>,
    /// Journal completed cells here (also the target of injected
    /// torn-write/journal-corrupt I/O faults).
    pub journal: Option<std::path::PathBuf>,
    /// Default per-request deadline; `None` means no deadline unless
    /// the request carries `?deadline_ms=`.
    pub default_deadline: Option<Duration>,
    /// Socket read/write timeout for the blocking baseline front end.
    pub io_timeout: Duration,
    /// How long a keep-alive connection may sit without making
    /// progress (no bytes read or written) before the event loop
    /// reaps it.
    pub idle_timeout: Duration,
    /// Shard listener addresses. Empty: this instance answers from its
    /// own executor (a plain server, or one shard of a cluster).
    /// Non-empty: this instance is the cluster proxy — slow work is
    /// routed to the owning shard and only recomputed locally on
    /// failover.
    pub shard_addrs: Vec<String>,
    /// Deterministic network-fault injection on the proxy↔shard hop
    /// (tests/campaigns; the executor-level `inject` stays separate).
    pub net_inject: Option<NetFaultPlan>,
    /// How often the proxy probes each shard's `/healthz`.
    pub probe_interval: Duration,
    /// Socket timeout for one proxy→shard fetch.
    pub fetch_timeout: Duration,
    /// Fetch attempts per shard hop before the proxy fails over to
    /// local recompute.
    pub fetch_attempts: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7979".to_string(),
            workers: 4,
            queue_capacity: 128,
            quick: false,
            jobs: None,
            retries: None,
            inject: None,
            journal: None,
            default_deadline: None,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            shard_addrs: Vec::new(),
            net_inject: None,
            probe_interval: Duration::from_millis(100),
            fetch_timeout: Duration::from_secs(10),
            fetch_attempts: 3,
        }
    }
}

/// A rendered artifact held in the serving cache: the exact block the
/// CLI prints (`== caption ==\n<text>\n`) as shared bytes the
/// connections write zero-copy, plus its degraded flag.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// The response body (shared, immutable).
    pub body: Arc<[u8]>,
    /// Whether any attribution slice had to be bridged.
    pub degraded: bool,
}

/// Outcome of obtaining an artifact: the rendering or the error text.
type ArtifactEntry = Result<Rendered, String>;

/// End-of-run counters, reported by `regend` at exit.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunSummary {
    /// Requests admitted (answered inline or dispatched).
    pub admitted: u64,
    /// Requests rejected with 429.
    pub rejected: u64,
    /// Responses written for admitted requests (any status).
    pub served: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections that vanished mid-request or mid-response.
    pub disconnects: u64,
    /// Connections reaped by the idle/stall deadline.
    pub idle_timeouts: u64,
    /// Executor counters at drain time.
    pub stats: HarnessStats,
}

/// Work too slow for the event-loop thread: anything that may execute
/// experiment plans. Dispatched to the worker pool (event front end)
/// or run inline (baseline front end).
#[derive(Debug, Clone)]
pub enum SlowWork {
    /// `GET /artifact/<name>` missing the rendered cache.
    Artifact {
        /// The artifact to regenerate.
        artifact: Artifact,
        /// Quick-variant flag after `?quick=` resolution.
        quick: bool,
    },
    /// `GET /results` missing the whole-document cache.
    Results {
        /// Quick-variant flag after `?quick=` resolution.
        quick: bool,
    },
    /// `GET /cell/...` missing the executor cell cache.
    Cell {
        /// The artifact whose sweep owns the cell.
        artifact: Artifact,
        /// The experiment segment as the client wrote it (echoed in
        /// the not-found hint; `ablations`/`smt` both map onto the
        /// discussion artifact).
        experiment: String,
        /// The content key within that sweep.
        content_key: String,
        /// The seed (only 0 is golden-comparable, but cells accept any).
        seed: u64,
        /// Quick-variant flag after `?quick=` resolution.
        quick: bool,
    },
}

/// What `route` decided about one request.
pub enum Action {
    /// Fully answered on the routing thread (fast path / cache hit).
    Done(Response),
    /// Needs the executor: subject to admission control and dispatch.
    Slow(SlowWork),
    /// `POST /shutdown`: the front end starts draining, then writes
    /// this response.
    StartDrain(Response),
}

/// The shared serving core (see module docs).
pub struct Core {
    /// The resolved configuration.
    pub cfg: ServerConfig,
    /// The shared executor (content-addressed cell cache inside).
    pub exec: Executor,
    /// Event bus feeding `/metrics` and trace exports.
    pub bus: Arc<EventBus>,
    /// The shard cluster when this instance is the proxy front end
    /// (see [`crate::proxy`]); `None` for plain servers and shards.
    pub cluster: Option<Cluster>,
    flights: SingleFlight<ArtifactEntry>,
    pub(crate) rendered: Mutex<HashMap<(&'static str, bool), Rendered>>,
    /// `(artifact, quick)` pairs whose sweep ran on *this* executor, so
    /// its cell cache holds their values. A proxy's rendered cache can
    /// be filled from shard bytes instead, which satisfy `/artifact`
    /// and `/results` but carry no cell values — `/cell` failover must
    /// consult this, not the rendered cache.
    swept: Mutex<HashSet<(&'static str, bool)>>,
    pub(crate) results: Mutex<HashMap<bool, Arc<[u8]>>>,
    /// Drain flag (SIGTERM, `POST /shutdown`, or a handle).
    pub draining: AtomicBool,
    /// Requests admitted.
    pub admitted: AtomicU64,
    /// Requests rejected with 429.
    pub rejected: AtomicU64,
    /// Responses written for admitted requests.
    pub served: AtomicU64,
    /// Admitted requests not yet answered.
    pub in_flight: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Mid-request/mid-response disconnects.
    pub disconnects: AtomicU64,
    /// Idle/stall reaps.
    pub idle_timeouts: AtomicU64,
}

impl Core {
    /// Builds the executor stack from `cfg` (no sockets, no threads).
    pub fn new(cfg: ServerConfig) -> std::io::Result<Core> {
        let bus = Arc::new(EventBus::new());
        let mut harness = Harness::new();
        if let Some(plan) = &cfg.inject {
            harness = harness.with_plan(plan.clone());
        }
        if let Some(n) = cfg.retries {
            let mut retry = RetryPolicy::standard();
            retry.max_attempts = n.max(1);
            harness = harness.with_retry(retry);
        }
        let mut exec = Executor::new(harness)
            .with_jobs(cfg.jobs.unwrap_or_else(default_jobs))
            .with_obs(Arc::clone(&bus));
        if let Some(path) = &cfg.journal {
            exec = exec.with_journal(Journal::open(path)?);
        }
        let cluster = if cfg.shard_addrs.is_empty() {
            None
        } else {
            Some(Cluster::new(
                &cfg.shard_addrs,
                cfg.net_inject.clone(),
                cfg.fetch_timeout,
                cfg.fetch_attempts,
            ))
        };
        Ok(Core {
            cfg,
            exec,
            bus,
            cluster,
            flights: SingleFlight::new(),
            rendered: Mutex::new(HashMap::new()),
            swept: Mutex::new(HashSet::new()),
            results: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            idle_timeouts: AtomicU64::new(0),
        })
    }

    /// True once drain has started.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// The run counters as of now.
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            admitted: self.admitted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            connections: self.connections.load(Ordering::SeqCst),
            disconnects: self.disconnects.load(Ordering::SeqCst),
            idle_timeouts: self.idle_timeouts.load(Ordering::SeqCst),
            stats: self.exec.stats(),
        }
    }

    /// The effective deadline for one request.
    pub fn request_deadline(&self, request: &Request) -> Option<Duration> {
        if let Some(ms) = request.query_param("deadline_ms") {
            if let Ok(ms) = ms.parse::<u64>() {
                return Some(Duration::from_millis(ms));
            }
        }
        self.cfg.default_deadline
    }

    /// Routes a parsed request: answer it now, or classify the slow
    /// work. `queue_depth` is the front end's current dispatch depth
    /// (the baseline, which runs slow work inline, passes 0).
    pub fn route(&self, request: &Request, queue_depth: usize) -> (&'static str, Action) {
        let segments: Vec<&str> =
            request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => ("healthz", Action::Done(self.healthz(queue_depth))),
            ("GET", ["metrics"]) => ("metrics", Action::Done(self.metrics())),
            ("GET", ["artifacts"]) => ("artifacts", Action::Done(artifact_index())),
            ("GET", ["results"]) => ("results", self.route_results(request)),
            ("GET", ["artifact", name]) => ("artifact", self.route_artifact(request, name)),
            ("GET", ["cell", experiment, rest @ ..]) if !rest.is_empty() => {
                ("cell", self.route_cell(request, experiment, &rest.join("/")))
            }
            ("POST", ["shutdown"]) => {
                ("shutdown", Action::StartDrain(Response::text(200, "draining\n")))
            }
            ("GET", ["shutdown"]) => (
                "shutdown",
                Action::Done(Response::text(405, "regend: shutdown requires POST\n")),
            ),
            ("GET", _) => ("error", Action::Done(Response::text(404, endpoint_index()))),
            _ => ("error", Action::Done(Response::text(405, "regend: method not allowed\n"))),
        }
    }

    /// Runs one piece of classified slow work to completion. A proxy
    /// core routes it to the owning shard (with failover back to the
    /// local executor); a plain core runs it locally.
    pub fn execute(&self, work: &SlowWork, path: &str) -> Response {
        match &self.cluster {
            Some(cluster) => crate::proxy::execute(self, cluster, work, path),
            None => self.execute_local(work, path),
        }
    }

    /// Runs slow work on this instance's own executor.
    pub(crate) fn execute_local(&self, work: &SlowWork, path: &str) -> Response {
        match work {
            SlowWork::Artifact { artifact, quick } => match self.obtain(*artifact, *quick, path) {
                Ok(r) => artifact_response(&r, *quick),
                Err(e) => {
                    Response::text(500, format!("regend: {} failed: {e}\n", artifact.name()))
                }
            },
            SlowWork::Results { quick } => self.results_document(*quick, path),
            SlowWork::Cell { artifact, experiment, content_key, seed, quick } => {
                self.cell_response(*artifact, experiment, content_key, *seed, *quick, path)
            }
        }
    }

    fn healthz(&self, queue_depth: usize) -> Response {
        let status = if self.is_draining() { "draining" } else { "ok" };
        let mut body = format!(
            "{{\"status\":\"{}\",\"queue_depth\":{},\"in_flight\":{},\"cache_cells\":{},\"artifacts_cached\":{}",
            status,
            queue_depth,
            self.in_flight.load(Ordering::SeqCst),
            self.exec.cache_len(),
            lock(&self.rendered).len()
        );
        // A proxy also reports per-shard readiness: id, address,
        // state-machine position, and seconds since last contact.
        if let Some(cluster) = &self.cluster {
            body.push_str(",\"shards\":[");
            for (i, s) in cluster.statuses().iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let age = match s.last_seen_secs {
                    Some(a) => format!("{a:.3}"),
                    None => "null".to_string(),
                };
                body.push_str(&format!(
                    "{{\"shard\":{},\"addr\":\"{}\",\"state\":\"{}\",\"last_probe_age_secs\":{}}}",
                    s.shard, s.addr, s.state, age
                ));
            }
            body.push(']');
        }
        body.push_str("}\n");
        Response::json(200, body)
    }

    fn metrics(&self) -> Response {
        Response::text(200, prometheus_text(&self.bus.snapshot(), &self.exec.stats()))
    }

    /// `GET /artifact/<name>[?quick=0|1][&seed=0][&deadline_ms=..]`
    fn route_artifact(&self, request: &Request, name: &str) -> Action {
        let artifact = match Artifact::parse(name) {
            Some(a) => a,
            None => return Action::Done(unknown_artifact(name)),
        };
        if let Some(seed) = request.query_param("seed") {
            if seed != "0" && seed != "default" {
                return Action::Done(Response::text(
                    400,
                    "regend: only the pinned default seed (seed=0) is served; \
                     renderings at other seeds are not golden-comparable\n",
                ));
            }
        }
        let quick = match self.quick_for(request) {
            Ok(q) => q,
            Err(resp) => return Action::Done(resp),
        };
        if let Some(r) = lock(&self.rendered).get(&(artifact.name(), quick)).cloned() {
            self.bus.emit(artifact.name(), &request.path, "", 0, EventKind::ArtifactCacheHit);
            return Action::Done(artifact_response(&r, quick));
        }
        Action::Slow(SlowWork::Artifact { artifact, quick })
    }

    /// `GET /results[?quick=0|1]`: every artifact in paper order, one
    /// document — byte-identical to `regen`'s stdout. A fully-rendered
    /// document is cached whole; a hit counts one rendered-cache hit
    /// per embedded artifact, exactly as assembling it would.
    fn route_results(&self, request: &Request) -> Action {
        let quick = match self.quick_for(request) {
            Ok(q) => q,
            Err(resp) => return Action::Done(resp),
        };
        if let Some(body) = lock(&self.results).get(&quick).cloned() {
            for artifact in Artifact::ALL {
                self.bus.emit(artifact.name(), &request.path, "", 0, EventKind::ArtifactCacheHit);
            }
            return Action::Done(Response::shared(200, body));
        }
        Action::Slow(SlowWork::Results { quick })
    }

    fn results_document(&self, quick: bool, path: &str) -> Response {
        let mut body = Vec::new();
        let mut failures = 0u32;
        for artifact in Artifact::ALL {
            match self.obtain(artifact, quick, path) {
                Ok(r) => body.extend_from_slice(&r.body),
                Err(_) => {
                    failures += 1;
                    body.extend_from_slice(
                        format!("== {} == FAILED\n\n", artifact.caption()).as_bytes(),
                    );
                }
            }
        }
        let body: Arc<[u8]> = body.into();
        if failures == 0 {
            lock(&self.results).insert(quick, Arc::clone(&body));
        }
        let mut resp = Response::shared(200, body);
        if failures > 0 {
            resp = resp.with_header("X-Regend-Failures", failures.to_string());
        }
        resp
    }

    /// `GET /cell/<experiment>/<content-key>[?seed=N]`: one lattice
    /// cell as journal-shaped JSON.
    fn route_cell(&self, request: &Request, experiment: &str, content_key: &str) -> Action {
        let artifact = match experiment_artifact(experiment) {
            Some(a) => a,
            None => return Action::Done(unknown_artifact(experiment)),
        };
        let seed = match request.query_param("seed").unwrap_or("0").parse::<u64>() {
            Ok(s) => s,
            Err(_) => {
                return Action::Done(Response::text(
                    400,
                    "regend: seed must be a non-negative integer\n",
                ))
            }
        };
        let quick = match self.quick_for(request) {
            Ok(q) => q,
            Err(resp) => return Action::Done(resp),
        };
        if let Some(v) = self.exec.cache_lookup(content_key, seed) {
            return Action::Done(cell_json_response(format!(
                "{}\n",
                cell_value_json(content_key, seed, &v)
            )));
        }
        Action::Slow(SlowWork::Cell {
            artifact,
            experiment: experiment.to_string(),
            content_key: content_key.to_string(),
            seed,
            quick,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn cell_response(
        &self,
        artifact: Artifact,
        experiment: &str,
        content_key: &str,
        seed: u64,
        quick: bool,
        path: &str,
    ) -> Response {
        if self.exec.cache_lookup(content_key, seed).is_none() {
            if let Err(e) = self.ensure_cells(artifact, quick, path) {
                return Response::text(
                    500,
                    format!("regend: computing {} for this cell failed: {e}\n", artifact.name()),
                );
            }
        }
        match self.exec.cache_lookup(content_key, seed) {
            Some(v) => {
                cell_json_response(format!("{}\n", cell_value_json(content_key, seed, &v)))
            }
            None => Response::text(
                404,
                format!(
                    "regend: no cell {:?} (seed {seed}) under {}; try\n  GET /cell/{}/{}?seed={seed}\nafter checking the key against the journal or trace output\n",
                    content_key,
                    experiment,
                    experiment,
                    percent_encode_path(content_key),
                ),
            ),
        }
    }

    /// Resolves the effective quick flag: the server default, overridden
    /// by `?quick=0|1`.
    fn quick_for(&self, request: &Request) -> Result<bool, Response> {
        match request.query_param("quick") {
            None => Ok(self.cfg.quick),
            Some("1") | Some("true") => Ok(true),
            Some("0") | Some("false") => Ok(false),
            Some(other) => Err(Response::text(
                400,
                format!("regend: bad quick value {other:?} (use 0 or 1)\n"),
            )),
        }
    }

    /// Obtains one artifact entry: rendered cache, then single-flight
    /// computation on the shared executor. Successful (including
    /// degraded) renderings are cached; failures are not, so a
    /// transiently failing artifact recovers on the next query.
    pub(crate) fn obtain(&self, artifact: Artifact, quick: bool, path: &str) -> ArtifactEntry {
        if let Some(r) = lock(&self.rendered).get(&(artifact.name(), quick)).cloned() {
            self.bus.emit(artifact.name(), path, "", 0, EventKind::ArtifactCacheHit);
            return Ok(r);
        }
        self.sweep(artifact, quick, path)
    }

    /// Guarantees this executor's cell cache holds `artifact`'s cells,
    /// running the sweep if it has not run here yet. A rendered-cache
    /// hit is *not* sufficient evidence: on a proxy the rendered body
    /// may have been filled from a shard's bytes, which answer
    /// `/artifact` and `/results` but carry no cell values.
    pub(crate) fn ensure_cells(
        &self,
        artifact: Artifact,
        quick: bool,
        path: &str,
    ) -> Result<(), String> {
        if lock(&self.swept).contains(&(artifact.name(), quick)) {
            return Ok(());
        }
        self.sweep(artifact, quick, path).map(|_| ())
    }

    /// Runs the artifact's sweep on the local executor (single-flight:
    /// concurrent callers coalesce onto one run), rendering and caching
    /// the block and marking the cells swept.
    fn sweep(&self, artifact: Artifact, quick: bool, path: &str) -> ArtifactEntry {
        let flight_key = format!("{}/{}", artifact.name(), quick);
        let (entry, outcome) = self.flights.run(&flight_key, || {
            match artifact.regenerate(quick, &self.exec) {
                Ok(out) => {
                    let block = render_artifact_block(&ArtifactResult {
                        artifact,
                        outcome: Ok(out.clone()),
                        cells: HarnessStats::default(),
                    });
                    let rendered =
                        Rendered { body: block.into_bytes().into(), degraded: out.degraded };
                    lock(&self.rendered).insert((artifact.name(), quick), rendered.clone());
                    lock(&self.swept).insert((artifact.name(), quick));
                    Ok(rendered)
                }
                Err(e) => Err(e.to_string()),
            }
        });
        if outcome == FlightOutcome::Coalesced {
            self.bus.emit(artifact.name(), path, "", 0, EventKind::FlightCoalesced);
        }
        entry
    }
}

/// Builds the 200 response for a rendered artifact (zero-copy body,
/// degraded/quick marker headers, and a body checksum so the cluster
/// proxy can detect damage on the proxy↔shard hop).
pub(crate) fn artifact_response(r: &Rendered, quick: bool) -> Response {
    let mut resp = Response::shared(200, Arc::clone(&r.body))
        .with_header("X-Regend-Crc32", format!("{:08x}", crc32(&r.body)));
    if r.degraded {
        resp = resp.with_header("X-Regend-Degraded", "true");
    }
    if quick {
        resp = resp.with_header("X-Regend-Quick", "true");
    }
    resp
}

/// Builds the 200 response for one cell's JSON, checksummed like
/// artifact bodies (the proxy verifies cross-shard cell fills).
pub(crate) fn cell_json_response(body: String) -> Response {
    let checksum = format!("{:08x}", crc32(body.as_bytes()));
    Response::json(200, body).with_header("X-Regend-Crc32", checksum)
}

/// True once `arrived + deadline` has passed.
pub fn deadline_expired(deadline: Option<Duration>, arrived: Instant) -> bool {
    deadline.is_some_and(|d| arrived.elapsed() > d)
}

/// Maps an experiment driver name onto the artifact whose sweep
/// computes its cells. Identical for every driver except the two that
/// feed the discussion artifact.
pub fn experiment_artifact(experiment: &str) -> Option<Artifact> {
    match experiment {
        "ablations" | "smt" => Some(Artifact::Discussion),
        other => Artifact::parse(other),
    }
}

fn artifact_index() -> Response {
    let mut body = String::new();
    for a in Artifact::ALL {
        body.push_str(&format!("{:14} {}\n", a.name(), a.caption()));
    }
    Response::text(200, body)
}

fn unknown_artifact(name: &str) -> Response {
    let mut body = format!("regend: unknown artifact: {name}\n");
    if let Some(suggestion) = Artifact::suggest(name) {
        body.push_str(&format!("did you mean: {suggestion}?\n"));
    }
    body.push_str("see GET /artifacts for the full list\n");
    Response::text(404, body)
}

fn endpoint_index() -> String {
    "regend endpoints:\n\
     \x20 GET  /healthz                         liveness + queue depth\n\
     \x20 GET  /metrics                         Prometheus-style exposition\n\
     \x20 GET  /artifacts                       artifact names and captions\n\
     \x20 GET  /artifact/<name>[?quick=0|1]     one artifact rendering\n\
     \x20 GET  /results[?quick=0|1]             every artifact, paper order\n\
     \x20 GET  /cell/<experiment>/<key>[?seed=N] one lattice cell as JSON\n\
     \x20 POST /shutdown                        graceful drain\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_map_onto_artifacts() {
        assert_eq!(experiment_artifact("figure2"), Some(Artifact::Figure2));
        assert_eq!(experiment_artifact("table3"), Some(Artifact::Table3));
        assert_eq!(experiment_artifact("ablations"), Some(Artifact::Discussion));
        assert_eq!(experiment_artifact("smt"), Some(Artifact::Discussion));
        assert_eq!(experiment_artifact("eibrs-bimodal"), Some(Artifact::EibrsBimodal));
        assert_eq!(experiment_artifact("nope"), None);
    }

    #[test]
    fn unknown_artifact_suggests_the_closest_name() {
        let resp = unknown_artifact("figre2");
        assert_eq!(resp.status, 404);
        let body = String::from_utf8_lossy(resp.body.as_bytes()).into_owned();
        assert!(body.contains("did you mean: figure2?"), "{body}");
    }
}
