//! Raw `epoll(7)` / `eventfd(2)` shims, no libc crate.
//!
//! Same stance as the `signal(2)` SIGTERM hook in `server.rs`: libc is
//! always linked on the targets std supports, so declaring the handful
//! of symbols we need suffices — no new dependency for five syscalls.
//! Everything here is a thin safe wrapper returning `std::io::Error`
//! from `errno` via `std::io::Error::last_os_error()`.
//!
//! Only what the readiness loop needs is exposed: create an epoll
//! instance, add/modify/delete interest, wait with a timeout, and an
//! eventfd the worker pool writes to wake the loop when slow work
//! completes (the "wakeup fd" of DESIGN.md).

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; no need to request it).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported; no need to request it).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness record. The kernel's x86-64 ABI packs this struct
/// (4-byte aligned `data`); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready event bits (`EPOLLIN` | ...).
    pub events: u32,
    /// The token registered with the fd (we use connection ids).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// An epoll instance (closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> std::io::Result<Epoll> {
        // SAFETY: plain syscall, no memory handed to the kernel.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, interest: u32, token: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent { events: interest, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest bits and token.
    pub fn add(&self, fd: i32, interest: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest bits for an already-registered `fd`.
    pub fn modify(&self, fd: i32, interest: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: i32) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for readiness; fills `events` and
    /// returns how many entries are valid. EINTR reads as zero events
    /// (the loop re-checks its drain/SIGTERM flags every pass anyway).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `events` is a valid, writable slice for the call.
        let rc = unsafe {
            epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd used to wake the readiness loop from worker
/// threads (slow-work completions) and from [`ServerHandle::drain`].
///
/// [`ServerHandle::drain`]: crate::ServerHandle::drain
#[derive(Debug)]
pub struct WakeFd {
    fd: i32,
}

impl WakeFd {
    /// Creates the eventfd.
    pub fn new() -> std::io::Result<WakeFd> {
        // SAFETY: plain syscall.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Wakes the loop. Any thread may call this; an EAGAIN (counter
    /// saturated) still leaves the fd readable, so the wake is never
    /// lost.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a stack value.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains the counter after the loop observes readiness.
    pub fn drain(&self) {
        let mut buf = 0u64;
        // SAFETY: reading 8 bytes into a stack value.
        unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: closing an fd we own.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_pipes_and_wakefd() {
        let epoll = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        epoll.add(wake.fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 8];
        // Nothing ready yet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        wake.wake();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (ev_bits, token) = (events[0].events, events[0].data);
        assert_ne!(ev_bits & EPOLLIN, 0);
        assert_eq!(token, 7);

        // Level-triggered: still readable until drained.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_watches_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut events = [EpollEvent::default(); 8];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 1);

        let (accepted, _) = listener.accept().unwrap();
        epoll.add(accepted.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 2).unwrap();
        client.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].data == 2 && events[i].events & EPOLLIN != 0));

        epoll.delete(accepted.as_raw_fd()).unwrap();
        drop(client);
        assert_eq!(epoll.wait(&mut events, 100).unwrap(), 0, "deleted fd stays silent");
    }
}
