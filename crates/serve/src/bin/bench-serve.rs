//! `bench-serve` — event-driven vs thread-per-connection front end.
//!
//! ```text
//! cargo run --release -p serve --bin bench-serve                      # measure
//! cargo run --release -p serve --bin bench-serve -- --out BENCH_serve.json
//! cargo run --release -p serve --bin bench-serve -- --check BENCH_serve.json
//! cargo run --release -p serve --bin bench-serve -- --requests 5000 --connections 16
//! ```
//!
//! Boots both `regend` front ends in-process over identical routing and
//! pushes the same `/artifact/table2` workload through each. `--check`
//! re-runs at the committed report's scale and fails on any drift in
//! the deterministic wire counters (requests, 200s, body bytes,
//! protocol errors) — throughput numbers are reported but gate only in
//! the one way that is always a bug: the event front end being slower
//! than the baseline it replaced. Exit codes: 0 clean, 1 drift or
//! regression, 2 bad usage.

use std::path::PathBuf;
use std::process::ExitCode;

use serve::bench_serve::{
    check_report, pinned_connections, pinned_requests, run_bench_serve, ServeBenchOptions,
};

fn usage(to_stdout: bool) {
    let text = "usage: bench-serve [options]\n\
         \n\
         options:\n\
         \x20 --requests <n>     requests per front end (default 2000)\n\
         \x20 --connections <n>  concurrent client connections (default 8)\n\
         \x20 --out <f>          write the JSON report atomically to <f>\n\
         \x20 --check <f>        re-run at <f>'s scale and fail on any\n\
         \x20                    deterministic-counter drift (timings never\n\
         \x20                    gate exactly; the event front end must only\n\
         \x20                    not be slower than the baseline)\n";
    if to_stdout {
        print!("{text}");
    } else {
        eprint!("{text}");
    }
}

struct Args {
    opts: ServeBenchOptions,
    scale_overridden: bool,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        opts: ServeBenchOptions::default(),
        scale_overridden: false,
        out: None,
        check: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--requests" => {
                let v = value("--requests")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --requests value: {v}"))?;
                if n == 0 {
                    return Err("--requests must be at least 1".to_string());
                }
                parsed.opts.requests = n;
                parsed.scale_overridden = true;
            }
            "--connections" => {
                let v = value("--connections")?;
                let n: usize = v.parse().map_err(|_| format!("bad --connections value: {v}"))?;
                if n == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
                parsed.opts.connections = n;
                parsed.scale_overridden = true;
            }
            "--out" => parsed.out = Some(PathBuf::from(value("--out")?)),
            "--check" => parsed.check = Some(PathBuf::from(value("--check")?)),
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(true);
        return ExitCode::SUCCESS;
    }
    let mut parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("bench-serve: {msg}");
            eprintln!();
            usage(false);
            return ExitCode::from(2);
        }
    };
    let pinned = match &parsed.check {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                if !parsed.scale_overridden {
                    match (pinned_requests(&text), pinned_connections(&text)) {
                        (Ok(r), Ok(c)) => {
                            parsed.opts.requests = r;
                            parsed.opts.connections = c;
                        }
                        (Err(msg), _) | (_, Err(msg)) => {
                            eprintln!("bench-serve: {}: {msg}", path.display());
                            return ExitCode::from(2);
                        }
                    }
                }
                Some(text)
            }
            Err(e) => {
                eprintln!("bench-serve: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let report = match run_bench_serve(&parsed.opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("bench-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = &parsed.out {
        if let Err(e) = spectrebench::atomic_write(path, report.render_json().as_bytes()) {
            eprintln!("bench-serve: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench-serve: report written to {}", path.display());
    }
    let mut failed = false;
    if let Some(pinned) = pinned {
        match check_report(&pinned, &report) {
            Ok(drifts) if drifts.is_empty() => {
                eprintln!("bench-serve: wire counters match the pinned report");
            }
            Ok(drifts) => {
                for d in &drifts {
                    eprintln!("bench-serve: DRIFT: {d}");
                }
                failed = true;
            }
            Err(msg) => {
                eprintln!("bench-serve: {msg}");
                failed = true;
            }
        }
        if report.speedup() < 1.0 {
            eprintln!(
                "bench-serve: keep-alive front end is SLOWER than the close baseline ({:.2}x)",
                report.speedup()
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
