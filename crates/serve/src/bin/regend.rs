//! `regend` — serves the paper's regenerated artifacts over HTTP.
//!
//! ```text
//! cargo run --release -p serve --bin regend                    # 127.0.0.1:7979
//! cargo run --release -p serve --bin regend -- --addr 0.0.0.0:8080
//! cargo run --release -p serve --bin regend -- --quick --workers 8 --queue 256
//! cargo run --release -p serve --bin regend -- --deadline-ms 30000
//! curl http://127.0.0.1:7979/artifact/figure2
//! curl http://127.0.0.1:7979/results > results.txt
//! ```
//!
//! Runs until SIGTERM (or `POST /shutdown`), drains the admitted
//! queue, prints the run's counters, and exits 0. Exit code 2 means
//! bad usage.

use std::process::ExitCode;
use std::time::Duration;

use serve::{install_sigterm_hook, Server, ServerConfig};
use spectrebench::{jobs_from_env, FaultPlan};

fn usage(to_stdout: bool) {
    let text = "usage: regend [options]\n\
         \n\
         options:\n\
         \x20 --addr <ip:port>    bind address (default 127.0.0.1:7979; port 0\n\
         \x20                     picks a free port and prints it)\n\
         \x20 --workers <n>       request worker threads (default 4)\n\
         \x20 --queue <n>         admission queue capacity; a full queue answers\n\
         \x20                     429 + Retry-After (default 128)\n\
         \x20 --quick             serve the fast workload variants by default\n\
         \x20                     (clients can override per-request with ?quick=)\n\
         \x20 --jobs <n>          executor worker threads per computation\n\
         \x20                     (default: REGEN_JOBS, else machine parallelism)\n\
         \x20 --retries <n>       attempts per measurement cell (default 3)\n\
         \x20 --deadline-ms <n>   default per-request deadline; expired requests\n\
         \x20                     answer 504 (clients can set ?deadline_ms=)\n\
         \x20 --idle-timeout-ms <n>  reap keep-alive connections that make no\n\
         \x20                     progress for this long (default 30000)\n\
         \x20 --journal <log>     journal completed cells to <log> (also reused\n\
         \x20                     on startup, like regen --resume)\n\
         \x20 --inject <spec>     deterministic fault plan (same syntax as\n\
         \x20                     regen --inject; for testing recovery)\n\
         \n\
         endpoints: /healthz /metrics /artifacts /artifact/<name>\n\
         \x20          /results /cell/<experiment>/<key> POST /shutdown\n";
    if to_stdout {
        print!("{text}");
    } else {
        eprint!("{text}");
    }
}

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--quick" => cfg.quick = true,
            "--workers" => {
                let v = value("--workers")?;
                let n: usize = v.parse().map_err(|_| format!("bad --workers value: {v}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                cfg.workers = n;
            }
            "--queue" => {
                let v = value("--queue")?;
                let n: usize = v.parse().map_err(|_| format!("bad --queue value: {v}"))?;
                if n == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
                cfg.queue_capacity = n;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value: {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                cfg.jobs = Some(n);
            }
            "--retries" => {
                let v = value("--retries")?;
                cfg.retries = Some(v.parse().map_err(|_| format!("bad --retries value: {v}"))?);
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms value: {v}"))?;
                cfg.default_deadline = Some(Duration::from_millis(ms));
            }
            "--idle-timeout-ms" => {
                let v = value("--idle-timeout-ms")?;
                let ms: u64 =
                    v.parse().map_err(|_| format!("bad --idle-timeout-ms value: {v}"))?;
                if ms == 0 {
                    return Err("--idle-timeout-ms must be at least 1".to_string());
                }
                cfg.idle_timeout = Duration::from_millis(ms);
            }
            "--journal" => cfg.journal = Some(value("--journal")?.into()),
            "--inject" => {
                let spec = value("--inject")?;
                cfg.inject =
                    Some(FaultPlan::parse_spec(&spec).map_err(|e| format!("bad --inject: {e}"))?);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(true);
        return ExitCode::SUCCESS;
    }
    let mut cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("regend: {msg}");
            eprintln!();
            usage(false);
            return ExitCode::from(2);
        }
    };
    // Same strict REGEN_JOBS validation as regen: a bad value is a
    // usage error up front, not a silent fallback mid-serve.
    if cfg.jobs.is_none() {
        match jobs_from_env() {
            Ok(n) => cfg.jobs = n,
            Err(msg) => {
                eprintln!("regend: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("regend: cannot start: {e}");
            return ExitCode::from(2);
        }
    };
    install_sigterm_hook();
    eprintln!("regend: listening on http://{}/ (SIGTERM to drain)", server.local_addr());
    let summary = match server.run() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("regend: event loop failed: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "regend: drained: {} request(s) served, {} admitted, {} rejected with 429",
        summary.served, summary.admitted, summary.rejected
    );
    eprintln!(
        "regend: connections: {} accepted, {} disconnects, {} idle timeouts",
        summary.connections, summary.disconnects, summary.idle_timeouts
    );
    let s = &summary.stats;
    eprintln!(
        "regend: executor: {} cells run, {} from cache, {} retries, {} faults injected, {} cells failed",
        s.cells_run, s.cells_from_cache, s.retries, s.faults_injected, s.cells_failed
    );
    ExitCode::SUCCESS
}
