//! `regend` — serves the paper's regenerated artifacts over HTTP.
//!
//! ```text
//! cargo run --release -p serve --bin regend                    # 127.0.0.1:7979
//! cargo run --release -p serve --bin regend -- --addr 0.0.0.0:8080
//! cargo run --release -p serve --bin regend -- --quick --workers 8 --queue 256
//! cargo run --release -p serve --bin regend -- --deadline-ms 30000
//! curl http://127.0.0.1:7979/artifact/figure2
//! curl http://127.0.0.1:7979/results > results.txt
//! ```
//!
//! Runs until SIGTERM (or `POST /shutdown`), drains the admitted
//! queue, prints the run's counters, and exits 0. Exit code 2 means
//! bad usage.

use std::process::ExitCode;
use std::time::Duration;

use serve::{
    boot_shards, install_sigterm_hook, proxy_config, run_cluster_campaign, Server, ServerConfig,
    ClusterCampaignConfig,
};
use spectrebench::{atomic_write, jobs_from_env, FaultPlan, NetFaultPlan};

fn usage(to_stdout: bool) {
    let text = "usage: regend [options]\n\
         \x20      regend campaign [--shards <n>] [--full] [--jobs <n>]\n\
         \x20                      [--report <f>] [--check <baseline>]\n\
         \n\
         options:\n\
         \x20 --addr <ip:port>    bind address (default 127.0.0.1:7979; port 0\n\
         \x20                     picks a free port and prints it)\n\
         \x20 --workers <n>       request worker threads (default 4)\n\
         \x20 --queue <n>         admission queue capacity; a full queue answers\n\
         \x20                     429 + Retry-After (default 128)\n\
         \x20 --quick             serve the fast workload variants by default\n\
         \x20                     (clients can override per-request with ?quick=)\n\
         \x20 --jobs <n>          executor worker threads per computation\n\
         \x20                     (default: REGEN_JOBS, else machine parallelism)\n\
         \x20 --retries <n>       attempts per measurement cell (default 3)\n\
         \x20 --deadline-ms <n>   default per-request deadline; expired requests\n\
         \x20                     answer 504 (clients can set ?deadline_ms=)\n\
         \x20 --idle-timeout-ms <n>  reap keep-alive connections that make no\n\
         \x20                     progress for this long (default 30000)\n\
         \x20 --journal <log>     journal completed cells to <log> (also reused\n\
         \x20                     on startup, like regen --resume)\n\
         \x20 --inject <spec>     deterministic fault plan (same syntax as\n\
         \x20                     regen --inject; for testing recovery)\n\
         \n\
         cluster options:\n\
         \x20 --shards <n>        boot an in-process cluster: n shard servers on\n\
         \x20                     ephemeral ports plus this proxy front end;\n\
         \x20                     content keys are consistent-hashed across shards\n\
         \x20 --shard-addrs <a,b> proxy an existing cluster at these addresses\n\
         \x20                     (mutually exclusive with --shards)\n\
         \x20 --net-inject <spec> deterministic network faults on the proxy<->shard\n\
         \x20                     hop: kind=drop|stall|truncate|corrupt-byte,\n\
         \x20                     shard=<n>|any, times=<n>|forever, path=<substr>,\n\
         \x20                     seed=<n>, prob=<p>\n\
         \x20 --probe-interval-ms <n>  shard health probe cadence (default 100)\n\
         \n\
         campaign: enumerate the (shard x net-fault x timing) space, boot a\n\
         \x20  cluster per coordinate, classify client-visible outcomes; exits 1\n\
         \x20  on any silent corruption, 1 on --check baseline drift\n\
         \n\
         endpoints: /healthz /metrics /artifacts /artifact/<name>\n\
         \x20          /results /cell/<experiment>/<key> POST /shutdown\n";
    if to_stdout {
        print!("{text}");
    } else {
        eprint!("{text}");
    }
}

fn parse_args(args: &[String]) -> Result<(ServerConfig, Option<usize>), String> {
    let mut cfg = ServerConfig::default();
    let mut shards: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--quick" => cfg.quick = true,
            "--workers" => {
                let v = value("--workers")?;
                let n: usize = v.parse().map_err(|_| format!("bad --workers value: {v}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                cfg.workers = n;
            }
            "--queue" => {
                let v = value("--queue")?;
                let n: usize = v.parse().map_err(|_| format!("bad --queue value: {v}"))?;
                if n == 0 {
                    return Err("--queue must be at least 1".to_string());
                }
                cfg.queue_capacity = n;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value: {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                cfg.jobs = Some(n);
            }
            "--retries" => {
                let v = value("--retries")?;
                cfg.retries = Some(v.parse().map_err(|_| format!("bad --retries value: {v}"))?);
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms value: {v}"))?;
                cfg.default_deadline = Some(Duration::from_millis(ms));
            }
            "--idle-timeout-ms" => {
                let v = value("--idle-timeout-ms")?;
                let ms: u64 =
                    v.parse().map_err(|_| format!("bad --idle-timeout-ms value: {v}"))?;
                if ms == 0 {
                    return Err("--idle-timeout-ms must be at least 1".to_string());
                }
                cfg.idle_timeout = Duration::from_millis(ms);
            }
            "--journal" => cfg.journal = Some(value("--journal")?.into()),
            "--inject" => {
                let spec = value("--inject")?;
                cfg.inject =
                    Some(FaultPlan::parse_spec(&spec).map_err(|e| format!("bad --inject: {e}"))?);
            }
            "--shards" => {
                let v = value("--shards")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards value: {v}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                shards = Some(n);
            }
            "--shard-addrs" => {
                cfg.shard_addrs = value("--shard-addrs")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.shard_addrs.is_empty() {
                    return Err("--shard-addrs needs at least one address".to_string());
                }
            }
            "--net-inject" => {
                let spec = value("--net-inject")?;
                cfg.net_inject = Some(
                    NetFaultPlan::parse_spec(&spec)
                        .map_err(|e| format!("bad --net-inject: {e}"))?,
                );
            }
            "--probe-interval-ms" => {
                let v = value("--probe-interval-ms")?;
                let ms: u64 =
                    v.parse().map_err(|_| format!("bad --probe-interval-ms value: {v}"))?;
                if ms == 0 {
                    return Err("--probe-interval-ms must be at least 1".to_string());
                }
                cfg.probe_interval = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    if shards.is_some() && !cfg.shard_addrs.is_empty() {
        return Err("--shards and --shard-addrs are mutually exclusive".to_string());
    }
    Ok((cfg, shards))
}

/// Parses and runs `regend campaign`: the serving-tier fault-space
/// sweep. Exits 1 on silent corruption or baseline drift, 2 on usage.
fn run_campaign_cmd(args: &[String]) -> ExitCode {
    let mut cfg = ClusterCampaignConfig::default();
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut check_path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--shards" => {
                    let v = value("--shards")?;
                    cfg.shards =
                        v.parse().map_err(|_| format!("bad --shards value: {v}"))?;
                    if cfg.shards == 0 {
                        return Err("--shards must be at least 1".to_string());
                    }
                }
                "--full" => cfg.quick = false,
                "--jobs" => {
                    let v = value("--jobs")?;
                    cfg.jobs =
                        Some(v.parse().map_err(|_| format!("bad --jobs value: {v}"))?);
                }
                "--report" => report_path = Some(value("--report")?.into()),
                "--check" => check_path = Some(value("--check")?.into()),
                other => return Err(format!("unknown campaign flag: {other}")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            eprintln!("regend campaign: {msg}");
            return ExitCode::from(2);
        }
        i += 1;
    }
    let report = match run_cluster_campaign(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("regend campaign: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_matrix());
    let json = report.to_json();
    if let Some(path) = &report_path {
        if let Err(e) = atomic_write(path, json.as_bytes()) {
            eprintln!("regend campaign: cannot write report: {e}");
            return ExitCode::from(2);
        }
        eprintln!("regend campaign: report written to {}", path.display());
    }
    let mut failed = false;
    for o in report.silent_corruptions() {
        eprintln!("regend campaign: SILENT CORRUPTION at {} ({})", o.coord.id(), o.detail);
        failed = true;
    }
    if let Some(path) = &check_path {
        match std::fs::read(path) {
            Ok(baseline) if baseline == json.as_bytes() => {
                eprintln!("regend campaign: matches baseline {}", path.display());
            }
            Ok(_) => {
                eprintln!(
                    "regend campaign: DRIFT from baseline {} (rerun with --report to refresh \
                     after reviewing the diff)",
                    path.display()
                );
                failed = true;
            }
            Err(e) => {
                eprintln!("regend campaign: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(true);
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("campaign") {
        return run_campaign_cmd(&args[1..]);
    }
    let (mut cfg, shards) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("regend: {msg}");
            eprintln!();
            usage(false);
            return ExitCode::from(2);
        }
    };
    // Same strict REGEN_JOBS validation as regen: a bad value is a
    // usage error up front, not a silent fallback mid-serve.
    if cfg.jobs.is_none() {
        match jobs_from_env() {
            Ok(n) => cfg.jobs = n,
            Err(msg) => {
                eprintln!("regend: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    // --shards N: boot the shard tier in-process, then serve as its
    // proxy. Each shard is a full regend server on its own ephemeral
    // port with its own executor and journal (<journal>-shard<i>).
    let mut shard_instances = Vec::new();
    if let Some(n) = shards {
        match boot_shards(&cfg, n) {
            Ok(instances) => {
                let addrs: Vec<String> =
                    instances.iter().map(|s| s.addr.clone()).collect();
                for s in &instances {
                    eprintln!("regend: shard {} on http://{}/", s.index, s.addr);
                }
                cfg = proxy_config(&cfg, addrs);
                shard_instances = instances;
            }
            Err(e) => {
                eprintln!("regend: cannot boot shards: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("regend: cannot start: {e}");
            return ExitCode::from(2);
        }
    };
    install_sigterm_hook();
    eprintln!("regend: listening on http://{}/ (SIGTERM to drain)", server.local_addr());
    let summary = match server.run() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("regend: event loop failed: {e}");
            return ExitCode::from(2);
        }
    };
    // The proxy has drained; drain the in-process shard tier behind it.
    for s in shard_instances {
        s.handle.drain();
        let _ = s.join.join();
    }
    eprintln!(
        "regend: drained: {} request(s) served, {} admitted, {} rejected with 429",
        summary.served, summary.admitted, summary.rejected
    );
    eprintln!(
        "regend: connections: {} accepted, {} disconnects, {} idle timeouts",
        summary.connections, summary.disconnects, summary.idle_timeouts
    );
    let s = &summary.stats;
    eprintln!(
        "regend: executor: {} cells run, {} from cache, {} retries, {} faults injected, {} cells failed",
        s.cells_run, s.cells_from_cache, s.retries, s.faults_injected, s.cells_failed
    );
    ExitCode::SUCCESS
}
