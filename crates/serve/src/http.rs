//! A minimal, hand-rolled HTTP/1.1 layer with keep-alive and
//! pipelining.
//!
//! `regend` speaks just enough HTTP for its read-only query surface.
//! The parser is *incremental*: [`RequestParser`] is fed raw bytes in
//! whatever fragments the socket produces and yields complete
//! [`Request`]s — one per call — exactly as if the stream had arrived
//! in one piece. That is what lets the event-driven server
//! (`serve::server`) run thousands of keep-alive connections without a
//! thread per socket, and what makes pipelined bursts (several requests
//! back-to-back in one segment) parse identically to byte-dribbled
//! ones; `crates/serve/tests/http_parser.rs` pins that equivalence
//! property.
//!
//! No chunked encoding, no TLS — the repo's dependency policy
//! (hand-rolled JSON/CRC32/RNG, no external crates) extends to the
//! wire. Limits are enforced *while buffering*, so a malformed or
//! hostile peer costs a bounded amount of memory, never the process.

use std::io::{BufRead, Write};
use std::sync::Arc;

/// Upper bound on one header line (request line included).
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a discarded request body.
const MAX_BODY: u64 = 64 * 1024;

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid or over a parser limit (maps to 400).
    Malformed(String),
    /// The underlying socket failed or timed out.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// One parsed request. The target is split into a percent-decoded path
/// and its query parameters; header names are lowercased.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Decoded `(key, value)` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Reads and parses one request from `reader`, blocking. Any
    /// declared body is read and discarded (bounded) so the connection
    /// is left positioned at the next request — the same incremental
    /// parser drives this, one byte at a time, so the blocking and
    /// nonblocking paths cannot disagree.
    pub fn parse(reader: &mut impl BufRead) -> Result<Request, HttpError> {
        let mut parser = RequestParser::new();
        loop {
            if let Some(r) = parser.next_request()? {
                return Ok(r);
            }
            let mut byte = [0u8; 1];
            match std::io::Read::read(reader, &mut byte) {
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::Io(e)),
                Ok(0) => {
                    if parser.is_empty() {
                        return Err(HttpError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed before a full request line",
                        )));
                    }
                    return match parser.finish_eof()? {
                        Some(r) => Ok(r),
                        None => Err(HttpError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "connection closed before a full request line",
                        ))),
                    };
                }
                Ok(_) => parser.push(&byte),
            }
        }
    }
}

/// Incremental HTTP/1.1 request parser: feed bytes with
/// [`RequestParser::push`], harvest complete requests with
/// [`RequestParser::next_request`]. Tolerates arbitrary fragmentation
/// (including CRLF split across reads) and pipelined back-to-back
/// requests; enforces the same limits as the original blocking parser
/// *while buffering*, so memory stays bounded even when no request ever
/// completes. A malformed head is a sticky error: every later call
/// reports it again, and the connection should answer 400 and close.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// How far the head scan has advanced (absolute index).
    scanned: usize,
    /// Where the head line currently being scanned begins.
    line_start: usize,
    /// Completed head lines so far (0 = still in the request line).
    lines: usize,
    /// A parsed head waiting for its body bytes to be discarded.
    pending_body: Option<(Request, u64)>,
    /// Sticky malformed-head error.
    error: Option<String>,
}

impl RequestParser {
    /// A fresh parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// True when the parser holds no partial request at all.
    pub fn is_empty(&self) -> bool {
        self.start == self.buf.len() && self.pending_body.is_none()
    }

    /// Bytes buffered but not yet consumed (partial request data).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    fn fail(&mut self, msg: String) -> HttpError {
        self.error = Some(msg.clone());
        HttpError::Malformed(msg)
    }

    /// Reclaims consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
        } else if self.start > 8 * 1024 {
            self.buf.drain(..self.start);
        } else {
            return;
        }
        self.scanned -= self.start;
        self.line_start -= self.start;
        self.start = 0;
    }

    /// Parses the next complete request out of the buffered bytes.
    /// `Ok(None)` means more bytes are needed; a `Malformed` error is
    /// sticky and terminal for the connection.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        if let Some(msg) = &self.error {
            return Err(HttpError::Malformed(msg.clone()));
        }
        // Discard a declared body so a pipelined follow-up request
        // doesn't get misread as payload.
        if let Some((_, remaining)) = &mut self.pending_body {
            let avail = (self.buf.len() - self.start) as u64;
            let take = avail.min(*remaining);
            self.start += take as usize;
            // Keep the head-scan cursors in step with the consumed
            // prefix; the next head starts scanning at `start`.
            self.scanned = self.start;
            self.line_start = self.start;
            *remaining -= take;
            if *remaining > 0 {
                self.compact();
                return Ok(None);
            }
            let (request, _) = self.pending_body.take().expect("pending body");
            self.compact();
            return Ok(Some(request));
        }
        while self.scanned < self.buf.len() {
            if self.buf[self.scanned] == b'\n' {
                let mut line_end = self.scanned;
                if line_end > self.line_start && self.buf[line_end - 1] == b'\r' {
                    line_end -= 1;
                }
                let empty = line_end == self.line_start;
                self.lines += 1;
                // An empty line terminates the head. (An empty *first*
                // line parses as an empty request line and is rejected
                // below, matching the blocking parser of PR 5.)
                if empty {
                    let head_end = self.scanned + 1;
                    let head = self.buf[self.start..head_end].to_vec();
                    self.start = head_end;
                    self.scanned = head_end;
                    self.line_start = head_end;
                    self.lines = 0;
                    let (request, body_len) =
                        parse_head(&head).map_err(|m| self.fail(m))?;
                    if body_len > MAX_BODY {
                        return Err(self.fail("request body too large".to_string()));
                    }
                    if body_len > 0 {
                        self.pending_body = Some((request, body_len));
                        return self.next_request();
                    }
                    self.compact();
                    return Ok(Some(request));
                }
                // Reject a 65th header even before the head completes,
                // so an endless header stream cannot buffer unboundedly.
                if self.lines >= MAX_HEADERS + 2 {
                    return Err(self.fail("too many headers".to_string()));
                }
                self.scanned += 1;
                self.line_start = self.scanned;
                continue;
            }
            self.scanned += 1;
            if self.scanned - self.line_start > MAX_LINE {
                return Err(self.fail("header line too long".to_string()));
            }
        }
        Ok(None)
    }

    /// The peer closed its write side. Mirrors the blocking parser's
    /// EOF behaviour: a truncated body yields the request anyway (the
    /// body is discarded either way); a head whose final newline never
    /// arrived is given one implied newline, which completes requests
    /// like `...\r\n\r` + EOF and otherwise reports the truncation.
    pub fn finish_eof(&mut self) -> Result<Option<Request>, HttpError> {
        if let Some((request, _)) = self.pending_body.take() {
            return Ok(Some(request));
        }
        self.push(b"\n");
        match self.next_request()? {
            Some(r) => Ok(Some(r)),
            None => Ok(self.pending_body.take().map(|(r, _)| r)),
        }
    }
}

/// Parses one complete head (`request line .. blank line`, newline
/// included). Returns the request plus its declared body length. Error
/// strings match the PR 5 blocking parser exactly, so rejection is
/// byte-identical no matter how the head was fragmented.
fn parse_head(head: &[u8]) -> Result<(Request, u64), String> {
    let text =
        std::str::from_utf8(head).map_err(|_| "non-UTF-8 header".to_string())?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let line = lines.next().unwrap_or("");
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => {
            (m.to_string(), t.to_string(), v)
        }
        _ => return Err(format!("bad request line: {line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported version: {version:?}"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err("too many headers".to_string());
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad header line: {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Strict percent-encoding: every '%' in the target must introduce a
    // valid two-digit escape. (A lenient decode here would make two
    // differently-fragmented copies of a hostile target decode to the
    // same path only by accident.)
    if !percent_escapes_valid(&target) {
        return Err(format!("bad percent-encoding in target: {target:?}"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.as_str())
        .unwrap_or("");
    let keep_alive = if version == "HTTP/1.0" {
        connection.eq_ignore_ascii_case("keep-alive")
    } else {
        !connection.eq_ignore_ascii_case("close")
    };
    let body_len = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .unwrap_or(0);
    let request = Request {
        method,
        path: percent_decode(raw_path),
        query: parse_query(raw_query),
        headers,
        keep_alive,
    };
    Ok((request, body_len))
}

/// True when every `%` in `s` is followed by two hex digits.
fn percent_escapes_valid(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let ok = bytes
                .get(i + 1..i + 3)
                .is_some_and(|h| h.iter().all(u8::is_ascii_hexdigit));
            if !ok {
                return false;
            }
            i += 3;
        } else {
            i += 1;
        }
    }
    true
}

/// Decodes `%XX` escapes (and `+` as space); malformed escapes pass
/// through literally (request targets are pre-validated, but this is
/// also used on journal-shaped keys that may contain literal `%`).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a path segment (everything but unreserved chars and
/// `/`), for clients building URLs out of cell keys that contain spaces
/// and brackets.
pub fn percent_encode_path(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// One response. Bodies are either owned strings (small, built per
/// request) or shared pre-rendered bytes served zero-copy out of the
/// artifact cache.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: Body,
}

/// A response body: owned text, or a shared pre-rendered buffer.
#[derive(Debug, Clone)]
pub enum Body {
    /// Owned text, serialized into the head buffer.
    Text(String),
    /// Shared bytes (the rendered-artifact cache); the connection
    /// writes straight from this buffer without copying it.
    Shared(Arc<[u8]>),
}

impl Body {
    /// Body length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Body::Text(s) => s.len(),
            Body::Shared(b) => b.len(),
        }
    }

    /// True when the body has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The body bytes as a slice.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Text(s) => s.as_bytes(),
            Body::Shared(b) => b,
        }
    }
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: Body::Text(body.into()),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: Body::Text(body.into()),
        }
    }

    /// A `text/plain` response over shared pre-rendered bytes.
    pub fn shared(status: u16, body: Arc<[u8]>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: Body::Shared(body),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the status line and headers with the requested
    /// connection framing. The body is *not* included — callers either
    /// append it (owned) or write it zero-copy from its shared buffer.
    pub fn render_head(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        head.into_bytes()
    }

    /// Serializes status line, headers, and body to `w` with
    /// `Connection: close` framing (the blocking, one-request path).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.render_head(false))?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the status codes regend uses.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_str(s: &str) -> Result<Request, HttpError> {
        Request::parse(&mut BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_a_basic_get() {
        let r = parse_str("GET /artifact/table1?seed=0&quick=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/artifact/table1");
        assert_eq!(r.query_param("seed"), Some("0"));
        assert_eq!(r.query_param("quick"), Some("1"));
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_framing_follows_version_and_header() {
        assert!(!parse_str("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
        assert!(!parse_str("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(parse_str("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .keep_alive);
        assert!(parse_str("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n").is_ok_and(|r| !r.keep_alive));
    }

    #[test]
    fn percent_decoding_round_trips_cell_keys() {
        let key = "Cascade Lake (2019)/lebench/[nopti]";
        let encoded = percent_encode_path(key);
        assert!(!encoded.contains(' ') && !encoded.contains('['));
        assert_eq!(percent_decode(&encoded), key);
        let r = parse_str(&format!("GET /cell/figure2/{encoded} HTTP/1.1\r\n\r\n")).unwrap();
        assert_eq!(r.path, format!("/cell/figure2/{key}"));
    }

    #[test]
    fn rejects_garbage_and_oversized_lines() {
        assert!(matches!(parse_str("NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse_str(""), Err(HttpError::Io(_))));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert!(matches!(parse_str(&long), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn rejects_bad_percent_escapes_in_the_target() {
        let err = parse_str("GET /artifact/%zz HTTP/1.1\r\n\r\n").unwrap_err();
        assert!(matches!(&err, HttpError::Malformed(m) if m.contains("percent-encoding")), "{err}");
        let err = parse_str("GET /x% HTTP/1.1\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
        // Valid escapes still decode.
        assert_eq!(parse_str("GET /a%20b HTTP/1.1\r\n\r\n").unwrap().path, "/a b");
    }

    #[test]
    fn incremental_parser_handles_fragmentation_and_pipelining() {
        let wire = b"GET /healthz HTTP/1.1\r\nHost: a\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        // One byte at a time...
        let mut p = RequestParser::new();
        let mut got = Vec::new();
        for b in wire.iter() {
            p.push(std::slice::from_ref(b));
            while let Some(r) = p.next_request().unwrap() {
                got.push(r.path.clone());
            }
        }
        assert_eq!(got, ["/healthz", "/metrics"]);
        assert!(p.is_empty());
        // ...and the whole burst at once parse identically.
        let mut p = RequestParser::new();
        p.push(wire);
        assert_eq!(p.next_request().unwrap().unwrap().path, "/healthz");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/metrics");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn split_crlf_across_fragments_parses() {
        let mut p = RequestParser::new();
        p.push(b"GET / HTTP/1.1\r");
        assert!(p.next_request().unwrap().is_none());
        p.push(b"\nHost: x\r\n\r");
        assert!(p.next_request().unwrap().is_none());
        p.push(b"\n");
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.path, "/");
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn malformed_heads_are_sticky() {
        let mut p = RequestParser::new();
        p.push(b"NONSENSE\r\n\r\n");
        assert!(matches!(p.next_request(), Err(HttpError::Malformed(_))));
        p.push(b"GET / HTTP/1.1\r\n\r\n");
        assert!(matches!(p.next_request(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_serializes_with_content_length_and_extra_headers() {
        let mut out = Vec::new();
        Response::text(429, "queue full\n")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.contains("Retry-After: 1\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("\r\n\r\nqueue full\n"));
    }

    #[test]
    fn keep_alive_framing_only_changes_the_connection_header() {
        let resp = Response::text(200, "hi\n");
        let ka = String::from_utf8(resp.render_head(true)).unwrap();
        let cl = String::from_utf8(resp.render_head(false)).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"));
        assert!(cl.contains("Connection: close\r\n"));
        assert_eq!(
            ka.replace("Connection: keep-alive", "Connection: close"),
            cl
        );
    }

    #[test]
    fn discards_declared_bodies() {
        let mut reader =
            BufReader::new(&b"POST /shutdown HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGARBAGE"[..]);
        let r = Request::parse(&mut reader).unwrap();
        assert_eq!(r.method, "POST");
        // The body was consumed; what remains is the next request's bytes.
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        assert_eq!(rest, "GARBAGE");
    }

    #[test]
    fn pipelined_request_after_a_body_is_not_eaten() {
        let mut p = RequestParser::new();
        p.push(b"POST /shutdown HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request().unwrap().unwrap().method, "POST");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/healthz");
    }
}
