//! A minimal, hand-rolled HTTP/1.1 layer.
//!
//! `regend` speaks just enough HTTP for its read-only query surface:
//! request-line + headers in, fixed-length `Connection: close` response
//! out. No chunked encoding, no keep-alive, no TLS — the repo's
//! dependency policy (hand-rolled JSON/CRC32/RNG, no external crates)
//! extends to the wire. Limits are enforced while parsing so a
//! malformed or hostile peer costs a bounded amount of memory and one
//! worker's read timeout, never the process.

use std::io::{BufRead, Write};

/// Upper bound on one header line (request line included).
const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Upper bound on a discarded request body.
const MAX_BODY: u64 = 64 * 1024;

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid or over a parser limit (maps to 400).
    Malformed(String),
    /// The underlying socket failed or timed out.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// One parsed request. The target is split into a percent-decoded path
/// and its query parameters; header names are lowercased.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as sent).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Decoded `(key, value)` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Reads and parses one request from `reader`. Any declared body is
    /// read and discarded (bounded) so the connection is left clean.
    pub fn parse(reader: &mut impl BufRead) -> Result<Request, HttpError> {
        let line = read_line(reader)?;
        let mut parts = line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if parts.next().is_none() && !m.is_empty() => {
                (m.to_string(), t.to_string(), v)
            }
            _ => return Err(HttpError::Malformed(format!("bad request line: {line:?}"))),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("unsupported version: {version:?}")));
        }
        let mut headers = Vec::new();
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(HttpError::Malformed("too many headers".to_string()));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("bad header line: {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let request = {
            let (raw_path, raw_query) = match target.split_once('?') {
                Some((p, q)) => (p, q),
                None => (target.as_str(), ""),
            };
            Request {
                method,
                path: percent_decode(raw_path),
                query: parse_query(raw_query),
                headers,
            }
        };
        // Discard any body so a follow-up write doesn't race unread
        // input; regend's endpoints carry no request payload.
        if let Some(len) = request.header("content-length").and_then(|v| v.parse::<u64>().ok()) {
            if len > MAX_BODY {
                return Err(HttpError::Malformed("request body too large".to_string()));
            }
            let mut remaining = len as usize;
            let mut sink = [0u8; 512];
            while remaining > 0 {
                let chunk = sink.len().min(remaining);
                match std::io::Read::read(reader, &mut sink[..chunk]) {
                    Ok(0) => break,
                    Ok(n) => remaining -= n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(HttpError::Io(e)),
                }
            }
        }
        Ok(request)
    }
}

/// Reads one CRLF (or LF) terminated line, enforcing [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match std::io::Read::read(reader, &mut byte) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a full request line",
                    )));
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(HttpError::Malformed("header line too long".to_string()));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::Malformed("non-UTF-8 header".to_string()))
}

/// Decodes `%XX` escapes (and `+` as space); malformed escapes pass
/// through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a path segment (everything but unreserved chars and
/// `/`), for clients building URLs out of cell keys that contain spaces
/// and brackets.
pub fn percent_encode_path(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect()
}

/// One response, written with `Content-Length` and `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", extra_headers: Vec::new(), body: body.into() }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response { status, content_type: "application/json", extra_headers: Vec::new(), body: body.into() }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes status line, headers, and body to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Reason phrase for the status codes regend uses.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_str(s: &str) -> Result<Request, HttpError> {
        Request::parse(&mut BufReader::new(s.as_bytes()))
    }

    #[test]
    fn parses_a_basic_get() {
        let r = parse_str("GET /artifact/table1?seed=0&quick=1 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/artifact/table1");
        assert_eq!(r.query_param("seed"), Some("0"));
        assert_eq!(r.query_param("quick"), Some("1"));
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
    }

    #[test]
    fn percent_decoding_round_trips_cell_keys() {
        let key = "Cascade Lake (2019)/lebench/[nopti]";
        let encoded = percent_encode_path(key);
        assert!(!encoded.contains(' ') && !encoded.contains('['));
        assert_eq!(percent_decode(&encoded), key);
        let r = parse_str(&format!("GET /cell/figure2/{encoded} HTTP/1.1\r\n\r\n")).unwrap();
        assert_eq!(r.path, format!("/cell/figure2/{key}"));
    }

    #[test]
    fn rejects_garbage_and_oversized_lines() {
        assert!(matches!(parse_str("NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(parse_str(""), Err(HttpError::Io(_))));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert!(matches!(parse_str(&long), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_serializes_with_content_length_and_extra_headers() {
        let mut out = Vec::new();
        Response::text(429, "queue full\n")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.contains("Retry-After: 1\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("\r\n\r\nqueue full\n"));
    }

    #[test]
    fn discards_declared_bodies() {
        let mut reader =
            BufReader::new(&b"POST /shutdown HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGARBAGE"[..]);
        let r = Request::parse(&mut reader).unwrap();
        assert_eq!(r.method, "POST");
        // The body was consumed; what remains is the next request's bytes.
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut reader, &mut rest).unwrap();
        assert_eq!(rest, "GARBAGE");
    }
}
