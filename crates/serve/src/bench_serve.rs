//! `bench-serve`: the serving front end's own benchmark.
//!
//! Boots both `regend` front ends in-process — the event-driven epoll
//! loop ([`serve::Server`]) and the preserved PR 5 thread-per-connection
//! `Connection: close` acceptor ([`serve::BaselineServer`]) — over the
//! *same* [`serve::core`] routing and caches, warms the rendered cache
//! with one `/artifact/table2`, then pushes an identical closed-loop
//! keep-alive workload through each and compares throughput.
//!
//! Two kinds of numbers come out, exactly like `bench-uarch`:
//!
//! * **Wire counters** (requests sent, 200s received, body bytes,
//!   protocol errors) are *deterministic*: table2 renders from static
//!   data, so its body is byte-pinned and `requests x body_len` is a
//!   fixed product. CI pins them with `--check BENCH_serve.json` —
//!   drift means the wire protocol or the rendering changed, which must
//!   never happen silently.
//! * **Requests/sec and the keep-alive/baseline speedup** are
//!   *measurements*: host-dependent, reported but never gated exactly;
//!   `--check` only requires the event front end not to be slower than
//!   the thread-per-connection baseline it replaced.
//!
//! The keep-alive side pipelines [`PIPELINE_DEPTH`] requests per write
//! (the front end's whole point); the baseline side opens one
//! connection per request (its wire contract).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use bench::client::{http_get, Connection};

use crate::baseline::BaselineServer;
use crate::core::ServerConfig;
use crate::server::Server;

/// Requests pipelined per burst on the keep-alive side.
pub const PIPELINE_DEPTH: usize = 8;

/// Options for [`run_bench_serve`].
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    /// Requests pushed through *each* front end.
    pub requests: u64,
    /// Concurrent clients (keep-alive connections / closing loops).
    pub connections: usize,
}

impl Default for ServeBenchOptions {
    fn default() -> ServeBenchOptions {
        ServeBenchOptions { requests: 2_000, connections: 8 }
    }
}

/// One front end's side of the comparison.
#[derive(Debug, Clone)]
pub struct FrontEndResult {
    /// Requests sent (deterministic).
    pub requests: u64,
    /// 200 responses fully read (deterministic; must equal `requests`).
    pub responses_200: u64,
    /// Body bytes received (deterministic: `requests x table2 length`).
    pub body_bytes: u64,
    /// Transport/protocol failures (deterministic: must be 0).
    pub protocol_errors: u64,
    /// TCP sockets the clients opened.
    pub sockets_opened: u64,
    /// Wall seconds for the whole run (measurement).
    pub secs: f64,
}

impl FrontEndResult {
    /// Requests per second (measurement).
    pub fn rps(&self) -> f64 {
        if self.secs > 0.0 { self.responses_200 as f64 / self.secs } else { 0.0 }
    }
}

/// The full comparison report.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Concurrent clients both sides ran with.
    pub connections: usize,
    /// Keep-alive pipelining depth the event side used.
    pub pipeline_depth: usize,
    /// The event-driven keep-alive front end.
    pub keepalive: FrontEndResult,
    /// The thread-per-connection `Connection: close` baseline.
    pub baseline: FrontEndResult,
}

impl ServeBenchReport {
    /// Keep-alive throughput over baseline throughput.
    pub fn speedup(&self) -> f64 {
        let b = self.baseline.rps();
        if b > 0.0 { self.keepalive.rps() / b } else { 0.0 }
    }

    /// Renders the JSON report (`BENCH_serve.json`). Deterministic
    /// fields first; everything from `keepalive_rps` on is a
    /// host-dependent measurement.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"bench-serve/v1\",\n");
        let _ = writeln!(s, "  \"requests\": {},", self.keepalive.requests);
        let _ = writeln!(s, "  \"connections\": {},", self.connections);
        let _ = writeln!(s, "  \"pipeline_depth\": {},", self.pipeline_depth);
        let _ = writeln!(s, "  \"responses_200\": {},", self.keepalive.responses_200);
        let _ = writeln!(s, "  \"body_bytes\": {},", self.keepalive.body_bytes);
        let _ = writeln!(s, "  \"protocol_errors\": {},", self.keepalive.protocol_errors);
        let _ = writeln!(s, "  \"keepalive_sockets\": {},", self.keepalive.sockets_opened);
        let _ = writeln!(s, "  \"keepalive_rps\": {:.0},", self.keepalive.rps());
        let _ = writeln!(s, "  \"baseline_rps\": {:.0},", self.baseline.rps());
        let _ = writeln!(s, "  \"speedup\": {:.2}", self.speedup());
        s.push_str("}\n");
        s
    }

    /// The human-readable summary printed to stdout.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<22} {:>10} {:>10} {:>12} {:>8} {:>12}",
            "front end", "requests", "200s", "body bytes", "sockets", "req/s"
        );
        for (name, r) in
            [("keep-alive (epoll)", &self.keepalive), ("close-per-request", &self.baseline)]
        {
            let _ = writeln!(
                s,
                "{:<22} {:>10} {:>10} {:>12} {:>8} {:>12.0}",
                name, r.requests, r.responses_200, r.body_bytes, r.sockets_opened, r.rps()
            );
        }
        let _ = writeln!(
            s,
            "speedup: {:.2}x over {} connection(s), pipeline depth {}",
            self.speedup(),
            self.connections,
            self.pipeline_depth
        );
        s
    }
}

/// A quick-mode config for the benched servers: both front ends share
/// it, so the only difference measured is the wire discipline.
fn bench_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        quick: true,
        workers: 2,
        queue_capacity: 1024,
        ..ServerConfig::default()
    }
}

/// Drives `per_conn` fetches of `path` on one keep-alive connection,
/// in pipelined bursts of [`PIPELINE_DEPTH`].
fn keepalive_worker(authority: &str, path: &str, per_conn: u64) -> FrontEndResult {
    let mut conn = Connection::new(authority, Duration::from_secs(60));
    let mut out = FrontEndResult {
        requests: 0,
        responses_200: 0,
        body_bytes: 0,
        protocol_errors: 0,
        sockets_opened: 0,
        secs: 0.0,
    };
    let mut left = per_conn;
    while left > 0 {
        let burst = left.min(PIPELINE_DEPTH as u64) as usize;
        let paths: Vec<&str> = vec![path; burst];
        out.requests += burst as u64;
        match conn.pipeline(&paths) {
            Ok(responses) => {
                for r in responses {
                    if r.status == 200 {
                        out.responses_200 += 1;
                        out.body_bytes += r.body.len() as u64;
                    } else {
                        out.protocol_errors += 1;
                    }
                }
            }
            Err(_) => out.protocol_errors += burst as u64,
        }
        left -= burst as u64;
    }
    out.sockets_opened = conn.sockets_opened();
    out
}

/// Drives `per_conn` close-framed fetches (one connection each).
fn baseline_worker(url: &str, per_conn: u64) -> FrontEndResult {
    let mut out = FrontEndResult {
        requests: per_conn,
        responses_200: 0,
        body_bytes: 0,
        protocol_errors: 0,
        sockets_opened: per_conn,
        secs: 0.0,
    };
    for _ in 0..per_conn {
        match http_get(url, Duration::from_secs(60)) {
            Ok(r) if r.status == 200 => {
                out.responses_200 += 1;
                out.body_bytes += r.body.len() as u64;
            }
            _ => out.protocol_errors += 1,
        }
    }
    out
}

fn merge(parts: Vec<FrontEndResult>, secs: f64) -> FrontEndResult {
    FrontEndResult {
        requests: parts.iter().map(|p| p.requests).sum(),
        responses_200: parts.iter().map(|p| p.responses_200).sum(),
        body_bytes: parts.iter().map(|p| p.body_bytes).sum(),
        protocol_errors: parts.iter().map(|p| p.protocol_errors).sum(),
        sockets_opened: parts.iter().map(|p| p.sockets_opened).sum(),
        secs,
    }
}

/// Splits `total` across `n` workers, first workers taking the excess.
fn shares(total: u64, n: usize) -> Vec<u64> {
    let base = total / n as u64;
    let extra = (total % n as u64) as usize;
    (0..n).map(|i| base + u64::from(i < extra)).collect()
}

/// Runs the comparison: event front end first, then the baseline, each
/// warmed with one request so the rendered cache is hot and the whole
/// measured window is pure front-end work.
pub fn run_bench_serve(opts: &ServeBenchOptions) -> Result<ServeBenchReport, String> {
    if opts.requests == 0 || opts.connections == 0 {
        return Err("requests and connections must be at least 1".to_string());
    }
    let path = "/artifact/table2";

    // --- Event-driven keep-alive front end ---
    let server = Server::bind(bench_config()).map_err(|e| format!("bind event server: {e}"))?;
    let authority = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    // Warm the rendered cache (table2 has no executor cells, but the
    // first request still renders and caches the body).
    let warm = http_get(&format!("http://{authority}{path}"), Duration::from_secs(60))
        .map_err(|e| format!("warm event server: {e}"))?;
    if warm.status != 200 {
        return Err(format!("warm event server: HTTP {}", warm.status));
    }
    let keepalive = {
        let share = shares(opts.requests, opts.connections);
        let start = Instant::now();
        let parts = std::thread::scope(|s| {
            let handles: Vec<_> = share
                .iter()
                .map(|&n| {
                    let authority = &authority;
                    s.spawn(move || keepalive_worker(authority, path, n))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("keepalive worker")).collect()
        });
        merge(parts, start.elapsed().as_secs_f64())
    };
    handle.drain();
    join.join().expect("event server thread").map_err(|e| format!("event loop: {e}"))?;

    // --- Thread-per-connection close baseline ---
    let server =
        BaselineServer::bind(bench_config()).map_err(|e| format!("bind baseline server: {e}"))?;
    let url = format!("http://{}{path}", server.local_addr());
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let warm =
        http_get(&url, Duration::from_secs(60)).map_err(|e| format!("warm baseline: {e}"))?;
    if warm.status != 200 {
        return Err(format!("warm baseline server: HTTP {}", warm.status));
    }
    let baseline = {
        let share = shares(opts.requests, opts.connections);
        let start = Instant::now();
        let parts = std::thread::scope(|s| {
            let handles: Vec<_> = share
                .iter()
                .map(|&n| {
                    let url = &url;
                    s.spawn(move || baseline_worker(url, n))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("baseline worker")).collect()
        });
        merge(parts, start.elapsed().as_secs_f64())
    };
    handle.drain();
    join.join().expect("baseline server thread");

    // Cross-check the deterministic invariants before reporting: both
    // sides must have served every request, byte-for-byte the same
    // table2 body, with zero failures.
    for (name, r) in [("keep-alive", &keepalive), ("baseline", &baseline)] {
        if r.protocol_errors != 0 || r.responses_200 != r.requests {
            return Err(format!(
                "{name} front end dropped requests: {} of {} answered 200, {} error(s)",
                r.responses_200, r.requests, r.protocol_errors
            ));
        }
    }
    if keepalive.body_bytes != baseline.body_bytes {
        return Err(format!(
            "front ends served different bytes: keep-alive {} vs baseline {}",
            keepalive.body_bytes, baseline.body_bytes
        ));
    }

    Ok(ServeBenchReport {
        connections: opts.connections,
        pipeline_depth: PIPELINE_DEPTH,
        keepalive,
        baseline,
    })
}

/// Extracts `"key": <digits>` from the pinned JSON.
fn scan_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = text.find(&needle)? + needle.len();
    let digits: String = text[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Reads the pinned request count (the scale a `--check` run must use).
pub fn pinned_requests(pinned: &str) -> Result<u64, String> {
    scan_u64(pinned, "requests").ok_or_else(|| "pinned report lacks a requests field".to_string())
}

/// Reads the pinned connection count.
pub fn pinned_connections(pinned: &str) -> Result<usize, String> {
    scan_u64(pinned, "connections")
        .map(|n| n as usize)
        .ok_or_else(|| "pinned report lacks a connections field".to_string())
}

/// A drift found by [`check_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Which counter drifted.
    pub field: &'static str,
    /// Value in the committed file.
    pub pinned: u64,
    /// Value measured now.
    pub measured: u64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: pinned {} but measured {}", self.field, self.pinned, self.measured)
    }
}

/// Compares a fresh report's deterministic wire counters against a
/// committed `BENCH_serve.json`. Timings (`*_rps`, `speedup`) are never
/// compared — only counters that must be identical on any host.
pub fn check_report(pinned: &str, fresh: &ServeBenchReport) -> Result<Vec<Drift>, String> {
    let mut drifts = Vec::new();
    for (field, measured) in [
        ("requests", fresh.keepalive.requests),
        ("responses_200", fresh.keepalive.responses_200),
        ("body_bytes", fresh.keepalive.body_bytes),
        ("protocol_errors", fresh.keepalive.protocol_errors),
    ] {
        let pinned_v =
            scan_u64(pinned, field).ok_or_else(|| format!("pinned report lacks {field}"))?;
        if pinned_v != measured {
            drifts.push(Drift { field, pinned: pinned_v, measured });
        }
    }
    Ok(drifts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBenchOptions {
        ServeBenchOptions { requests: 64, connections: 4 }
    }

    #[test]
    fn bench_serves_every_request_and_check_pins_counters() {
        let report = run_bench_serve(&tiny()).unwrap();
        assert_eq!(report.keepalive.responses_200, 64);
        assert_eq!(report.baseline.responses_200, 64);
        assert_eq!(report.keepalive.protocol_errors, 0);
        assert!(report.keepalive.body_bytes > 0);
        // Keep-alive really reused sockets: at most one per connection
        // (plus none extra — the server never closed on us).
        assert!(
            report.keepalive.sockets_opened <= report.connections as u64,
            "keep-alive opened {} sockets for {} connections",
            report.keepalive.sockets_opened,
            report.connections
        );
        assert_eq!(report.baseline.sockets_opened, 64, "baseline is one socket per request");

        let json = report.render_json();
        assert_eq!(pinned_requests(&json).unwrap(), 64);
        assert_eq!(pinned_connections(&json).unwrap(), 4);
        assert!(check_report(&json, &report).unwrap().is_empty());

        let mut tampered = report.clone();
        tampered.keepalive.body_bytes += 1;
        let drifts = check_report(&json, &tampered).unwrap();
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].field, "body_bytes");
    }

    #[test]
    fn share_split_covers_the_total() {
        assert_eq!(shares(10, 3), vec![4, 3, 3]);
        assert_eq!(shares(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(shares(8, 4).iter().sum::<u64>(), 8);
    }

    #[test]
    fn scan_handles_missing_fields() {
        assert!(pinned_requests("{}").is_err());
        assert!(pinned_connections("{}").is_err());
    }
}
