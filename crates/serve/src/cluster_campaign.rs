//! Serving-tier fault-space campaigns: enumerate every
//! (shard × net-fault-kind × timing) coordinate, boot a real cluster
//! under that fault, burst requests through the proxy, and classify
//! what clients observed on the absorbed / degraded / failed-loud /
//! silent-corruption lattice.
//!
//! This is the cluster analogue of the executor-level campaign
//! (`regen campaign`): where that one proves the *compute* tier's
//! retry/journal envelope, this one proves the *serving* tier's
//! retry/failover envelope. The report is byte-deterministic (classes
//! only — see [`ClusterCampaignReport`]) so `CAMPAIGN_CLUSTER_BASELINE
//! .json` can be committed and CI can hold the line at zero silent
//! corruption.
//!
//! Topology per run: one set of shard servers (booted once — shard
//! caches only make hops faster, never change bytes) and one fresh
//! proxy per coordinate carrying that coordinate's [`NetFaultPlan`]
//! with zeroed delivery counters. Every burst compares response bytes
//! against a serial single-server reference fetched up front.
//!
//! [`NetFaultPlan`]: spectrebench::NetFaultPlan

use bench::client::Connection;
use bench::Artifact;
use spectrebench::{
    classify_cluster, enumerate_cluster_coordinates, ClusterCampaignReport, ClusterObservation,
    ClusterOutcome, SurvivalClass,
};

use crate::cluster::{boot_shards, proxy_config, shard_config};
use crate::core::ServerConfig;
use crate::server::Server;

/// Knobs for one serving-tier campaign.
#[derive(Debug, Clone)]
pub struct ClusterCampaignConfig {
    /// Cluster width; the coordinate space scales linearly with it.
    pub shards: usize,
    /// Quick workload variants (the committed baseline uses quick —
    /// the serving tier's behavior is variant-independent).
    pub quick: bool,
    /// Executor worker threads per plan (`None`: `REGEN_JOBS` /
    /// machine default).
    pub jobs: Option<usize>,
}

impl Default for ClusterCampaignConfig {
    fn default() -> ClusterCampaignConfig {
        ClusterCampaignConfig { shards: 4, quick: true, jobs: None }
    }
}

/// The burst issued per coordinate: the whole-document fan-out plus
/// every single-artifact path, so at least one hop lands on every
/// shard that owns anything.
fn burst_paths(quick: bool) -> Vec<String> {
    let q = u32::from(quick);
    let mut paths = vec![format!("/results?quick={q}")];
    for artifact in Artifact::ALL {
        paths.push(format!("/artifact/{}?quick={q}", artifact.name()));
    }
    paths
}

fn timeout() -> std::time::Duration {
    std::time::Duration::from_secs(60)
}

/// Fetches every burst path once from `addr`, returning the bodies.
fn fetch_bodies(addr: &str, paths: &[String]) -> Result<Vec<Vec<u8>>, String> {
    let mut conn = Connection::new(addr, timeout());
    paths
        .iter()
        .map(|p| match conn.get_classified(p) {
            Ok(r) if r.status == 200 => Ok(r.body),
            Ok(r) => Err(format!("{p} answered {}", r.status)),
            Err((_, e)) => Err(format!("{p} failed: {e}")),
        })
        .collect()
}

/// Runs the full campaign and returns the deterministic report.
pub fn run_cluster_campaign(
    cfg: &ClusterCampaignConfig,
) -> std::io::Result<ClusterCampaignReport> {
    let base = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        quick: cfg.quick,
        jobs: cfg.jobs,
        // Two attempts per hop keep `first`-timing absorption observable
        // while bounding the worst-case backoff spent before failover.
        fetch_attempts: 2,
        ..ServerConfig::default()
    };
    let paths = burst_paths(cfg.quick);

    // Serial reference: one plain server, every path once.
    let reference = {
        let server = Server::bind(shard_config(&base, usize::MAX))?;
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        let bodies = fetch_bodies(&addr, &paths);
        handle.drain();
        let _ = join.join();
        bodies.map_err(|e| {
            std::io::Error::other(format!("serial reference sweep failed: {e}"))
        })?
    };

    // The shard tier, shared across coordinates.
    let shards = boot_shards(&base, cfg.shards)?;
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();

    let mut outcomes = Vec::new();
    for coord in enumerate_cluster_coordinates(cfg.shards) {
        let mut proxy_cfg = proxy_config(&base, addrs.clone());
        proxy_cfg.net_inject = Some(coord.net_fault_plan());
        let proxy = Server::bind(proxy_cfg)?;
        let proxy_addr = proxy.local_addr().to_string();
        let handle = proxy.handle();
        let join = std::thread::spawn(move || proxy.run());

        let mut obs = ClusterObservation::default();
        let mut conn = Connection::new(&proxy_addr, timeout());
        for (i, path) in paths.iter().enumerate() {
            match conn.get_classified(path) {
                Ok(r) if r.status == 200 => {
                    if r.body == reference[i] {
                        obs.responses_200 += 1;
                    } else {
                        obs.mismatches += 1;
                    }
                    if r.header("x-regend-shard-degraded").is_some() {
                        obs.failovers += 1;
                        obs.degraded += 1;
                    }
                }
                Ok(r) if r.status == 503 => obs.responses_503 += 1,
                Ok(_) => obs.errors += 1,
                Err(_) => obs.errors += 1,
            }
        }
        handle.drain();
        let _ = join.join();

        let class = classify_cluster(&obs);
        let detail = match class {
            SurvivalClass::Absorbed => "retry absorbed the fault".to_string(),
            SurvivalClass::Degraded => "failover to local recompute".to_string(),
            SurvivalClass::FailedLoud => "request errors reached the client".to_string(),
            SurvivalClass::SilentCorruption => "byte mismatch reached the client".to_string(),
        };
        outcomes.push(ClusterOutcome { coord, class, detail });
    }

    for shard in shards {
        shard.handle.drain();
        let _ = shard.join.join();
    }

    Ok(ClusterCampaignReport {
        shards: cfg.shards,
        requests_per_coordinate: paths.len(),
        quick: cfg.quick,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectrebench::{FaultTiming, NetFaultKind};

    /// A one-shard campaign end to end: the whole coordinate space is
    /// classified, nothing silently corrupts, and `always`-timing
    /// faults degrade (failover) rather than fail loud.
    #[test]
    fn one_shard_campaign_classifies_the_space() {
        let report = run_cluster_campaign(&ClusterCampaignConfig {
            shards: 1,
            quick: true,
            jobs: Some(2),
        })
        .expect("campaign runs");
        assert_eq!(report.outcomes.len(), NetFaultKind::ALL.len() * FaultTiming::ALL.len());
        assert!(
            report.silent_corruptions().is_empty(),
            "silent corruption:\n{}",
            report.render_matrix()
        );
        for outcome in &report.outcomes {
            match outcome.coord.timing {
                FaultTiming::First => assert_eq!(
                    outcome.class,
                    SurvivalClass::Absorbed,
                    "first-timing fault must be absorbed by retry: {}\n{}",
                    outcome.coord.id(),
                    report.render_matrix()
                ),
                FaultTiming::Always => assert_eq!(
                    outcome.class,
                    SurvivalClass::Degraded,
                    "always-timing fault must degrade, not fail: {}\n{}",
                    outcome.coord.id(),
                    report.render_matrix()
                ),
            }
        }
        // The report is byte-deterministic: rendering twice is identical.
        assert_eq!(report.to_json(), report.to_json());
    }
}
