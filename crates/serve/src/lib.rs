//! # serve — the `regend` query daemon
//!
//! The CLI regenerates the paper's artifacts as a batch; `regend`
//! serves the same renderings over the network, on demand, to many
//! concurrent clients. It answers from the same [`Executor`]
//! machinery as `regen` — same plans, same retry/watchdog/fault
//! envelope, same content-addressed cell cache — so anything it
//! returns is byte-identical to what the CLI would have printed (and,
//! for a full-fidelity server, to the committed
//! `results_regenerated.txt`).
//!
//! * [`http`] — a minimal hand-rolled HTTP/1.1 layer with an
//!   incremental, fragmentation-tolerant parser (the repo's
//!   no-external-crates policy extends to the wire).
//! * [`sys`] — raw `epoll(7)`/`eventfd(2)` shims, no libc crate.
//! * [`core`] — routing, validation, the three deduplication layers
//!   (rendered cache, single-flight, executor cell cache), and run
//!   counters, shared by both front ends below.
//! * [`server`] — the event-driven front end: one epoll readiness
//!   loop, HTTP/1.1 keep-alive with pipelining, zero-copy cache hits,
//!   bounded dispatch to a worker pool (429 + `Retry-After` when
//!   full), per-request deadlines, idle/stall reaping, the `/metrics`
//!   exposition, graceful drain on SIGTERM.
//! * [`baseline`] — the frozen PR 5 thread-per-connection,
//!   `Connection: close` acceptor, kept as the in-tree reference that
//!   `bench-serve` measures the event loop against.
//! * [`bench_serve`] — the `bench-serve` binary's engine: pushes an
//!   identical workload through both front ends and pins the
//!   deterministic wire counters in `BENCH_serve.json`.
//! * [`shard`] — the cluster building blocks: the consistent-hash
//!   routing ring, the per-shard health state machine
//!   (healthy → suspect → down), and the pooled fetch path with
//!   seeded network-fault injection and CRC-verified bodies.
//! * [`proxy`] — the cluster front end: route slow work to the owning
//!   shard, reassemble `/results` from the fan-out, fail over to local
//!   recompute (same bytes, degraded-mode headers) when a shard
//!   cannot answer.
//! * [`cluster`] — boot N shard instances plus a proxy in one process
//!   (`regend --shards N`, tests, the campaign driver).
//! * [`cluster_campaign`] — `regend campaign`: enumerate every
//!   (shard × net-fault × timing) coordinate, classify client-visible
//!   outcomes on the absorbed/degraded/failed-loud/silent-corruption
//!   lattice, and hold `CAMPAIGN_CLUSTER_BASELINE.json` at zero
//!   silent corruption.
//!
//! [`Executor`]: spectrebench::Executor

pub mod baseline;
pub mod bench_serve;
pub mod cluster;
pub mod cluster_campaign;
pub mod core;
pub mod http;
pub mod proxy;
pub mod server;
pub mod shard;
pub mod sys;

pub use baseline::{BaselineHandle, BaselineServer};
pub use cluster::{boot_shards, proxy_config, shard_config, ShardInstance};
pub use cluster_campaign::{run_cluster_campaign, ClusterCampaignConfig};
pub use core::{
    experiment_artifact, Rendered, RunSummary, ServerConfig, SlowWork,
};
pub use http::{percent_decode, percent_encode_path, Body, Request, RequestParser, Response};
pub use server::{install_sigterm_hook, Server, ServerHandle};
pub use shard::{Cluster, HashRing, ShardHealth, ShardStatus};
