//! # serve — the `regend` query daemon
//!
//! The CLI regenerates the paper's artifacts as a batch; `regend`
//! serves the same renderings over the network, on demand, to many
//! concurrent clients. It answers from the same [`Executor`]
//! machinery as `regen` — same plans, same retry/watchdog/fault
//! envelope, same content-addressed cell cache — so anything it
//! returns is byte-identical to what the CLI would have printed (and,
//! for a full-fidelity server, to the committed
//! `results_regenerated.txt`).
//!
//! * [`http`] — a minimal hand-rolled HTTP/1.1 layer (the repo's
//!   no-external-crates policy extends to the wire).
//! * [`server`] — admission control (bounded queue, 429 +
//!   `Retry-After`), a fixed worker pool, single-flight coalescing of
//!   concurrent identical queries, per-request deadlines, the
//!   `/metrics` exposition, and graceful drain on SIGTERM.
//!
//! [`Executor`]: spectrebench::Executor

pub mod http;
pub mod server;

pub use http::{percent_decode, percent_encode_path, Request, Response};
pub use server::{
    experiment_artifact, install_sigterm_hook, Rendered, RunSummary, Server, ServerConfig,
    ServerHandle,
};
