//! The event-driven `regend` front end: one epoll readiness loop,
//! keep-alive connections, pipelined requests, zero-copy cache hits.
//!
//! ```text
//!                       ┌────────────── readiness loop ──────────────┐
//!  clients ── accept ──▶│ epoll_wait ─▶ read ─▶ incremental parser   │
//!   (keep-alive,        │     ▲                  │ requests          │
//!    pipelined)         │     │        fast path │     slow path     │
//!                       │     │    (cache hits,  ▼         ▼         │
//!                       │     │     /metrics) response   bounded     │
//!                       │     │         slots ◀─────┐   dispatch q   │
//!                       │     │           │          │ full? 429     │
//!                       │  wakeup fd      ▼          │     │         │
//!                       └─────┼─── ordered flush ◀───┼─────┼─────────┘
//!                             │                      ▼     ▼
//!                         completions ◀── worker pool (Core::execute:
//!                                          single-flight ▸ Executor)
//! ```
//!
//! The PR 5 server spent a TCP handshake and a dedicated thread on
//! every request. Here one thread owns every socket through raw
//! `epoll` syscalls ([`crate::sys`]); each connection is a small state
//! machine — an incremental [`RequestParser`], an ordered queue of
//! response *slots*, and a write cursor. Requests that only need a
//! `HashMap` probe (rendered-cache hits, `/healthz`, `/metrics`) are
//! answered on the loop thread, bodies written zero-copy from shared
//! `Arc<[u8]>` buffers. Cold work is classified by [`Core::route`]
//! into [`SlowWork`], admission-checked against the bounded dispatch
//! queue (full ⇒ immediate 429 + `Retry-After`), and executed on the
//! worker pool; completions come back over a mutex queue plus an
//! `eventfd` wakeup, and are flushed strictly in request order so
//! pipelined clients see HTTP/1.1 ordering.
//!
//! Hygiene: a connection that stops making progress — half a request
//! then silence, or a reader that never drains its responses — is
//! reaped at `idle_timeout` without touching any other connection; a
//! peer that vanishes mid-response is counted in
//! `regend_disconnects_total` and its slot freed immediately. Drain
//! (SIGTERM, `POST /shutdown`, [`ServerHandle::drain`]) closes the
//! listener, finishes every admitted request, flushes, and returns
//! from [`Server::run`] with the run's counters.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use spectrebench::obs::EventKind;

use crate::core::{deadline_expired, lock, Action, Core, RunSummary, ServerConfig, SlowWork};
use crate::http::{Body, HttpError, Request, RequestParser, Response};
use crate::sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// epoll token of the wakeup eventfd.
const TOKEN_WAKE: u64 = 1;
/// First connection token.
const TOKEN_CONN0: u64 = 2;

// SIGTERM handling without a libc crate: libc itself is always linked
// on the targets std supports, so declaring `signal` suffices. The
// handler only stores to an atomic, which is async-signal-safe.
static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM hook (no-op off unix). Called by the `regend`
/// binary; in-process tests drain via [`ServerHandle`] instead.
pub fn install_sigterm_hook() {
    #[cfg(unix)]
    {
        const SIGTERM_NUM: i32 = 15;
        unsafe {
            signal(SIGTERM_NUM, on_sigterm as extern "C" fn(i32) as *const () as usize);
        }
    }
}

/// One slow request handed to the worker pool.
struct Job {
    conn: u64,
    slot: u64,
    work: SlowWork,
    path: String,
    arrived: Instant,
    deadline: Option<Duration>,
}

/// The bounded dispatch queue between the loop and the workers.
struct Dispatch {
    jobs: Mutex<(VecDeque<Job>, bool)>,
    cv: Condvar,
}

impl Dispatch {
    fn new() -> Dispatch {
        Dispatch { jobs: Mutex::new((VecDeque::new(), false)), cv: Condvar::new() }
    }

    fn depth(&self) -> usize {
        lock(&self.jobs).0.len()
    }

    fn push(&self, job: Job) {
        lock(&self.jobs).0.push_back(job);
        self.cv.notify_one();
    }

    fn shutdown(&self) {
        lock(&self.jobs).1 = true;
        self.cv.notify_all();
    }
}

/// A finished slow job, traveling back to the loop.
struct Completion {
    conn: u64,
    slot: u64,
    response: Response,
}

/// Bookkeeping for one request occupying a response slot.
struct SlotMeta {
    id: u64,
    endpoint: &'static str,
    path: String,
    arrived: Instant,
    keep_alive: bool,
    /// Admitted requests carry completion accounting (`served`,
    /// in-flight gauge, `RequestCompleted`); 429 rejections do not,
    /// matching the PR 5 counters.
    counted: bool,
}

/// One response slot: pipelined requests each get a slot in arrival
/// order, and slots flush strictly in that order.
enum Slot {
    /// Dispatched to the worker pool; the response is on its way.
    Waiting(SlotMeta),
    /// Response known, waiting its turn on the wire.
    Ready(SlotMeta, Response),
}

impl Slot {
    fn meta(&self) -> &SlotMeta {
        match self {
            Slot::Waiting(m) | Slot::Ready(m, _) => m,
        }
    }
}

/// The response currently being written: serialized head (plus any
/// owned body), then an optional shared body written zero-copy.
struct Writing {
    meta: SlotMeta,
    status: u16,
    head: Vec<u8>,
    pos: usize,
    body: Option<Arc<[u8]>>,
    body_pos: usize,
}

fn start_writing(meta: SlotMeta, response: Response) -> Writing {
    let status = response.status;
    let head = {
        let mut head = response.render_head(meta.keep_alive);
        if let Body::Text(s) = &response.body {
            head.extend_from_slice(s.as_bytes());
        }
        head
    };
    let body = match response.body {
        Body::Text(_) => None,
        Body::Shared(b) => Some(b),
    };
    Writing { meta, status, head, pos: 0, body, body_pos: 0 }
}

/// Why a connection is being closed (decides the hygiene counters).
#[derive(Clone, Copy, PartialEq)]
enum CloseReason {
    /// Clean close: peer finished, drain, or quiet idle reap.
    Normal,
    /// Peer vanished mid-request or mid-response.
    Disconnect,
    /// Reaped by the idle deadline while holding partial state.
    IdleStall,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    parser: RequestParser,
    slots: VecDeque<Slot>,
    writing: Option<Writing>,
    next_slot: u64,
    /// Responses completed on this connection.
    requests: u64,
    last_activity: Instant,
    close_after_flush: bool,
    /// Peer half-closed its sending side (we may still owe responses).
    peer_eof: bool,
    /// Sticky parse failure: stop reading, flush the 400, close.
    stop_reading: bool,
    /// Interest bits currently registered with epoll.
    registered: u32,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Conn {
        Conn {
            stream,
            fd,
            parser: RequestParser::new(),
            slots: VecDeque::new(),
            writing: None,
            next_slot: 0,
            requests: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
            peer_eof: false,
            stop_reading: false,
            registered: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn has_waiting(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, Slot::Waiting(_)))
    }

    fn write_pending(&self) -> bool {
        self.writing.is_some() || matches!(self.slots.front(), Some(Slot::Ready(..)))
    }

    /// Once everything owed is flushed, should this connection close —
    /// and how should the close be classified?
    fn finished(&self) -> Option<CloseReason> {
        if self.writing.is_some() || !self.slots.is_empty() {
            return None;
        }
        if self.close_after_flush {
            return Some(CloseReason::Normal);
        }
        if self.peer_eof {
            // EOF with half a request buffered means the peer gave up
            // mid-send; a clean EOF between requests is a normal close.
            return Some(if self.parser.buffered() > 0 {
                CloseReason::Disconnect
            } else {
                CloseReason::Normal
            });
        }
        None
    }
}

/// Outcome of a flush attempt.
enum FlushOutcome {
    /// Wrote all it could; nothing pending or socket still writable.
    Progress,
    /// Peer gone (write error).
    Dead,
}

/// The event-driven `regend` server. [`Server::bind`], then
/// [`Server::run`] (which blocks until drained). [`Server::handle`]
/// gives a clonable handle for triggering drain from tests or signal
/// handlers.
pub struct Server {
    core: Arc<Core>,
    wake: Arc<WakeFd>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

/// Clonable handle onto a running server.
#[derive(Clone)]
pub struct ServerHandle {
    core: Arc<Core>,
    wake: Arc<WakeFd>,
}

impl ServerHandle {
    /// Initiates graceful drain: stop accepting, finish everything
    /// admitted, flush, then let [`Server::run`] return.
    pub fn drain(&self) {
        self.core.draining.store(true, Ordering::SeqCst);
        self.wake.wake();
    }

    /// True once drain has started.
    pub fn is_draining(&self) -> bool {
        self.core.is_draining()
    }
}

impl Server {
    /// Binds the listener and builds the shared core. No thread is
    /// spawned until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let core = Arc::new(Core::new(cfg)?);
        let wake = Arc::new(WakeFd::new()?);
        Ok(Server { core, wake, listener, local_addr })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle for triggering drain.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { core: Arc::clone(&self.core), wake: Arc::clone(&self.wake) }
    }

    /// Serves until drained, then returns the run's counters.
    /// Everything admitted before drain began is answered.
    pub fn run(self) -> std::io::Result<RunSummary> {
        let core = &*self.core;
        let dispatch = Dispatch::new();
        let completions: Mutex<Vec<Completion>> = Mutex::new(Vec::new());
        let epoll = Epoll::new()?;
        epoll.add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(self.wake.fd(), EPOLLIN, TOKEN_WAKE)?;
        std::thread::scope(|s| {
            for _ in 0..core.cfg.workers.max(1) {
                s.spawn(|| worker_loop(core, &dispatch, &completions, &self.wake));
            }
            if core.cluster.is_some() {
                s.spawn(|| prober_loop(core));
            }
            let mut event_loop = EventLoop {
                core,
                dispatch: &dispatch,
                completions: &completions,
                wake: &self.wake,
                epoll,
                listener: Some(&self.listener),
                conns: HashMap::new(),
                next_conn: TOKEN_CONN0,
                jobs_in_flight: 0,
            };
            event_loop.run();
            dispatch.shutdown();
        });
        Ok(core.summary())
    }
}

/// The health prober on a cluster proxy: walks every shard's
/// `/healthz` each probe interval, feeding the per-shard state
/// machines so fetch paths skip straight to failover on down shards
/// and resumed shards are noticed without a client request. Sleeps in
/// short steps so drain is honored within ~50ms.
fn prober_loop(core: &Core) {
    let Some(cluster) = &core.cluster else { return };
    while !core.is_draining() {
        cluster.probe_all(&core.bus);
        let mut remaining = core.cfg.probe_interval;
        while !remaining.is_zero() && !core.is_draining() {
            let step = remaining.min(std::time::Duration::from_millis(50));
            std::thread::sleep(step);
            remaining = remaining.saturating_sub(step);
        }
    }
}

/// A worker: pops slow jobs, applies the deadline policy around
/// [`Core::execute`], posts the completion, wakes the loop.
fn worker_loop(
    core: &Core,
    dispatch: &Dispatch,
    completions: &Mutex<Vec<Completion>>,
    wake: &WakeFd,
) {
    loop {
        let job = {
            let mut g = lock(&dispatch.jobs);
            loop {
                if let Some(job) = g.0.pop_front() {
                    break Some(job);
                }
                if g.1 {
                    break None;
                }
                g = dispatch.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { return };
        let response = run_job(core, &job);
        lock(completions).push(Completion { conn: job.conn, slot: job.slot, response });
        wake.wake();
    }
}

fn run_job(core: &Core, job: &Job) -> Response {
    if deadline_expired(job.deadline, job.arrived) {
        core.bus.emit("regend", &job.path, "", 0, EventKind::DeadlineExpired);
        return Response::text(504, "regend: deadline expired in queue\n");
    }
    let mut response = core.execute(&job.work, &job.path);
    if deadline_expired(job.deadline, job.arrived) && response.status == 200 {
        // Computed, but too late to promise freshness bounds: the
        // client asked for a deadline, honor it.
        core.bus.emit("regend", &job.path, "", 0, EventKind::DeadlineExpired);
        response = Response::text(504, "regend: deadline expired while computing\n");
    }
    response
}

/// The readiness loop: owns every socket, the parser states, and the
/// ordered response slots. Runs on the thread that called
/// [`Server::run`].
struct EventLoop<'a> {
    core: &'a Core,
    dispatch: &'a Dispatch,
    completions: &'a Mutex<Vec<Completion>>,
    wake: &'a WakeFd,
    epoll: Epoll,
    listener: Option<&'a TcpListener>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Jobs pushed but whose completions the loop has not consumed.
    jobs_in_flight: u64,
}

impl EventLoop<'_> {
    fn run(&mut self) {
        let mut events = [EpollEvent::default(); 64];
        loop {
            if SIGTERM.load(Ordering::SeqCst) {
                self.core.draining.store(true, Ordering::SeqCst);
            }
            if self.core.is_draining() {
                self.begin_drain();
                if self.conns.is_empty() && self.jobs_in_flight == 0 {
                    return;
                }
            }
            let n = match self.epoll.wait(&mut events, 50) {
                Ok(n) => n,
                Err(_) => {
                    // An unusable epoll fd is unrecoverable; drain so
                    // the process exits cleanly instead of spinning.
                    self.core.draining.store(true, Ordering::SeqCst);
                    0
                }
            };
            let mut touched: Vec<u64> = Vec::with_capacity(n);
            for ev in events.iter().take(n) {
                let (bits, token) = (ev.events, ev.data);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake.drain(),
                    id => {
                        self.conn_ready(id, bits);
                        touched.push(id);
                    }
                }
            }
            let delivered = self.deliver_completions();
            for id in touched.into_iter().chain(delivered) {
                self.settle(id);
            }
            self.sweep_idle();
        }
    }

    /// First pass after drain is requested: stop accepting and mark
    /// every connection close-after-flush. Idempotent.
    fn begin_drain(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
            for conn in self.conns.values_mut() {
                conn.close_after_flush = true;
            }
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                self.settle(id);
            }
        }
    }

    fn accept_ready(&mut self) {
        let Some(listener) = self.listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let id = self.next_conn;
                    self.next_conn += 1;
                    if self.epoll.add(fd, EPOLLIN | EPOLLRDHUP, id).is_err() {
                        continue;
                    }
                    self.conns.insert(id, Conn::new(stream, fd));
                    self.core.connections.fetch_add(1, Ordering::SeqCst);
                    self.core.bus.emit("regend", "", "", 0, EventKind::ConnectionOpened);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Handles readiness on one connection: read newly arrived bytes
    /// through the parser (admitting / rejecting / answering each
    /// request), then push pending response bytes.
    fn conn_ready(&mut self, id: u64, bits: u32) {
        let Self { core, dispatch, conns, jobs_in_flight, .. } = self;
        let Some(conn) = conns.get_mut(&id) else { return };
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            mark_dead(conn);
            return;
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 && !conn.stop_reading && !conn.close_after_flush {
            read_ready(core, dispatch, jobs_in_flight, id, conn);
        }
        if conn.write_pending() {
            if let FlushOutcome::Dead = try_flush(core, conn) {
                mark_dead(conn);
            }
        }
    }

    /// Consumes completed slow jobs; returns the connections touched.
    fn deliver_completions(&mut self) -> Vec<u64> {
        let done: Vec<Completion> = std::mem::take(&mut *lock(self.completions));
        let mut touched = Vec::with_capacity(done.len());
        for c in done {
            self.jobs_in_flight -= 1;
            let Some(conn) = self.conns.get_mut(&c.conn) else {
                // The connection died while the job ran; its 499 was
                // accounted at close time.
                continue;
            };
            let pos = conn
                .slots
                .iter()
                .position(|s| s.meta().id == c.slot && matches!(s, Slot::Waiting(_)));
            if let Some(pos) = pos {
                if let Some(Slot::Waiting(meta)) = conn.slots.remove(pos) {
                    conn.slots.insert(pos, Slot::Ready(meta, c.response));
                }
            }
            conn.last_activity = Instant::now();
            if let FlushOutcome::Dead = try_flush(self.core, conn) {
                mark_dead(conn);
            }
            touched.push(c.conn);
        }
        touched
    }

    /// Re-registers interest for one connection, or closes it if it is
    /// finished or dead.
    fn settle(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.stop_reading && conn.registered == u32::MAX {
            // Marked dead by an earlier phase this iteration.
            self.close_conn(id, CloseReason::Disconnect);
            return;
        }
        if let Some(reason) = conn.finished() {
            self.close_conn(id, reason);
            return;
        }
        let mut want = EPOLLRDHUP;
        if !conn.stop_reading && !conn.close_after_flush && !conn.peer_eof {
            want |= EPOLLIN;
        }
        if conn.write_pending() {
            want |= EPOLLOUT;
        }
        if want != conn.registered {
            if self.epoll.modify(conn.fd, want, id).is_ok() {
                conn.registered = want;
            } else {
                self.close_conn(id, CloseReason::Disconnect);
            }
        }
    }

    /// Removes a connection: deregisters the fd, accounts unanswered
    /// admitted requests as 499, and emits the close-reason events the
    /// hygiene metrics are derived from.
    fn close_conn(&mut self, id: u64, reason: CloseReason) {
        let Some(conn) = self.conns.remove(&id) else { return };
        let _ = self.epoll.delete(conn.fd);
        let unanswered = conn
            .writing
            .iter()
            .map(|w| &w.meta)
            .chain(conn.slots.iter().map(|s| s.meta()));
        for meta in unanswered {
            finish(self.core, meta, 499);
        }
        match reason {
            CloseReason::Normal => {}
            CloseReason::Disconnect => {
                self.core.disconnects.fetch_add(1, Ordering::SeqCst);
                self.core.bus.emit("regend", "", "", 0, EventKind::ClientDisconnected);
            }
            CloseReason::IdleStall => {
                self.core.idle_timeouts.fetch_add(1, Ordering::SeqCst);
                self.core.bus.emit("regend", "", "", 0, EventKind::IdleTimeout);
            }
        }
        self.core
            .bus
            .emit("regend", "", "", 0, EventKind::ConnectionClosed { requests: conn.requests });
    }

    /// Reaps connections that stopped making progress. A connection
    /// merely waiting on slow server-side work is exempt — the stall
    /// deadline measures the *peer*, not the executor.
    fn sweep_idle(&mut self) {
        let timeout = self.core.cfg.idle_timeout;
        let now = Instant::now();
        let mut reap: Vec<(u64, CloseReason)> = Vec::new();
        for (id, conn) in &self.conns {
            if conn.has_waiting() {
                continue;
            }
            if now.saturating_duration_since(conn.last_activity) <= timeout {
                continue;
            }
            let stalled =
                conn.write_pending() || conn.parser.buffered() > 0 || conn.close_after_flush;
            let reason =
                if stalled { CloseReason::IdleStall } else { CloseReason::Normal };
            reap.push((*id, reason));
        }
        for (id, reason) in reap {
            self.close_conn(id, reason);
        }
    }
}

/// Marks a connection for closure as a disconnect at settle time.
fn mark_dead(conn: &mut Conn) {
    conn.stop_reading = true;
    conn.registered = u32::MAX;
}

/// Records a finished admitted request: counters, gauge, and the
/// completion event carrying the measured end-to-end latency.
fn finish(core: &Core, meta: &SlotMeta, status: u16) {
    if !meta.counted {
        return;
    }
    core.served.fetch_add(1, Ordering::SeqCst);
    core.in_flight.fetch_sub(1, Ordering::SeqCst);
    let micros = meta.arrived.elapsed().as_micros() as u64;
    core.bus.emit(meta.endpoint, &meta.path, "", 0, EventKind::RequestCompleted {
        status,
        micros,
    });
}

/// Reads everything available, feeding the incremental parser and
/// handling each complete request as it surfaces.
fn read_ready(
    core: &Core,
    dispatch: &Dispatch,
    jobs_in_flight: &mut u64,
    conn_id: u64,
    conn: &mut Conn,
) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.parser.push(&buf[..n]);
                loop {
                    match conn.parser.next_request() {
                        Ok(Some(request)) => {
                            handle_request(core, dispatch, jobs_in_flight, conn_id, conn, request);
                        }
                        Ok(None) => break,
                        Err(HttpError::Malformed(m)) => {
                            reject_malformed(core, dispatch, conn, &m);
                            return;
                        }
                        Err(HttpError::Io(_)) => break,
                    }
                }
                if conn.stop_reading || conn.close_after_flush {
                    return;
                }
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                mark_dead(conn);
                return;
            }
        }
    }
}

/// A sticky parse failure: answer 400 once (accounted like any other
/// admitted request, as PR 5 did), stop reading, close after flush.
fn reject_malformed(core: &Core, dispatch: &Dispatch, conn: &mut Conn, message: &str) {
    admit(core, dispatch.depth());
    let meta = new_slot_meta(conn, "error", String::new(), false, true);
    conn.slots
        .push_back(Slot::Ready(meta, Response::text(400, format!("regend: {message}\n"))));
    conn.stop_reading = true;
    conn.close_after_flush = true;
}

fn admit(core: &Core, queue_depth: usize) {
    core.admitted.fetch_add(1, Ordering::SeqCst);
    core.in_flight.fetch_add(1, Ordering::SeqCst);
    core.bus.emit("regend", "", "", 0, EventKind::RequestReceived { queue_depth });
}

fn new_slot_meta(
    conn: &mut Conn,
    endpoint: &'static str,
    path: String,
    keep_alive: bool,
    counted: bool,
) -> SlotMeta {
    let id = conn.next_slot;
    conn.next_slot += 1;
    SlotMeta { id, endpoint, path, arrived: Instant::now(), keep_alive, counted }
}

/// Routes one parsed request: fast-path answers become Ready slots on
/// the spot; slow work is admission-checked and dispatched; `POST
/// /shutdown` flips the drain flag.
fn handle_request(
    core: &Core,
    dispatch: &Dispatch,
    jobs_in_flight: &mut u64,
    conn_id: u64,
    conn: &mut Conn,
    request: Request,
) {
    let arrived = Instant::now();
    let depth = conn.slots.len() + usize::from(conn.writing.is_some()) + 1;
    core.bus.emit("regend", &request.path, "", 0, EventKind::PipelineObserved { depth });

    if core.is_draining() {
        admit(core, dispatch.depth());
        let meta = new_slot_meta(conn, "error", request.path.clone(), false, true);
        conn.slots.push_back(Slot::Ready(
            meta,
            Response::text(503, "regend: draining, connection closing\n"),
        ));
        conn.close_after_flush = true;
        return;
    }

    let keep_alive = request.keep_alive;
    let deadline = core.request_deadline(&request);
    let (endpoint, action) = core.route(&request, dispatch.depth());
    match action {
        Action::Done(response) => {
            admit(core, dispatch.depth());
            let meta = new_slot_meta(conn, endpoint, request.path.clone(), keep_alive, true);
            let response = if deadline_expired(deadline, arrived) {
                core.bus.emit("regend", &request.path, "", 0, EventKind::DeadlineExpired);
                Response::text(504, "regend: deadline expired in queue\n")
            } else {
                response
            };
            conn.slots.push_back(Slot::Ready(meta, response));
            if !keep_alive {
                conn.close_after_flush = true;
            }
        }
        Action::StartDrain(response) => {
            core.draining.store(true, Ordering::SeqCst);
            admit(core, dispatch.depth());
            let meta = new_slot_meta(conn, endpoint, request.path.clone(), false, true);
            conn.slots.push_back(Slot::Ready(meta, response));
            conn.close_after_flush = true;
        }
        Action::Slow(work) => {
            let queue_depth = dispatch.depth();
            if queue_depth >= core.cfg.queue_capacity.max(1) {
                core.rejected.fetch_add(1, Ordering::SeqCst);
                core.bus.emit("regend", "", "", 0, EventKind::RequestRejected);
                let meta =
                    new_slot_meta(conn, endpoint, request.path.clone(), keep_alive, false);
                conn.slots.push_back(Slot::Ready(
                    meta,
                    Response::text(429, "regend: admission queue full, retry shortly\n")
                        .with_header("Retry-After", "1"),
                ));
                if !keep_alive {
                    conn.close_after_flush = true;
                }
                return;
            }
            admit(core, queue_depth + 1);
            let meta = new_slot_meta(conn, endpoint, request.path.clone(), keep_alive, true);
            let job = Job {
                conn: conn_id,
                slot: meta.id,
                work,
                path: request.path.clone(),
                arrived,
                deadline,
            };
            conn.slots.push_back(Slot::Waiting(meta));
            *jobs_in_flight += 1;
            dispatch.push(job);
            if !keep_alive {
                conn.close_after_flush = true;
            }
        }
    }
}

/// Pushes response bytes: the front Ready slot's serialized head, then
/// its shared body zero-copy, strictly in slot order. Stops at
/// `WouldBlock` (EPOLLOUT takes over) or a dead peer.
fn try_flush(core: &Core, conn: &mut Conn) -> FlushOutcome {
    loop {
        if conn.writing.is_none() {
            match conn.slots.front() {
                Some(Slot::Ready(..)) => {
                    let Some(Slot::Ready(meta, response)) = conn.slots.pop_front() else {
                        unreachable!()
                    };
                    conn.writing = Some(start_writing(meta, response));
                }
                _ => return FlushOutcome::Progress,
            }
        }
        let Some(w) = conn.writing.as_mut() else { return FlushOutcome::Progress };
        while w.pos < w.head.len() {
            match (&conn.stream).write(&w.head[w.pos..]) {
                Ok(0) => return FlushOutcome::Dead,
                Ok(n) => {
                    w.pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return FlushOutcome::Progress
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushOutcome::Dead,
            }
        }
        if let Some(body) = &w.body {
            while w.body_pos < body.len() {
                match (&conn.stream).write(&body[w.body_pos..]) {
                    Ok(0) => return FlushOutcome::Dead,
                    Ok(n) => {
                        w.body_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return FlushOutcome::Progress
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return FlushOutcome::Dead,
                }
            }
        }
        let w = conn.writing.take().unwrap_or_else(|| unreachable!());
        conn.requests += 1;
        finish(core, &w.meta, w.status);
        if !w.meta.keep_alive {
            conn.close_after_flush = true;
            return FlushOutcome::Progress;
        }
    }
}
