//! The `regend` server: admission control, dispatch, and drain.
//!
//! ```text
//!            accept            bounded queue             worker pool
//!  clients ────────▶ acceptor ───────────────▶ workers ─────────────▶ responses
//!                      │  full? 429 + Retry-After │
//!                      ▼                          ▼
//!               RequestRejected          rendered-artifact cache
//!                                          │ miss
//!                                          ▼
//!                                   single-flight group
//!                                          │ leader only
//!                                          ▼
//!                             shared Executor (plan → schedule →
//!                             content-addressed cell cache)
//! ```
//!
//! Three layers of deduplication keep a hot server cheap:
//!
//! 1. the **rendered-artifact cache** answers repeat queries from
//!    memory (byte-identical to the first rendering, which the golden
//!    pin ties to `results_regenerated.txt`);
//! 2. the **single-flight group** coalesces concurrent queries for the
//!    same artifact onto one computation — the leader executes the
//!    experiment's `ExperimentPlan`s once for the whole batch of
//!    waiting requests;
//! 3. the shared **executor cache** deduplicates overlapping *cells*
//!    across different artifacts (Figure 2's anchors serve the
//!    ablations, etc.), exactly as in a CLI sweep.
//!
//! Backpressure is explicit: a full admission queue answers 429 with
//! `Retry-After` immediately instead of queueing unboundedly or
//! dropping the connection. Per-request deadlines (`?deadline_ms=` or
//! the server default) are checked at dispatch and again before the
//! response is written; the computation itself is bounded by the
//! harness watchdog, so every request has the end-to-end bound
//! `queue wait + attempts x wall_deadline`.
//!
//! Drain is graceful: SIGTERM (or `POST /shutdown`, or
//! [`ServerHandle::drain`]) stops the acceptor, lets the workers finish
//! everything already admitted, then returns from [`Server::run`].

// regend serves results; a request must never take down the process.
#![allow(clippy::result_large_err)]

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bench::{render_artifact_block, Artifact, ArtifactResult};
use spectrebench::obs::metrics::prometheus_text;
use spectrebench::obs::EventKind;
use spectrebench::{
    cell_value_json, default_jobs, EventBus, Executor, FaultPlan, FlightOutcome, Harness,
    HarnessStats, Journal, RetryPolicy, SingleFlight,
};

use crate::http::{percent_encode_path, HttpError, Request, Response};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Configuration for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7979` (port 0 for tests).
    pub addr: String,
    /// Worker threads serving parsed requests.
    pub workers: usize,
    /// Admission-queue capacity; a full queue answers 429.
    pub queue_capacity: usize,
    /// Serve the quick workload variants (tests; the golden renderings
    /// are the full variants).
    pub quick: bool,
    /// Executor worker threads per plan (`None`: `REGEN_JOBS` / machine
    /// default).
    pub jobs: Option<usize>,
    /// Attempts per measurement cell (`None`: the standard 3).
    pub retries: Option<u32>,
    /// Deterministic fault injection on the backing executor (tests).
    pub inject: Option<FaultPlan>,
    /// Journal completed cells here (also the target of injected
    /// torn-write/journal-corrupt I/O faults).
    pub journal: Option<std::path::PathBuf>,
    /// Default per-request deadline; `None` means no deadline unless
    /// the request carries `?deadline_ms=`.
    pub default_deadline: Option<Duration>,
    /// Socket read/write timeout, so a stalled peer costs one worker at
    /// most this long.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7979".to_string(),
            workers: 4,
            queue_capacity: 128,
            quick: false,
            jobs: None,
            retries: None,
            inject: None,
            journal: None,
            default_deadline: None,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// A rendered artifact held in the serving cache: the exact block the
/// CLI prints (`== caption ==\n<text>\n`), plus its degraded flag.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// The response body.
    pub body: String,
    /// Whether any attribution slice had to be bridged.
    pub degraded: bool,
}

/// Outcome of obtaining an artifact: the rendering or the error text.
type ArtifactEntry = Result<Rendered, String>;

/// One admitted connection waiting for a worker.
struct Pending {
    stream: TcpStream,
    arrived: Instant,
}

#[derive(Default)]
struct Queue {
    items: VecDeque<Pending>,
    draining: bool,
}

/// End-of-run counters, reported by `regend` at exit.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunSummary {
    /// Connections admitted to the queue.
    pub admitted: u64,
    /// Connections rejected with 429.
    pub rejected: u64,
    /// Responses written (any status).
    pub served: u64,
    /// Executor counters at drain time.
    pub stats: HarnessStats,
}

struct Shared {
    cfg: ServerConfig,
    exec: Executor,
    bus: Arc<EventBus>,
    flights: SingleFlight<ArtifactEntry>,
    rendered: Mutex<HashMap<(&'static str, bool), Rendered>>,
    queue: Mutex<Queue>,
    cv: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    in_flight: AtomicU64,
}

/// The `regend` server. [`Server::bind`], then [`Server::run`] (which
/// blocks until drained). [`Server::handle`] gives a clonable handle
/// for triggering drain from tests or signal handlers.
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
    local_addr: SocketAddr,
}

/// Clonable handle onto a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Initiates graceful drain: stop accepting, serve what is queued,
    /// then let [`Server::run`] return.
    pub fn drain(&self) {
        self.shared.start_drain();
    }

    /// True once drain has started.
    pub fn is_draining(&self) -> bool {
        lock(&self.shared.queue).draining
    }
}

// SIGTERM handling without a libc crate: libc itself is always linked
// on the targets std supports, so declaring `signal` suffices. The
// handler only stores to an atomic, which is async-signal-safe.
static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM hook (no-op off unix). Called by the `regend`
/// binary; in-process tests drain via [`ServerHandle`] instead.
pub fn install_sigterm_hook() {
    #[cfg(unix)]
    {
        const SIGTERM_NUM: i32 = 15;
        unsafe {
            signal(SIGTERM_NUM, on_sigterm as extern "C" fn(i32) as *const () as usize);
        }
    }
}

impl Server {
    /// Binds the listener and builds the shared executor. No thread is
    /// spawned until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let bus = Arc::new(EventBus::new());
        let mut harness = Harness::new();
        if let Some(plan) = &cfg.inject {
            harness = harness.with_plan(plan.clone());
        }
        if let Some(n) = cfg.retries {
            let mut retry = RetryPolicy::standard();
            retry.max_attempts = n.max(1);
            harness = harness.with_retry(retry);
        }
        let mut exec = Executor::new(harness)
            .with_jobs(cfg.jobs.unwrap_or_else(default_jobs))
            .with_obs(Arc::clone(&bus));
        if let Some(path) = &cfg.journal {
            exec = exec.with_journal(Journal::open(path)?);
        }
        let shared = Arc::new(Shared {
            cfg,
            exec,
            bus,
            flights: SingleFlight::new(),
            rendered: Mutex::new(HashMap::new()),
            queue: Mutex::new(Queue::default()),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
        });
        Ok(Server { shared, listener, local_addr })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle for triggering drain.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serves until drained (SIGTERM, `POST /shutdown`, or
    /// [`ServerHandle::drain`]), then returns the run's counters.
    /// Everything admitted before drain began is answered.
    pub fn run(self) -> RunSummary {
        let shared = &*self.shared;
        std::thread::scope(|s| {
            for _ in 0..shared.cfg.workers.max(1) {
                s.spawn(move || shared.worker_loop());
            }
            // The acceptor runs on the calling thread; drain unblocks
            // it via the nonblocking accept loop.
            shared.acceptor_loop(&self.listener);
            // Acceptor stopped: wake every idle worker so they can
            // observe the drain flag once the queue empties.
            self.shared.cv.notify_all();
        });
        RunSummary {
            admitted: shared.admitted.load(Ordering::SeqCst),
            rejected: shared.rejected.load(Ordering::SeqCst),
            served: shared.served.load(Ordering::SeqCst),
            stats: shared.exec.stats(),
        }
    }
}

impl Shared {
    fn start_drain(&self) {
        lock(&self.queue).draining = true;
        self.cv.notify_all();
    }

    fn is_draining(&self) -> bool {
        lock(&self.queue).draining
    }

    /// Accepts connections until drain, applying admission control.
    fn acceptor_loop(&self, listener: &TcpListener) {
        loop {
            if SIGTERM.load(Ordering::SeqCst) {
                self.start_drain();
            }
            if self.is_draining() {
                return;
            }
            match listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Admits one connection, or rejects it with 429 + `Retry-After`
    /// when the queue is full. The rejection response is written from
    /// the acceptor thread — it is a handful of bytes with a short
    /// write timeout, and rejecting must not depend on a free worker.
    fn admit(&self, mut stream: TcpStream) {
        let arrived = Instant::now();
        {
            let mut q = lock(&self.queue);
            if q.items.len() < self.cfg.queue_capacity {
                q.items.push_back(Pending { stream, arrived });
                let depth = q.items.len();
                drop(q);
                self.admitted.fetch_add(1, Ordering::SeqCst);
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                self.bus
                    .emit("regend", "", "", 0, EventKind::RequestReceived { queue_depth: depth });
                self.cv.notify_one();
                return;
            }
        }
        self.rejected.fetch_add(1, Ordering::SeqCst);
        self.bus.emit("regend", "", "", 0, EventKind::RequestRejected);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        // Drain the request head before answering: closing with unread
        // bytes in the receive buffer turns the close into an RST,
        // which can destroy the 429 before the client reads it.
        let mut head = [0u8; 1024];
        let mut seen = 0usize;
        while seen < 8 * 1024 {
            match std::io::Read::read(&mut stream, &mut head) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    seen += n;
                    if head[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        let _ = Response::text(429, "regend: admission queue full, retry shortly\n")
            .with_header("Retry-After", "1")
            .write_to(&mut stream);
    }

    /// Pops admitted connections and serves them until the queue is
    /// empty *and* drain has been requested.
    fn worker_loop(&self) {
        loop {
            let pending = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(p) = q.items.pop_front() {
                        break Some(p);
                    }
                    if q.draining {
                        break None;
                    }
                    q = self.cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let Some(p) = pending else { return };
            self.serve_connection(p);
        }
    }

    /// Parses and answers one connection.
    fn serve_connection(&self, p: Pending) {
        let _ = p.stream.set_read_timeout(Some(self.cfg.io_timeout));
        let _ = p.stream.set_write_timeout(Some(self.cfg.io_timeout));
        let mut reader = BufReader::new(match p.stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                self.finish("error", "", 499, p.arrived);
                return;
            }
        });
        let request = match Request::parse(&mut reader) {
            Ok(r) => r,
            Err(HttpError::Malformed(m)) => {
                let mut stream = p.stream;
                let _ = Response::text(400, format!("regend: {m}\n")).write_to(&mut stream);
                self.finish("error", "", 400, p.arrived);
                return;
            }
            Err(HttpError::Io(_)) => {
                // Peer died or stalled past the read timeout; nothing
                // to write. 499 keeps the in-flight gauge honest.
                self.finish("error", "", 499, p.arrived);
                return;
            }
        };
        let deadline = self.request_deadline(&request);
        let (endpoint, response) = if deadline_expired(deadline, p.arrived) {
            self.bus.emit("regend", &request.path, "", 0, EventKind::DeadlineExpired);
            ("deadline", Response::text(504, "regend: deadline expired in queue\n"))
        } else {
            let (endpoint, mut response) = self.route(&request);
            if deadline_expired(deadline, p.arrived) && response.status == 200 {
                // Computed, but too late to promise freshness bounds:
                // the client asked for a deadline, honor it.
                self.bus.emit("regend", &request.path, "", 0, EventKind::DeadlineExpired);
                response = Response::text(504, "regend: deadline expired while computing\n");
                (endpoint, response)
            } else {
                (endpoint, response)
            }
        };
        let status = response.status;
        let mut stream = p.stream;
        let _ = response.write_to(&mut stream);
        self.finish(endpoint, &request.path, status, p.arrived);
    }

    /// Records a finished request: counters, gauge, and the completion
    /// event carrying the measured end-to-end latency.
    fn finish(&self, endpoint: &str, path: &str, status: u16, arrived: Instant) {
        self.served.fetch_add(1, Ordering::SeqCst);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        let micros = arrived.elapsed().as_micros() as u64;
        self.bus.emit(endpoint, path, "", 0, EventKind::RequestCompleted { status, micros });
    }

    fn request_deadline(&self, request: &Request) -> Option<Duration> {
        if let Some(ms) = request.query_param("deadline_ms") {
            if let Ok(ms) = ms.parse::<u64>() {
                return Some(Duration::from_millis(ms));
            }
        }
        self.cfg.default_deadline
    }

    /// Routes a parsed request to its handler.
    fn route(&self, request: &Request) -> (&'static str, Response) {
        let segments: Vec<&str> =
            request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => ("healthz", self.healthz()),
            ("GET", ["metrics"]) => ("metrics", self.metrics()),
            ("GET", ["artifacts"]) => ("artifacts", self.artifact_index()),
            ("GET", ["results"]) => ("results", self.results(request)),
            ("GET", ["artifact", name]) => ("artifact", self.artifact(request, name)),
            ("GET", ["cell", experiment, rest @ ..]) if !rest.is_empty() => {
                ("cell", self.cell(request, experiment, &rest.join("/")))
            }
            ("POST", ["shutdown"]) => {
                self.start_drain();
                ("shutdown", Response::text(200, "draining\n"))
            }
            ("GET", ["shutdown"]) => {
                ("shutdown", Response::text(405, "regend: shutdown requires POST\n"))
            }
            ("GET", _) => ("error", Response::text(404, endpoint_index())),
            _ => ("error", Response::text(405, "regend: method not allowed\n")),
        }
    }

    fn healthz(&self) -> Response {
        let q = lock(&self.queue);
        let status = if q.draining { "draining" } else { "ok" };
        let depth = q.items.len();
        drop(q);
        Response::json(
            200,
            format!(
                "{{\"status\":\"{}\",\"queue_depth\":{},\"in_flight\":{},\"cache_cells\":{},\"artifacts_cached\":{}}}\n",
                status,
                depth,
                self.in_flight.load(Ordering::SeqCst),
                self.exec.cache_len(),
                lock(&self.rendered).len()
            ),
        )
    }

    fn metrics(&self) -> Response {
        Response::text(200, prometheus_text(&self.bus.snapshot(), &self.exec.stats()))
    }

    fn artifact_index(&self) -> Response {
        let mut body = String::new();
        for a in Artifact::ALL {
            body.push_str(&format!("{:14} {}\n", a.name(), a.caption()));
        }
        Response::text(200, body)
    }

    /// `GET /artifact/<name>[?quick=0|1][&seed=0][&deadline_ms=..]`
    fn artifact(&self, request: &Request, name: &str) -> Response {
        let artifact = match Artifact::parse(name) {
            Some(a) => a,
            None => return unknown_artifact(name),
        };
        if let Some(seed) = request.query_param("seed") {
            if seed != "0" && seed != "default" {
                return Response::text(
                    400,
                    "regend: only the pinned default seed (seed=0) is served; \
                     renderings at other seeds are not golden-comparable\n",
                );
            }
        }
        let quick = match self.quick_for(request) {
            Ok(q) => q,
            Err(resp) => return resp,
        };
        match self.obtain(artifact, quick, &request.path) {
            Ok(r) => {
                let mut resp = Response::text(200, r.body);
                if r.degraded {
                    resp = resp.with_header("X-Regend-Degraded", "true");
                }
                if quick {
                    resp = resp.with_header("X-Regend-Quick", "true");
                }
                resp
            }
            Err(e) => Response::text(500, format!("regend: {} failed: {e}\n", artifact.name())),
        }
    }

    /// `GET /results[?quick=0|1]`: every artifact in paper order, one
    /// document — byte-identical to `regen`'s stdout (and, for a full
    /// non-quick server, to the committed `results_regenerated.txt`).
    fn results(&self, request: &Request) -> Response {
        let quick = match self.quick_for(request) {
            Ok(q) => q,
            Err(resp) => return resp,
        };
        let mut body = String::new();
        let mut failures = 0u32;
        for artifact in Artifact::ALL {
            match self.obtain(artifact, quick, &request.path) {
                Ok(r) => body.push_str(&r.body),
                Err(_) => {
                    failures += 1;
                    body.push_str(&format!("== {} == FAILED\n\n", artifact.caption()));
                }
            }
        }
        let mut resp = Response::text(200, body);
        if failures > 0 {
            resp = resp.with_header("X-Regend-Failures", failures.to_string());
        }
        resp
    }

    /// `GET /cell/<experiment>/<content-key>[?seed=N]`: one lattice
    /// cell as journal-shaped JSON. Computes the owning artifact first
    /// if needed (through the same single-flight/cache path), then
    /// reads the cell out of the executor's content-addressed cache.
    fn cell(&self, request: &Request, experiment: &str, content_key: &str) -> Response {
        let artifact = match experiment_artifact(experiment) {
            Some(a) => a,
            None => return unknown_artifact(experiment),
        };
        let seed = match request.query_param("seed").unwrap_or("0").parse::<u64>() {
            Ok(s) => s,
            Err(_) => return Response::text(400, "regend: seed must be a non-negative integer\n"),
        };
        let quick = match self.quick_for(request) {
            Ok(q) => q,
            Err(resp) => return resp,
        };
        if self.exec.cache_lookup(content_key, seed).is_none() {
            if let Err(e) = self.obtain(artifact, quick, &request.path) {
                return Response::text(
                    500,
                    format!("regend: computing {} for this cell failed: {e}\n", artifact.name()),
                );
            }
        }
        match self.exec.cache_lookup(content_key, seed) {
            Some(v) => Response::json(200, format!("{}\n", cell_value_json(content_key, seed, &v))),
            None => Response::text(
                404,
                format!(
                    "regend: no cell {:?} (seed {seed}) under {}; try\n  GET /cell/{}/{}?seed={seed}\nafter checking the key against the journal or trace output\n",
                    content_key,
                    experiment,
                    experiment,
                    percent_encode_path(content_key),
                ),
            ),
        }
    }

    /// Resolves the effective quick flag: the server default, overridden
    /// by `?quick=0|1`.
    fn quick_for(&self, request: &Request) -> Result<bool, Response> {
        match request.query_param("quick") {
            None => Ok(self.cfg.quick),
            Some("1") | Some("true") => Ok(true),
            Some("0") | Some("false") => Ok(false),
            Some(other) => {
                Err(Response::text(400, format!("regend: bad quick value {other:?} (use 0 or 1)\n")))
            }
        }
    }

    /// Obtains one artifact entry: rendered cache, then single-flight
    /// computation on the shared executor. Successful (including
    /// degraded) renderings are cached; failures are not, so a
    /// transiently failing artifact recovers on the next query.
    fn obtain(&self, artifact: Artifact, quick: bool, path: &str) -> ArtifactEntry {
        let cache_key = (artifact.name(), quick);
        if let Some(r) = lock(&self.rendered).get(&cache_key).cloned() {
            self.bus.emit(artifact.name(), path, "", 0, EventKind::ArtifactCacheHit);
            return Ok(r);
        }
        let flight_key = format!("{}/{}", artifact.name(), quick);
        let (entry, outcome) = self.flights.run(&flight_key, || {
            match artifact.regenerate(quick, &self.exec) {
                Ok(out) => {
                    let block = render_artifact_block(&ArtifactResult {
                        artifact,
                        outcome: Ok(out.clone()),
                        cells: HarnessStats::default(),
                    });
                    let rendered = Rendered { body: block, degraded: out.degraded };
                    lock(&self.rendered).insert(cache_key, rendered.clone());
                    Ok(rendered)
                }
                Err(e) => Err(e.to_string()),
            }
        });
        if outcome == FlightOutcome::Coalesced {
            self.bus.emit(artifact.name(), path, "", 0, EventKind::FlightCoalesced);
        }
        entry
    }
}

fn deadline_expired(deadline: Option<Duration>, arrived: Instant) -> bool {
    deadline.is_some_and(|d| arrived.elapsed() > d)
}

/// Maps an experiment driver name onto the artifact whose sweep
/// computes its cells. Identical for every driver except the two that
/// feed the discussion artifact.
pub fn experiment_artifact(experiment: &str) -> Option<Artifact> {
    match experiment {
        "ablations" | "smt" => Some(Artifact::Discussion),
        other => Artifact::parse(other),
    }
}

fn unknown_artifact(name: &str) -> Response {
    let mut body = format!("regend: unknown artifact: {name}\n");
    if let Some(suggestion) = Artifact::suggest(name) {
        body.push_str(&format!("did you mean: {suggestion}?\n"));
    }
    body.push_str("see GET /artifacts for the full list\n");
    Response::text(404, body)
}

fn endpoint_index() -> String {
    "regend endpoints:\n\
     \x20 GET  /healthz                         liveness + queue depth\n\
     \x20 GET  /metrics                         Prometheus-style exposition\n\
     \x20 GET  /artifacts                       artifact names and captions\n\
     \x20 GET  /artifact/<name>[?quick=0|1]     one artifact rendering\n\
     \x20 GET  /results[?quick=0|1]             every artifact, paper order\n\
     \x20 GET  /cell/<experiment>/<key>[?seed=N] one lattice cell as JSON\n\
     \x20 POST /shutdown                        graceful drain\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_map_onto_artifacts() {
        assert_eq!(experiment_artifact("figure2"), Some(Artifact::Figure2));
        assert_eq!(experiment_artifact("table3"), Some(Artifact::Table3));
        assert_eq!(experiment_artifact("ablations"), Some(Artifact::Discussion));
        assert_eq!(experiment_artifact("smt"), Some(Artifact::Discussion));
        assert_eq!(experiment_artifact("eibrs-bimodal"), Some(Artifact::EibrsBimodal));
        assert_eq!(experiment_artifact("nope"), None);
    }

    #[test]
    fn unknown_artifact_suggests_the_closest_name() {
        let resp = unknown_artifact("figre2");
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("did you mean: figure2?"), "{}", resp.body);
    }
}
