//! The gadget corpus: attackable shapes and benign look-alikes.
//!
//! Every entry follows the PoC's register convention — `R0` = the
//! attacker-controlled index, `R1` = array base, `R2` = array length,
//! `R3` = probe base — links at [`CODE_BASE`], and terminates with
//! `Halt`, so the same programs serve three masters:
//!
//! * the property tests here, which pin **zero false negatives** on the
//!   attackable set and name every accepted false positive;
//! * `crates/attacks`, whose matrix test executes the classic shape;
//! * `core`'s `targeted` experiment, which runs the whole corpus under
//!   each `spectre_v1=` policy and measures the overhead spread.
//!
//! Known imprecision, in the sound direction only: taint is not tracked
//! through memory (a store/reload launders it), so a spilled index
//! would be a false *negative* — such shapes are deliberately excluded
//! from the corpus and the in-tree program builders never spill a
//! guarded index. The accepted false *positives* are the entries below
//! with `attackable: false, expected_flagged: true`.

use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::{Program, ProgramBuilder};

/// Where corpus programs link; matches `attacks::scene::CODE_BASE`.
pub const CODE_BASE: u64 = 0x1000;
/// The victim array; matches `attacks::scene::DATA_BASE`.
pub const DATA_BASE: u64 = 0x10_0000;
/// The flush+reload probe; matches `attacks::scene::PROBE_BASE`.
pub const PROBE_BASE: u64 = 0x30_0000;
/// In-bounds length of the victim array.
pub const ARRAY_LEN: u64 = 8;

/// One corpus program with its ground truth and the verdict the
/// analysis is pinned to produce.
pub struct CorpusEntry {
    /// Short name used in test failures and the rendered artifact.
    pub name: &'static str,
    /// Ground truth: can this shape actually leak transiently?
    pub attackable: bool,
    /// What the analysis should say. `attackable && !expected_flagged`
    /// is a false negative and never allowed; `!attackable &&
    /// expected_flagged` names an accepted false positive.
    pub expected_flagged: bool,
    /// The linked program.
    pub program: Program,
}

fn entry(
    name: &'static str,
    attackable: bool,
    expected_flagged: bool,
    build: impl FnOnce(&mut ProgramBuilder),
) -> CorpusEntry {
    let mut b = ProgramBuilder::new();
    build(&mut b);
    CorpusEntry { name, attackable, expected_flagged, program: b.link(CODE_BASE) }
}

fn load(dst: Reg, base: Reg) -> Inst {
    Inst::Load { dst, base, offset: 0, width: Width::B1 }
}

/// Emits the transmit tail `shl t, 9; add t, probe; load _ <- [t]`.
fn transmit(b: &mut ProgramBuilder, t: Reg) {
    b.push(Inst::Shl(t, 9));
    b.push(Inst::Add(t, Reg::R3));
    b.push(load(Reg::R5, t));
}

/// The full corpus: ≥8 attackable shapes (including masked-but-
/// insufficient and double-indirection variants) and ≥8 benign
/// look-alikes, plus the named accepted false positives.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        // ---- attackable ------------------------------------------------
        // Figure 1 verbatim: the PoC gadget.
        entry("classic", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // The bound is an immediate, not a register.
        entry("cmp_imm_guard", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::CmpImm(Reg::R0, ARRAY_LEN));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // Pointer chase: the out-of-bounds value is dereferenced once
        // more before it transmits.
        entry("double_indirection", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            b.push(Inst::Add(Reg::R4, Reg::R1));
            b.push(load(Reg::R6, Reg::R4));
            transmit(b, Reg::R6);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // A mask that is far too wide to clamp the index: still
        // attackable, and the analysis must not be fooled by the `and`.
        entry("insufficient_mask", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::AndImm(Reg::R0, 0xFFFF_FFFF));
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // The index is copied to a scratch register first; taint must
        // follow the mov.
        entry("moved_index", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Mov(Reg::R6, Reg::R0));
            b.push(Inst::Add(Reg::R6, Reg::R1));
            b.push(load(Reg::R4, Reg::R6));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // Displacement-form addressing and extra arithmetic between the
        // loads; taint must survive immediates and shifts.
        entry("displaced_loads", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(Inst::Load { dst: Reg::R4, base: Reg::R0, offset: 4, width: Width::B1 });
            b.push(Inst::AddImm(Reg::R4, 0x100));
            b.push(Inst::Shl(Reg::R4, 9));
            b.push(Inst::Add(Reg::R4, Reg::R3));
            b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 8, width: Width::B1 });
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // The guard comparison is written the other way around; both
        // compared registers are seeds.
        entry("reversed_guard", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R2, Reg::R0));
            b.jcc(Cond::BelowEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // `test`-guarded null-ish check in front of the same gadget.
        entry("test_guard", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Test(Reg::R0, Reg::R0));
            b.jcc(Cond::Eq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // The attacker value is obfuscated through scratch arithmetic
        // (index doubling) before the first load.
        entry("obfuscated_arith", true, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Mov(Reg::R4, Reg::R0));
            b.push(Inst::Add(Reg::R4, Reg::R0));
            b.push(Inst::Add(Reg::R4, Reg::R1));
            b.push(load(Reg::R6, Reg::R4));
            transmit(b, Reg::R6);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // ---- benign look-alikes ---------------------------------------
        // The blanket mitigation itself: lfence right after the check.
        entry("fenced", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Lfence);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // Conditional-move index masking (the SpiderMonkey strategy).
        entry("masked_cmov", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::CmovImm(Cond::AboveEq, Reg::R0, 0));
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // A narrow and-mask clamps the index to the array.
        entry("narrow_mask", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::AndImm(Reg::R0, ARRAY_LEN - 1));
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // Only the first load: out-of-bounds data is read but nothing
        // transmits it.
        entry("single_load", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            b.push(Inst::Shl(Reg::R4, 9));
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // Both loads use a freshly materialized in-bounds pointer, not
        // the guarded index.
        entry("untainted_base", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::MovImm(Reg::R8, DATA_BASE));
            b.push(load(Reg::R4, Reg::R8));
            b.push(Inst::MovImm(Reg::R9, PROBE_BASE));
            b.push(load(Reg::R5, Reg::R9));
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // The loaded value is overwritten before the second load.
        entry("reset_transmit", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            b.push(Inst::MovImm(Reg::R4, PROBE_BASE));
            b.push(load(Reg::R5, Reg::R4));
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // Same, via the xor-zeroing idiom.
        entry("xor_cleared", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.push(load(Reg::R4, Reg::R0));
            b.push(Inst::Xor(Reg::R4, Reg::R4));
            b.push(Inst::Add(Reg::R4, Reg::R3));
            b.push(load(Reg::R5, Reg::R4));
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // A guarded loop counter: compare-and-branch with pure ALU in
        // the shadow (the kernel's dispatch-loop shape).
        entry("no_loads", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::CmpImm(Reg::R0, ARRAY_LEN));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::AddImm(Reg::R4, 1));
            b.push(Inst::Sub(Reg::R4, Reg::R0));
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // The not-taken path converges immediately: nothing to protect.
        entry("empty_shadow", false, false, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // ---- named accepted false positives ---------------------------
        // The loads go through the *length* register, which the program
        // trusts and the attacker does not control — architecturally
        // benign. The analysis seeds both sides of the guard comparison
        // (it cannot know which operand is the untrusted one), so it
        // flags this. Accepted: over-protection here costs one fence.
        entry("len_reg_base", false, true, |b| {
            let skip = b.new_label();
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.push(Inst::Add(Reg::R2, Reg::R1));
            b.push(load(Reg::R4, Reg::R2));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
        // A pointer-equality check guarding a dereference plus table
        // lookup. Both compared registers are trusted in-bounds
        // pointers materialized by the program itself, so the attacker
        // cannot steer the loads — architecturally benign. The analysis
        // must assume any guard operand may be untrusted (it has no
        // provenance information), so it flags this. Accepted.
        entry("trusted_ptr_guard", false, true, |b| {
            let skip = b.new_label();
            b.push(Inst::MovImm(Reg::R8, DATA_BASE));
            b.push(Inst::MovImm(Reg::R9, DATA_BASE));
            b.push(Inst::Cmp(Reg::R8, Reg::R9));
            b.jcc(Cond::Ne, skip);
            b.push(load(Reg::R4, Reg::R8));
            transmit(b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
        }),
    ]
}

/// Names of the accepted false positives — benign entries the analysis
/// flags anyway. Tests pin the flagged-benign set to exactly this.
pub fn accepted_false_positives() -> Vec<&'static str> {
    corpus().iter().filter(|e| !e.attackable && e.expected_flagged).map(|e| e.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, Verdict};
    use crate::instrument::harden_lfence;

    #[test]
    fn corpus_is_large_enough() {
        let c = corpus();
        assert!(c.iter().filter(|e| e.attackable).count() >= 8, "attackable shapes");
        assert!(c.iter().filter(|e| !e.attackable && !e.expected_flagged).count() >= 8, "benign look-alikes");
    }

    /// The soundness invariant: no attackable shape escapes.
    #[test]
    fn zero_false_negatives_on_the_attackable_set() {
        for e in corpus() {
            if e.attackable {
                let r = analyze(e.program.base(), e.program.insts());
                assert!(r.any_attackable(), "{}: attackable shape not flagged", e.name);
            }
        }
    }

    /// Every benign entry behaves exactly as pinned, and the set of
    /// flagged-benign entries (accepted false positives) is named.
    #[test]
    fn benign_verdicts_match_and_false_positives_are_named() {
        let mut flagged_benign = Vec::new();
        for e in corpus() {
            let r = analyze(e.program.base(), e.program.insts());
            assert_eq!(
                r.any_attackable(),
                e.expected_flagged,
                "{}: expected flagged={}, findings: {:?}",
                e.name,
                e.expected_flagged,
                r.findings
            );
            if !e.attackable && r.any_attackable() {
                flagged_benign.push(e.name);
            }
        }
        assert_eq!(flagged_benign, accepted_false_positives());
    }

    /// Hardening a flagged program and re-analyzing reaches a fixpoint:
    /// every previously attackable branch is now fenced.
    #[test]
    fn hardened_corpus_re_analyzes_benign() {
        for e in corpus() {
            let r = analyze(e.program.base(), e.program.insts());
            if !r.any_attackable() {
                continue;
            }
            let h = harden_lfence(e.program.base(), e.program.insts(), &r.flagged_indices());
            let r2 = analyze(h.base, &h.insts);
            assert!(!r2.any_attackable(), "{}: still attackable after hardening", e.name);
            assert!(
                r2.findings.iter().all(|f| f.verdict == Verdict::Benign),
                "{}: {:?}",
                e.name,
                r2.findings
            );
        }
    }

    /// Instrumentation preserves branch structure: the guard branch
    /// still targets the convergence `Halt`, with the fence on the
    /// fall-through path only.
    #[test]
    fn hardening_remaps_branch_targets() {
        let e = corpus().into_iter().find(|e| e.name == "classic").unwrap();
        let r = analyze(e.program.base(), e.program.insts());
        let h = harden_lfence(e.program.base(), e.program.insts(), &r.flagged_indices());
        assert_eq!(h.inserted(), 1);
        let jcc_target = h
            .insts
            .iter()
            .find_map(|i| match i {
                Inst::Jcc(_, t) => Some(*t),
                _ => None,
            })
            .unwrap();
        let idx = ((jcc_target - h.base) / uarch::program::INST_SIZE) as usize;
        assert_eq!(h.insts[idx], Inst::Halt, "guard must still jump to the convergence point");
        // The fence sits immediately after the branch.
        let jcc_idx = h.insts.iter().position(|i| matches!(i, Inst::Jcc(..))).unwrap();
        assert_eq!(h.insts[jcc_idx + 1], Inst::Lfence);
    }

    /// Robustness: seeded junk padding (nops and unrelated ALU ops)
    /// anywhere in the gadget never flips an attackable verdict.
    #[test]
    fn noise_injection_never_hides_the_gadget() {
        for seed in 0u64..32 {
            // In-tree LCG (no external RNG dependency).
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut next = move |bound: u64| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) % bound
            };
            let junk = |n: u64| -> Vec<Inst> {
                (0..n)
                    .map(|k| if k % 2 == 0 { Inst::Nop } else { Inst::AddImm(Reg::R9, 1) })
                    .collect()
            };
            let mut b = ProgramBuilder::new();
            let skip = b.new_label();
            b.extend(junk(next(4)));
            b.push(Inst::Cmp(Reg::R0, Reg::R2));
            b.jcc(Cond::AboveEq, skip);
            b.extend(junk(next(4)));
            b.push(Inst::Add(Reg::R0, Reg::R1));
            b.extend(junk(next(4)));
            b.push(load(Reg::R4, Reg::R0));
            b.extend(junk(next(4)));
            transmit(&mut b, Reg::R4);
            b.bind(skip);
            b.push(Inst::Halt);
            let p = b.link(CODE_BASE);
            let r = analyze(p.base(), p.insts());
            assert!(r.any_attackable(), "seed {seed}: padding hid the gadget");
        }
    }
}
