//! Static branch-attackability analysis for Spectre V1.
//!
//! The paper's mitigations are all-or-nothing: `spectre_v1_lfence`
//! hardens *every* bounds check, which is exactly the blanket
//! over-protection whose cost Table 1 and §5.4 measure. This crate
//! implements the "Beyond Over-Protection" direction: walk a program's
//! instruction stream, classify each conditional branch by whether its
//! not-taken shadow contains the Figure-1 gadget shape —
//!
//! ```text
//!     cmp   idx, len          ; guard comparison taints idx/len
//!     jae   skip              ; the analyzed branch
//!     load  t  <- [idx+base]  ; transient load at an attacker index
//!     shl   t, 9
//!     load  _  <- [t+probe]   ; dependent load transmits t via the cache
//! ```
//!
//! — i.e. an attacker-influenced index feeding a transient load whose
//! result feeds a *second* load's address. Branches with that shape are
//! [`Verdict::Attackable`]; everything else is benign with a stated
//! [`Reason`]. The [`instrument`] pass then inserts `lfence` (or an
//! index mask) only at flagged branches, and `sim-kernel`'s
//! `spectre_v1=targeted` boot policy consults the analysis instead of
//! fencing everywhere.
//!
//! The analysis is deliberately conservative in the sound direction:
//! zero false negatives on the in-tree gadget [`corpus`] is a test
//! invariant, and every accepted false positive is named there.

pub mod analysis;
pub mod corpus;
pub mod counters;
pub mod instrument;

pub use analysis::{analyze, analyze_decoded, BranchFinding, BranchReport, Reason, Verdict};
pub use instrument::{harden_all_lfence, harden_all_mask, harden_lfence, harden_mask, Hardened};

/// The Spectre-V1 mitigation policy selected at boot
/// (`spectre_v1=off|lfence|mask|targeted`).
///
/// This is the single source of truth for policy names: [`V1Policy::ALL`]
/// drives both the parser error message and the CLI docs, so neither can
/// drift from what [`V1Policy::parse`] accepts (the same pattern as
/// `FaultKind::ALL` in the harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum V1Policy {
    /// No V1 mitigation at all (`nospectre_v1`): every bounds check is
    /// left speculating.
    Off,
    /// Blanket serialization: `lfence` after the `swapgs` entry paths and
    /// conditional-move masking of every eBPF bounds check — the paper's
    /// default Linux behaviour.
    Lfence,
    /// Blanket index masking: clamp every guarded index with a
    /// conditional move instead of serializing.
    Mask,
    /// Targeted: run the branch-attackability analysis and harden only
    /// the branches it flags; benign branches keep speculating.
    Targeted,
}

impl V1Policy {
    /// Every policy, in the order the docs list them.
    pub const ALL: [V1Policy; 4] =
        [V1Policy::Off, V1Policy::Lfence, V1Policy::Mask, V1Policy::Targeted];

    /// The boot-parameter spelling (`spectre_v1=<name>`).
    pub fn name(self) -> &'static str {
        match self {
            V1Policy::Off => "off",
            V1Policy::Lfence => "lfence",
            V1Policy::Mask => "mask",
            V1Policy::Targeted => "targeted",
        }
    }

    /// Parses a `spectre_v1=` value. The error message enumerates
    /// [`V1Policy::ALL`] so it can never drift from what is accepted.
    pub fn parse(s: &str) -> Result<V1Policy, String> {
        V1Policy::ALL
            .iter()
            .copied()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = V1Policy::ALL.iter().map(|p| p.name()).collect();
                format!("unknown spectre_v1 policy '{}' (expected one of: {})", s, names.join(", "))
            })
    }
}

impl std::fmt::Display for V1Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_round_trips_through_parse() {
        for p in V1Policy::ALL {
            assert_eq!(V1Policy::parse(p.name()), Ok(p));
        }
    }

    #[test]
    fn parse_error_names_every_policy() {
        let err = V1Policy::parse("bogus").unwrap_err();
        for p in V1Policy::ALL {
            assert!(err.contains(p.name()), "error message {err:?} omits {}", p.name());
        }
    }

    #[test]
    fn display_matches_name() {
        for p in V1Policy::ALL {
            assert_eq!(p.to_string(), p.name());
        }
    }
}
