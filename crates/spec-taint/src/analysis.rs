//! The branch-attackability walk.
//!
//! For every conditional branch, seed taint from its guard comparison
//! (the flag-setting `cmp`/`test` immediately dominating the `jcc`) and
//! walk the *not-taken* shadow — the path the CPU speculates down when
//! the bounds check mispredicts — propagating two taint lattices:
//!
//! * **attacker taint**: values derived from the guarded registers, i.e.
//!   values the attacker can push out of bounds by mistraining;
//! * **secret taint**: values loaded through an attacker-tainted
//!   address, i.e. out-of-bounds data.
//!
//! A load whose address is *secret*-tainted is a transmitter (the
//! dependent load of the Figure-1 gadget): the branch is
//! [`Verdict::Attackable`]. Everything else is benign with a stated
//! [`Reason`]. The walk is bounded by [`SHADOW_CAP`] instructions —
//! a generous over-approximation of any modelled speculation window —
//! follows direct jumps and calls inside the program, and stops at
//! serializing instructions (`lfence`), control-flow it cannot resolve
//! (indirect branches, `ret`), and privilege transitions.
//!
//! Sound-direction bias: untracked effects (store-to-load forwarding,
//! flag-register liveness across ALU ops) are approximated so that
//! imprecision creates *false positives*, never false negatives; the
//! [`crate::corpus`] property tests pin both directions.

use uarch::decode::DecodedProgram;
use uarch::program::INST_SIZE;
use uarch::{Cond, Inst, Reg};

use crate::counters;

/// Maximum number of shadow instructions walked past a branch. Larger
/// than any modelled speculation window (the deepest catalog entry
/// speculates ~224 µops), so capping here never hides a reachable
/// gadget.
pub const SHADOW_CAP: usize = 64;

/// How far behind a `jcc` the analysis looks for its guard comparison.
const GUARD_WINDOW: usize = 8;

/// What the analysis concluded about one conditional branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The not-taken shadow contains the full gadget: tainted index →
    /// transient load → dependent-load transmit.
    Attackable,
    /// No transmitting gadget is reachable in the shadow.
    Benign,
}

/// Why the verdict came out the way it did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reason {
    /// A load at a secret-tainted address (`second_load`, an instruction
    /// index) transmits the value loaded at `first_load`.
    DependentLoadTransmit {
        /// Instruction index of the load that reads out of bounds.
        first_load: usize,
        /// Instruction index of the load that transmits it.
        second_load: usize,
    },
    /// No guard comparison dominates the branch, so nothing in the
    /// shadow is attacker-influenced.
    NoGuardComparison,
    /// The shadow ends (halt/ret/indirect/cap) before any instruction.
    EmptyShadow,
    /// A serializing `lfence` stops transient execution before any
    /// transmit.
    ShadowFenced,
    /// The guarded index is clamped (conditional-move mask or a narrow
    /// `and`) before it reaches a load.
    MaskedIndex,
    /// Tainted values exist but never reach a load address.
    NoTaintedLoad,
    /// An out-of-bounds load happens, but its result never reaches a
    /// second load's address — nothing transmits.
    NoTransmittingLoad,
}

impl Reason {
    /// One-line human rendering for reports.
    pub fn describe(&self) -> String {
        match self {
            Reason::DependentLoadTransmit { first_load, second_load } => format!(
                "load at inst {first_load} reads out of bounds; load at inst {second_load} transmits it"
            ),
            Reason::NoGuardComparison => "no guard comparison dominates the branch".into(),
            Reason::EmptyShadow => "shadow is empty".into(),
            Reason::ShadowFenced => "lfence serializes the shadow".into(),
            Reason::MaskedIndex => "guarded index is masked before any load".into(),
            Reason::NoTaintedLoad => "no attacker-tainted load in the shadow".into(),
            Reason::NoTransmittingLoad => "out-of-bounds load never feeds a second load".into(),
        }
    }
}

/// Analysis result for one conditional branch.
#[derive(Clone, Debug)]
pub struct BranchFinding {
    /// Instruction index of the `jcc` in the analyzed stream.
    pub index: usize,
    /// Absolute code address of the `jcc`.
    pub addr: u64,
    /// The branch condition.
    pub cond: Cond,
    /// First register of the guard comparison, when one was found — the
    /// register an index mask would clamp.
    pub guard: Option<Reg>,
    /// Attackable or benign.
    pub verdict: Verdict,
    /// Why.
    pub reason: Reason,
}

/// Per-program analysis result: one [`BranchFinding`] per `jcc`.
#[derive(Clone, Debug, Default)]
pub struct BranchReport {
    /// Base address the program was analyzed at.
    pub base: u64,
    /// One finding per conditional branch, in instruction order.
    pub findings: Vec<BranchFinding>,
}

impl BranchReport {
    /// Number of conditional branches scanned.
    pub fn scanned(&self) -> usize {
        self.findings.len()
    }

    /// Number of branches flagged attackable.
    pub fn flagged(&self) -> usize {
        self.findings.iter().filter(|f| f.verdict == Verdict::Attackable).count()
    }

    /// True when at least one branch is flagged.
    pub fn any_attackable(&self) -> bool {
        self.findings.iter().any(|f| f.verdict == Verdict::Attackable)
    }

    /// Instruction indices of the flagged branches, in order.
    pub fn flagged_indices(&self) -> Vec<usize> {
        self.findings
            .iter()
            .filter(|f| f.verdict == Verdict::Attackable)
            .map(|f| f.index)
            .collect()
    }

    /// The finding for the branch at instruction index `idx`, if any.
    pub fn finding_at(&self, idx: usize) -> Option<&BranchFinding> {
        self.findings.iter().find(|f| f.index == idx)
    }
}

/// Per-register taint state for one shadow walk.
#[derive(Clone, Copy, Default)]
struct Taint {
    /// Bit per register: value derived from the guarded comparison.
    attacker: u16,
    /// Bit per register: value loaded through an attacker address.
    secret: u16,
}

impl Taint {
    fn attacker_has(&self, r: Reg) -> bool {
        self.attacker & (1 << r.index()) != 0
    }
    fn secret_has(&self, r: Reg) -> bool {
        self.secret & (1 << r.index()) != 0
    }
    fn set_attacker(&mut self, r: Reg) {
        self.attacker |= 1 << r.index();
    }
    fn clear(&mut self, r: Reg) {
        self.attacker &= !(1 << r.index());
        self.secret &= !(1 << r.index());
    }
    fn clear_attacker(&mut self, r: Reg) {
        self.attacker &= !(1 << r.index());
    }
    /// `dst` gets exactly `src`'s taint (a `mov` overwrite).
    fn copy(&mut self, dst: Reg, src: Reg) {
        let (d, s) = (1 << dst.index(), 1 << src.index());
        self.attacker = (self.attacker & !d) | if self.attacker & s != 0 { d } else { 0 };
        self.secret = (self.secret & !d) | if self.secret & s != 0 { d } else { 0 };
    }
    /// `dst` unions `src`'s taint (a two-operand ALU op keeps `dst` live).
    fn union(&mut self, dst: Reg, src: Reg) {
        let d = 1 << dst.index();
        if self.attacker & (1 << src.index()) != 0 {
            self.attacker |= d;
        }
        if self.secret & (1 << src.index()) != 0 {
            self.secret |= d;
        }
    }
}

/// An `and` with a mask this narrow is accepted as an index clamp (a
/// speculative-load-hardening-style bounds mask); anything wider leaves
/// attacker reach and stays tainted — the "insufficient mask" corpus
/// entry pins that.
const NARROW_MASK: u64 = 0xFFF;

/// Analyzes a linked instruction stream at `base`, producing one
/// finding per conditional branch. Process-wide
/// [`counters`](crate::counters) record scanned/flagged totals for the
/// Prometheus exposition.
pub fn analyze(base: u64, insts: &[Inst]) -> BranchReport {
    let mut findings = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        if let Inst::Jcc(cond, _) = *inst {
            findings.push(classify(base, insts, i, cond));
        }
    }
    let report = BranchReport { base, findings };
    counters::record_analysis(report.scanned() as u64, report.flagged() as u64);
    report
}

/// Analyzes a pre-decoded program (the form the machine executes) by
/// reconstructing its architectural instruction stream.
pub fn analyze_decoded(prog: &DecodedProgram) -> BranchReport {
    let insts: Vec<Inst> = (0..prog.len()).map(|i| prog.get(i).to_inst()).collect();
    analyze(prog.base(), &insts)
}

/// Finds the flag-setting instruction dominating the branch at `jcc`
/// and returns the registers it taints plus the maskable guard
/// register. The backward scan stops at control flow (another branch's
/// shadow has its own guard).
fn guard_taint(insts: &[Inst], jcc: usize) -> (Taint, Option<Reg>) {
    let mut taint = Taint::default();
    let lo = jcc.saturating_sub(GUARD_WINDOW);
    for k in (lo..jcc).rev() {
        match insts[k] {
            Inst::Cmp(a, b) | Inst::Test(a, b) => {
                taint.set_attacker(a);
                taint.set_attacker(b);
                return (taint, Some(a));
            }
            Inst::CmpImm(a, _) => {
                taint.set_attacker(a);
                return (taint, Some(a));
            }
            Inst::Jcc(..) | Inst::Jmp(_) | Inst::JmpInd(_) | Inst::Call(_)
            | Inst::CallInd(_) | Inst::Ret | Inst::Halt => break,
            _ => {}
        }
    }
    (taint, None)
}

/// Walks the not-taken shadow of the branch at instruction index `jcc`.
fn classify(base: u64, insts: &[Inst], jcc: usize, cond: Cond) -> BranchFinding {
    let addr = base + jcc as u64 * INST_SIZE;
    let end = base + insts.len() as u64 * INST_SIZE;
    let (mut taint, guard) = guard_taint(insts, jcc);

    let finding = |verdict, reason| BranchFinding { index: jcc, addr, cond, guard, verdict, reason };

    if taint.attacker == 0 {
        return finding(Verdict::Benign, Reason::NoGuardComparison);
    }

    let mut idx = jcc + 1;
    let mut steps = 0usize;
    let mut visited = vec![false; insts.len()];
    let mut first_load: Option<usize> = None;
    let mut saw_tainted_load = false;
    let mut saw_mask = false;
    let mut fenced = false;

    while idx < insts.len() && steps < SHADOW_CAP && !visited[idx] {
        visited[idx] = true;
        steps += 1;
        match insts[idx] {
            // Taint sources and sinks.
            Inst::Load { dst, base: b, .. } => {
                if taint.secret_has(b) {
                    return finding(
                        Verdict::Attackable,
                        Reason::DependentLoadTransmit {
                            first_load: first_load.unwrap_or(idx),
                            second_load: idx,
                        },
                    );
                }
                if taint.attacker_has(b) {
                    saw_tainted_load = true;
                    first_load.get_or_insert(idx);
                    taint.clear(dst);
                    taint.secret |= 1 << dst.index();
                } else {
                    taint.clear(dst);
                }
            }
            // Stores are not tracked through memory: a reload from an
            // untainted base comes back clean, which loses taint — an
            // accepted imprecision documented at the corpus.
            Inst::Store { .. } => {}

            // Clamps.
            Inst::Cmov(_, dst, src) => taint.union(dst, src),
            Inst::CmovImm(_, dst, _) => {
                if taint.attacker_has(dst) || taint.secret_has(dst) {
                    saw_mask = true;
                }
                taint.clear(dst);
            }
            Inst::AndImm(r, m) if m <= NARROW_MASK && taint.attacker_has(r) => {
                saw_mask = true;
                taint.clear_attacker(r);
            }
            Inst::AndImm(..) => {}

            // Overwrites and copies.
            Inst::MovImm(r, _) | Inst::Rdtsc(r) => taint.clear(r),
            Inst::Rdpmc { dst, .. } | Inst::Rdmsr { dst, .. } => taint.clear(dst),
            Inst::Mov(dst, src) => taint.copy(dst, src),
            Inst::Xor(dst, src) if dst == src => taint.clear(dst),

            // Two-operand ALU keeps dst live and unions src.
            Inst::Add(dst, src)
            | Inst::Sub(dst, src)
            | Inst::Mul(dst, src)
            | Inst::Div(dst, src)
            | Inst::And(dst, src)
            | Inst::Or(dst, src)
            | Inst::Xor(dst, src) => taint.union(dst, src),

            // Immediate ALU and shifts preserve taint.
            Inst::AddImm(..) | Inst::SubImm(..) | Inst::XorImm(..) | Inst::Shl(..)
            | Inst::Shr(..) | Inst::Not(..) => {}

            // Serialization stops the transient shadow.
            Inst::Lfence => {
                fenced = true;
                break;
            }

            // Control flow the walk can follow.
            Inst::Jmp(t) | Inst::Call(t) => {
                if t >= base && t < end && (t - base).is_multiple_of(INST_SIZE) {
                    idx = ((t - base) / INST_SIZE) as usize;
                    continue;
                }
                break;
            }
            // A nested branch speculates too; keep walking the
            // fall-through (conservative: the predictor may go either
            // way, and the fall-through is the path that extends the
            // current shadow).
            Inst::Jcc(..) => {}

            // Control flow the walk cannot resolve, and privilege
            // transitions, end the shadow.
            Inst::JmpInd(_) | Inst::CallInd(_) | Inst::Ret | Inst::Halt | Inst::Syscall
            | Inst::Sysret | Inst::Iret => break,

            // Everything else neither creates nor moves integer taint.
            _ => {}
        }
        idx += 1;
    }

    let reason = if steps == 0 {
        Reason::EmptyShadow
    } else if fenced {
        Reason::ShadowFenced
    } else if saw_tainted_load {
        Reason::NoTransmittingLoad
    } else if saw_mask {
        Reason::MaskedIndex
    } else {
        Reason::NoTaintedLoad
    };
    finding(Verdict::Benign, reason)
}
