//! Process-wide analysis counters, mirroring `uarch::pmc::global`.
//!
//! The analysis can run from any thread (experiment workers, the
//! serving tier's executor, kernel boot paths), so totals live in
//! process-wide atomics that the Prometheus exposition samples at
//! scrape time as `regen_spec_taint_*_total`. The analysis itself
//! updates them once per program — never per instruction — so the walk
//! stays allocation- and contention-free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Conditional branches scanned by [`crate::analyze`] in this process.
pub static BRANCHES_SCANNED: AtomicU64 = AtomicU64::new(0);
/// Branches flagged attackable.
pub static BRANCHES_FLAGGED: AtomicU64 = AtomicU64::new(0);
/// Hardening instructions inserted by the [`crate::instrument`] pass.
pub static FENCES_INSERTED: AtomicU64 = AtomicU64::new(0);

/// Publishes one program's analysis totals.
pub fn record_analysis(scanned: u64, flagged: u64) {
    if scanned != 0 {
        BRANCHES_SCANNED.fetch_add(scanned, Ordering::Relaxed);
    }
    if flagged != 0 {
        BRANCHES_FLAGGED.fetch_add(flagged, Ordering::Relaxed);
    }
}

/// Publishes one instrumentation pass's insertion count.
pub fn record_fences(inserted: u64) {
    if inserted != 0 {
        FENCES_INSERTED.fetch_add(inserted, Ordering::Relaxed);
    }
}

/// A consistent-enough snapshot, in the order
/// (branches scanned, branches flagged, fences inserted).
pub fn snapshot() -> (u64, u64, u64) {
    (
        BRANCHES_SCANNED.load(Ordering::Relaxed),
        BRANCHES_FLAGGED.load(Ordering::Relaxed),
        FENCES_INSERTED.load(Ordering::Relaxed),
    )
}
