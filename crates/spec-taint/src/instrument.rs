//! Rewrites a linked instruction stream, hardening only the branches
//! the analysis flagged.
//!
//! Insertion shifts every later instruction by one slot, so all
//! absolute branch targets *inside* the program are remapped through
//! the old→new address map; targets outside the program (other
//! segments, host hooks) are left alone. A branch that jumps directly
//! to a flagged branch's fall-through instruction lands *after* the
//! inserted barrier — only the speculated not-taken path pays it, which
//! is the whole point of targeting.
//!
//! Limitation (documented, pinned benign by the kernel-text test): code
//! addresses materialized through `MovImm`/`lea` are data, not branch
//! targets, and are not remapped. None of the in-tree program builders
//! take the address of an instruction after a hardened branch.

use uarch::program::INST_SIZE;
use uarch::{Cond, Inst, Reg};

use crate::analysis::BranchReport;
use crate::counters;

/// A hardened instruction stream plus the old→new address map.
#[derive(Clone, Debug)]
pub struct Hardened {
    /// The rewritten stream, ready to relink at [`Hardened::base`].
    pub insts: Vec<Inst>,
    /// Base address (unchanged from the input program).
    pub base: u64,
    /// For old instruction index `i`, its new instruction index.
    new_index: Vec<usize>,
    /// Number of instructions in the original stream.
    old_len: usize,
}

impl Hardened {
    /// Maps an address in the original program to the rewritten one.
    /// Addresses outside the original code range pass through.
    pub fn remap(&self, old_addr: u64) -> u64 {
        let end = self.base + self.old_len as u64 * INST_SIZE;
        if old_addr < self.base
            || old_addr >= end
            || !(old_addr - self.base).is_multiple_of(INST_SIZE)
        {
            return old_addr;
        }
        let old_idx = ((old_addr - self.base) / INST_SIZE) as usize;
        self.base + self.new_index[old_idx] as u64 * INST_SIZE
    }

    /// Number of instructions inserted.
    pub fn inserted(&self) -> usize {
        self.insts.len() - self.old_len
    }
}

/// Inserts `lfence` immediately after each branch in `flagged`
/// (instruction indices of `jcc`s), remapping in-program branch
/// targets. The process-wide fence counter records the insertions.
pub fn harden_lfence(base: u64, insts: &[Inst], flagged: &[usize]) -> Hardened {
    harden(base, insts, &|idx| {
        if flagged.contains(&idx) { Some(Inst::Lfence) } else { None }
    })
}

/// Inserts a conditional-move index mask (`cmov<cc> guard, 0` on the
/// branch's own out-of-bounds condition) after each flagged branch that
/// has a recognizable guard register. Flagged branches without one fall
/// back to `lfence` — masking needs a register to clamp, serialization
/// does not.
pub fn harden_mask(base: u64, insts: &[Inst], report: &BranchReport, flagged: &[usize]) -> Hardened {
    harden(base, insts, &|idx| {
        if !flagged.contains(&idx) {
            return None;
        }
        match report.finding_at(idx) {
            Some(f) => match f.guard {
                Some(g) => Some(Inst::CmovImm(f.cond, g, 0)),
                None => Some(Inst::Lfence),
            },
            None => Some(Inst::Lfence),
        }
    })
}

/// Blanket variant used by the overhead experiment: hardens *every*
/// conditional branch, flagged or not, with `lfence` — the policy the
/// targeted analysis exists to beat.
pub fn harden_all_lfence(base: u64, insts: &[Inst]) -> Hardened {
    harden(base, insts, &|idx| {
        if matches!(insts[idx], Inst::Jcc(..)) { Some(Inst::Lfence) } else { None }
    })
}

/// Blanket conditional-move masking of every branch with a guard
/// register (the `spectre_v1=mask` world); branches without one are
/// serialized instead.
pub fn harden_all_mask(base: u64, insts: &[Inst], report: &BranchReport) -> Hardened {
    harden(base, insts, &|idx| {
        if !matches!(insts[idx], Inst::Jcc(..)) {
            return None;
        }
        match report.finding_at(idx).and_then(|f| f.guard.map(|g| (f.cond, g))) {
            Some((cond, g)) => Some(Inst::CmovImm(cond, g, 0)),
            None => Some(Inst::Lfence),
        }
    })
}

/// Core rewrite: `insert_after(i)` names the instruction to splice in
/// right after old index `i`.
fn harden(base: u64, insts: &[Inst], insert_after: &dyn Fn(usize) -> Option<Inst>) -> Hardened {
    // First pass: the index map.
    let mut new_index = Vec::with_capacity(insts.len());
    let mut shift = 0usize;
    let mut insertions: Vec<Option<Inst>> = Vec::with_capacity(insts.len());
    for i in 0..insts.len() {
        new_index.push(i + shift);
        let ins = insert_after(i);
        if ins.is_some() {
            shift += 1;
        }
        insertions.push(ins);
    }
    let end = base + insts.len() as u64 * INST_SIZE;
    let remap = |t: u64| -> u64 {
        if t >= base && t < end && (t - base).is_multiple_of(INST_SIZE) {
            let old = ((t - base) / INST_SIZE) as usize;
            base + new_index[old] as u64 * INST_SIZE
        } else {
            t
        }
    };

    // Second pass: emit, remapping absolute targets.
    let mut out = Vec::with_capacity(insts.len() + shift);
    let mut fences = 0u64;
    for (i, inst) in insts.iter().enumerate() {
        out.push(match inst {
            Inst::Jcc(c, t) => Inst::Jcc(*c, remap(*t)),
            Inst::Jmp(t) => Inst::Jmp(remap(*t)),
            Inst::Call(t) => Inst::Call(remap(*t)),
            other => other.clone(),
        });
        if let Some(ins) = insertions[i].take() {
            out.push(ins);
            fences += 1;
        }
    }
    counters::record_fences(fences);
    Hardened { insts: out, base, new_index, old_len: insts.len() }
}

/// Convenience for tests and the attack harness: the canonical mask
/// instruction the kernel's eBPF JIT emits for a guarded index.
pub fn canonical_mask(cond: Cond, guard: Reg) -> Inst {
    Inst::CmovImm(cond, guard, 0)
}
