//! # cpu-models — the eight CPUs the paper evaluates
//!
//! Concrete [`CpuModel`](uarch::model::CpuModel) descriptors for the
//! processors in Table 2 of *"Performance Evolution of Mitigating
//! Transient Execution Attacks"* (EuroSys 2022): five Intel
//! microarchitectures (Broadwell, Skylake Client, Cascade Lake, Ice Lake
//! Client, Ice Lake Server) and three AMD (Zen, Zen 2, Zen 3).
//!
//! ## Calibration
//!
//! Primitive latencies are taken from the paper's own microbenchmarks:
//!
//! | field | source |
//! |---|---|
//! | `syscall`, `sysret`, `swap_cr3` | Table 3 |
//! | `verw_clear` | Table 4 |
//! | `indirect_branch`, `indirect_mispredict`, `ret_mispredict` | Table 5 |
//! | `ibpb` | Table 6 |
//! | `rsb_fill` | Table 7 |
//! | `lfence` | Table 8 |
//!
//! Vulnerability flags and speculation quirks come from Table 1 and the
//! §6 speculation study (Tables 9/10). Everything *not* directly reported
//! by the paper (cache miss latency, divider latency, SSBD stall, VM
//! transition costs) is set to plausible generation-appropriate values;
//! `EXPERIMENTS.md` records which results depend on them.

use uarch::model::{LatencyProfile, SpecProfile, Vendor};

mod catalog;
pub mod riscv;
mod tables;

pub use catalog::{
    all_models, broadwell, cascade_lake, ice_lake_client, ice_lake_server, skylake_client, zen,
    zen2, zen3,
};
pub use riscv::{extended_models, riscv_c920, riscv_p670, riscv_u74, RiscvId};
pub use tables::{paper_table3, paper_table5, PaperTable3Row, PaperTable5Row};

/// Identifier for one of the paper's eight CPUs, in Table 2 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpuId {
    /// Intel E5-2640v4 (Broadwell, 2014).
    Broadwell,
    /// Intel i7-6600U (Skylake Client, 2015).
    SkylakeClient,
    /// Intel Xeon Silver 4210R (Cascade Lake, 2019).
    CascadeLake,
    /// Intel i5-10351G1 (Ice Lake Client, 2019).
    IceLakeClient,
    /// Intel Xeon Gold 6354 (Ice Lake Server, 2021).
    IceLakeServer,
    /// AMD Ryzen 3 1200 (Zen, 2017).
    Zen,
    /// AMD EPYC 7452 (Zen 2, 2019).
    Zen2,
    /// AMD Ryzen 5 5600X (Zen 3, 2020).
    Zen3,
}

impl CpuId {
    /// All eight CPUs in Table 2 order (Intel first, then AMD).
    pub const ALL: [CpuId; 8] = [
        CpuId::Broadwell,
        CpuId::SkylakeClient,
        CpuId::CascadeLake,
        CpuId::IceLakeClient,
        CpuId::IceLakeServer,
        CpuId::Zen,
        CpuId::Zen2,
        CpuId::Zen3,
    ];

    /// Builds the model for this CPU.
    pub fn model(self) -> uarch::model::CpuModel {
        match self {
            CpuId::Broadwell => broadwell(),
            CpuId::SkylakeClient => skylake_client(),
            CpuId::CascadeLake => cascade_lake(),
            CpuId::IceLakeClient => ice_lake_client(),
            CpuId::IceLakeServer => ice_lake_server(),
            CpuId::Zen => zen(),
            CpuId::Zen2 => zen2(),
            CpuId::Zen3 => zen3(),
        }
    }

    /// The microarchitecture name as the paper prints it.
    pub fn microarch(self) -> &'static str {
        match self {
            CpuId::Broadwell => "Broadwell",
            CpuId::SkylakeClient => "Skylake Client",
            CpuId::CascadeLake => "Cascade Lake",
            CpuId::IceLakeClient => "Ice Lake Client",
            CpuId::IceLakeServer => "Ice Lake Server",
            CpuId::Zen => "Zen",
            CpuId::Zen2 => "Zen 2",
            CpuId::Zen3 => "Zen 3",
        }
    }

    /// The vendor.
    pub fn vendor(self) -> Vendor {
        match self {
            CpuId::Zen | CpuId::Zen2 | CpuId::Zen3 => Vendor::Amd,
            _ => Vendor::Intel,
        }
    }
}

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.microarch())
    }
}

/// Shared baseline knobs the individual models specialize.
pub(crate) struct Common;

impl Common {
    /// Latencies every model starts from; fields with paper sources are
    /// overwritten per model in `catalog`.
    pub(crate) fn base_latency() -> LatencyProfile {
        LatencyProfile {
            alu: 1,
            div: 20,
            l1_hit: 4,
            l2_hit: 14,
            l1_miss: 200,
            tlb_miss: 40,
            syscall: 50,
            sysret: 40,
            swap_cr3: 190,
            verw_clear: 0,
            verw_legacy: 20,
            indirect_branch: 10,
            ibrs_indirect_extra: 0,
            generic_retpoline_extra: 0,
            amd_retpoline_extra: 0,
            ibpb: 1000,
            rsb_fill: 100,
            lfence: 15,
            wrmsr_spec_ctrl: 300,
            mispredict_penalty: 18,
            indirect_mispredict: 25,
            ret_mispredict: 30,
            ssbd_forward_stall: 40,
            xsave: 90,
            xrstor: 90,
            fpu_trap: 800,
            l1d_flush: 2000,
            vmentry: 700,
            vmexit: 1100,
            kernel_entry_base: 70,
            eibrs_periodic_flush: 0,
        }
    }

    /// Speculation defaults.
    pub(crate) fn base_spec() -> SpecProfile {
        SpecProfile {
            window: 48,
            btb_entries: 4096,
            rsb_entries: 16,
            bhb_len: 16,
            eibrs: false,
            ibrs_supported: true,
            ibpb_supported: true,
            ssbd_supported: true,
            md_clear: false,
            pcid: true,
            xsaveopt: true,
            btb_priv_tagged: false,
            ibrs_blocks_all_prediction: false,
            btb_history_tagged: false,
            ibrs_blocks_kernel_mode: false,
            eibrs_flush_interval: 0,
            smt: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::isa::arch_caps;

    #[test]
    fn catalog_has_eight_distinct_models() {
        let models = all_models();
        assert_eq!(models.len(), 8);
        let mut names: Vec<_> = models.iter().map(|m| m.microarch).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "microarchitecture names must be unique");
    }

    #[test]
    fn table2_identity_fields() {
        // Spot-check Table 2 rows.
        let b = broadwell();
        assert_eq!(b.name, "E5-2640v4");
        assert_eq!(b.power_watts, 90);
        assert_eq!(b.clock_ghz, 2.4);
        assert_eq!(b.cores, 10);
        let z = zen();
        assert_eq!(z.name, "Ryzen 3 1200");
        assert!(!z.spec.smt, "Ryzen 3 1200 is the only non-SMT part");
        let icx = ice_lake_server();
        assert_eq!(icx.power_watts, 205);
        assert_eq!(icx.cores, 18);
        for id in CpuId::ALL {
            let m = id.model();
            assert_eq!(m.vendor, id.vendor());
            if id != CpuId::Zen {
                assert!(m.spec.smt, "{id} supports SMT per Table 2");
            }
        }
    }

    #[test]
    fn meltdown_only_on_broadwell_and_skylake() {
        for id in CpuId::ALL {
            let m = id.model();
            let expect = matches!(id, CpuId::Broadwell | CpuId::SkylakeClient);
            assert_eq!(m.vuln.meltdown, expect, "{id}");
            assert_eq!(m.vuln.l1tf, expect, "{id} (L1TF tracks Meltdown here)");
            assert_eq!(m.needs_pti(), expect, "{id}");
        }
    }

    #[test]
    fn mds_on_first_three_intel_parts_only() {
        for id in CpuId::ALL {
            let m = id.model();
            let expect =
                matches!(id, CpuId::Broadwell | CpuId::SkylakeClient | CpuId::CascadeLake);
            assert_eq!(m.vuln.mds, expect, "{id}");
            assert_eq!(m.spec.md_clear, expect, "{id}: MD_CLEAR microcode where vulnerable");
        }
    }

    #[test]
    fn everyone_is_vulnerable_to_v1_v2_ssb() {
        // Paper §4.6: the attacks that still cost performance are the old
        // ones, unfixed everywhere.
        for id in CpuId::ALL {
            let m = id.model();
            assert!(m.vuln.spectre_v1, "{id}");
            assert!(m.vuln.spectre_v2, "{id}");
            assert!(m.vuln.ssb, "{id}");
        }
    }

    #[test]
    fn eibrs_on_cascade_lake_and_later_intel() {
        for id in CpuId::ALL {
            let m = id.model();
            let expect = matches!(
                id,
                CpuId::CascadeLake | CpuId::IceLakeClient | CpuId::IceLakeServer
            );
            assert_eq!(m.spec.eibrs, expect, "{id}");
            assert_eq!(m.spec.btb_priv_tagged, expect, "{id}: eIBRS implies tagging");
        }
    }

    #[test]
    fn zen1_has_no_ibrs() {
        assert!(!zen().spec.ibrs_supported, "Table 10 marks Zen as N/A");
        assert!(zen2().spec.ibrs_supported);
        assert!(zen3().spec.ibrs_supported);
    }

    #[test]
    fn zen3_btb_is_history_tagged() {
        // §6.2: the probe could not poison the Zen 3 BTB at all.
        for id in CpuId::ALL {
            assert_eq!(id.model().spec.btb_history_tagged, id == CpuId::Zen3, "{id}");
        }
    }

    #[test]
    fn pre_spectre_ibrs_blocks_everything() {
        // §6.2.1: Broadwell and Skylake disable all indirect prediction
        // under IBRS; Table 10 shows the same for Zen 2 / Zen 3.
        for id in CpuId::ALL {
            let expect = matches!(
                id,
                CpuId::Broadwell | CpuId::SkylakeClient | CpuId::Zen2 | CpuId::Zen3
            );
            assert_eq!(id.model().spec.ibrs_blocks_all_prediction, expect, "{id}");
        }
    }

    #[test]
    fn ice_lake_client_ibrs_kernel_quirk() {
        for id in CpuId::ALL {
            assert_eq!(
                id.model().spec.ibrs_blocks_kernel_mode,
                id == CpuId::IceLakeClient,
                "{id}"
            );
        }
    }

    #[test]
    fn latency_tables_match_paper() {
        // Table 3.
        for (id, syscall, sysret, cr3) in [
            (CpuId::Broadwell, 49, 40, Some(206)),
            (CpuId::SkylakeClient, 42, 42, Some(191)),
            (CpuId::CascadeLake, 70, 43, None),
            (CpuId::IceLakeClient, 21, 29, None),
            (CpuId::IceLakeServer, 45, 32, None),
            (CpuId::Zen, 63, 53, None),
            (CpuId::Zen2, 53, 46, None),
            (CpuId::Zen3, 83, 55, None),
        ] {
            let m = id.model();
            assert_eq!(m.lat.syscall, syscall, "{id} syscall");
            assert_eq!(m.lat.sysret, sysret, "{id} sysret");
            if let Some(c) = cr3 {
                assert_eq!(m.lat.swap_cr3, c, "{id} swap_cr3");
            }
        }
        // Table 4.
        assert_eq!(broadwell().lat.verw_clear, 610);
        assert_eq!(skylake_client().lat.verw_clear, 518);
        assert_eq!(cascade_lake().lat.verw_clear, 458);
        // Table 6.
        for (id, ibpb) in [
            (CpuId::Broadwell, 5600),
            (CpuId::SkylakeClient, 4500),
            (CpuId::CascadeLake, 340),
            (CpuId::IceLakeClient, 2500),
            (CpuId::IceLakeServer, 840),
            (CpuId::Zen, 7400),
            (CpuId::Zen2, 1100),
            (CpuId::Zen3, 800),
        ] {
            assert_eq!(id.model().lat.ibpb, ibpb, "{id} IBPB");
        }
        // Table 7.
        for (id, rsb) in [
            (CpuId::Broadwell, 130),
            (CpuId::SkylakeClient, 130),
            (CpuId::CascadeLake, 120),
            (CpuId::IceLakeClient, 40),
            (CpuId::IceLakeServer, 69),
            (CpuId::Zen, 114),
            (CpuId::Zen2, 68),
            (CpuId::Zen3, 94),
        ] {
            assert_eq!(id.model().lat.rsb_fill, rsb, "{id} RSB fill");
        }
        // Table 8.
        for (id, lf) in [
            (CpuId::Broadwell, 28),
            (CpuId::SkylakeClient, 20),
            (CpuId::CascadeLake, 15),
            (CpuId::IceLakeClient, 8),
            (CpuId::IceLakeServer, 13),
            (CpuId::Zen, 48),
            (CpuId::Zen2, 4),
            (CpuId::Zen3, 30),
        ] {
            assert_eq!(id.model().lat.lfence, lf, "{id} lfence");
        }
        // Table 5 baseline.
        for (id, base) in [
            (CpuId::Broadwell, 16),
            (CpuId::SkylakeClient, 11),
            (CpuId::CascadeLake, 3),
            (CpuId::IceLakeClient, 5),
            (CpuId::IceLakeServer, 1),
            (CpuId::Zen, 30),
            (CpuId::Zen2, 3),
            (CpuId::Zen3, 23),
        ] {
            assert_eq!(id.model().lat.indirect_branch, base, "{id} indirect baseline");
        }
    }

    #[test]
    fn arch_capabilities_consistent_with_fixes() {
        assert_eq!(broadwell().arch_capabilities() & arch_caps::RDCL_NO, 0);
        assert_ne!(cascade_lake().arch_capabilities() & arch_caps::RDCL_NO, 0);
        assert_ne!(ice_lake_server().arch_capabilities() & arch_caps::MDS_NO, 0);
        // No CPU advertises SSB_NO (paper §4.3).
        for id in CpuId::ALL {
            assert_eq!(id.model().arch_capabilities() & arch_caps::SSB_NO, 0, "{id}");
        }
    }

    #[test]
    fn amd_parts_immune_to_meltdown_class() {
        for id in [CpuId::Zen, CpuId::Zen2, CpuId::Zen3] {
            let m = id.model();
            assert!(!m.vuln.meltdown && !m.vuln.l1tf && !m.vuln.mds, "{id}");
        }
    }

    #[test]
    fn ssbd_stall_trends_worse_over_generations() {
        // Figure 5: the SSBD slowdown is "trending worse over time".
        assert!(zen3().lat.ssbd_forward_stall > zen().lat.ssbd_forward_stall);
        assert!(
            ice_lake_server().lat.ssbd_forward_stall > broadwell().lat.ssbd_forward_stall
        );
    }

    #[test]
    fn eibrs_parts_have_bimodal_entry_behaviour() {
        for id in [CpuId::CascadeLake, CpuId::IceLakeClient, CpuId::IceLakeServer] {
            let m = id.model();
            assert!(m.spec.eibrs_flush_interval > 0, "{id}");
            assert_eq!(m.lat.eibrs_periodic_flush, 210, "{id} (§6.2.2: ~210 cycles)");
        }
        assert_eq!(broadwell().spec.eibrs_flush_interval, 0);
    }
}
