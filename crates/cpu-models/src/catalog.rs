//! The eight CPU descriptors (paper Table 2), fully parameterized.
//!
//! Each builder starts from [`Common`] defaults and overrides: identity
//! (Table 2), vulnerability flags (Table 1 and vendor disclosures),
//! paper-calibrated latencies (Tables 3–8), and speculation quirks
//! (Tables 9/10, §6.2).
//!
//! `ret_mispredict` is derived so that the *measured* generic-retpoline
//! overhead on the simulator reproduces Table 5's "Generic" column: the
//! thunk sequence costs roughly `call + call + store + ret + pop ≈ 15`
//! cycles of committed work on top of the `ret` misprediction, replacing
//! an `indirect_branch`-cycle predicted branch. The calibration test in
//! the `spectrebench` crate checks the emergent numbers.

use uarch::model::{CpuModel, Vendor, VulnProfile};

use crate::Common;

/// Intel E5-2640v4 — Broadwell (2014). Pre-Spectre design: vulnerable to
/// everything, all software mitigations required.
pub fn broadwell() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 24;
    lat.l1_miss = 210;
    lat.syscall = 49;
    lat.sysret = 40;
    lat.swap_cr3 = 206;
    lat.verw_clear = 610;
    lat.indirect_branch = 16;
    lat.ibrs_indirect_extra = 32;
    lat.generic_retpoline_extra = 28;
    lat.ibpb = 5600;
    lat.rsb_fill = 130;
    lat.lfence = 28;
    lat.wrmsr_spec_ctrl = 550;
    lat.mispredict_penalty = 20;
    lat.indirect_mispredict = 32;
    lat.ret_mispredict = 29;
    lat.ssbd_forward_stall = 2;
    lat.l1d_flush = 2600;
    lat.vmentry = 900;
    lat.vmexit = 1400;

    let mut spec = Common::base_spec();
    spec.md_clear = true;
    spec.ibrs_blocks_all_prediction = true;
    spec.rsb_entries = 16;

    CpuModel {
        name: "E5-2640v4",
        microarch: "Broadwell",
        vendor: Vendor::Intel,
        year: 2014,
        power_watts: 90,
        clock_ghz: 2.4,
        cores: 10,
        vuln: VulnProfile::pre_spectre_intel(),
        lat,
        spec,
    }
}

/// Intel i7-6600U — Skylake Client (2015). Pre-Spectre design.
pub fn skylake_client() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 22;
    lat.l1_miss = 200;
    lat.syscall = 42;
    lat.sysret = 42;
    lat.swap_cr3 = 191;
    lat.verw_clear = 518;
    lat.indirect_branch = 11;
    lat.ibrs_indirect_extra = 15;
    lat.generic_retpoline_extra = 19;
    lat.ibpb = 4500;
    lat.rsb_fill = 130;
    lat.lfence = 20;
    lat.wrmsr_spec_ctrl = 480;
    lat.mispredict_penalty = 18;
    lat.indirect_mispredict = 15;
    lat.ret_mispredict = 15;
    lat.ssbd_forward_stall = 2;
    lat.l1d_flush = 2200;
    lat.vmentry = 850;
    lat.vmexit = 1300;

    let mut spec = Common::base_spec();
    spec.md_clear = true;
    spec.ibrs_blocks_all_prediction = true;
    spec.rsb_entries = 16;

    CpuModel {
        name: "i7-6600U",
        microarch: "Skylake Client",
        vendor: Vendor::Intel,
        year: 2015,
        power_watts: 15,
        clock_ghz: 2.6,
        cores: 2,
        vuln: VulnProfile::pre_spectre_intel(),
        lat,
        spec,
    }
}

/// Intel Xeon Silver 4210R — Cascade Lake (2019). Meltdown/L1TF fixed in
/// hardware; still MDS-vulnerable; first generation with eIBRS.
pub fn cascade_lake() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 18;
    lat.l1_miss = 190;
    lat.syscall = 70;
    lat.sysret = 43;
    lat.swap_cr3 = 185;
    lat.verw_clear = 458;
    lat.indirect_branch = 3;
    lat.ibrs_indirect_extra = 0;
    lat.generic_retpoline_extra = 49;
    lat.ibpb = 340;
    lat.rsb_fill = 120;
    lat.lfence = 15;
    lat.wrmsr_spec_ctrl = 300;
    lat.mispredict_penalty = 17;
    lat.indirect_mispredict = 45;
    lat.ret_mispredict = 37;
    lat.ssbd_forward_stall = 3;
    lat.eibrs_periodic_flush = 210;

    let mut spec = Common::base_spec();
    spec.md_clear = true;
    spec.eibrs = true;
    spec.btb_priv_tagged = true;
    spec.eibrs_flush_interval = 8;
    spec.rsb_entries = 16;

    let mut vuln = VulnProfile::pre_spectre_intel();
    vuln.meltdown = false;
    vuln.l1tf = false;
    vuln.lazy_fp = false;

    CpuModel {
        name: "Xeon Silver 4210R",
        microarch: "Cascade Lake",
        vendor: Vendor::Intel,
        year: 2019,
        power_watts: 100,
        clock_ghz: 2.4,
        cores: 10,
        vuln,
        lat,
        spec,
    }
}

/// Intel i5-10351G1 — Ice Lake Client (2019). MDS fixed; low-clock mobile
/// part (which the paper notes tends to show fewer cycles).
pub fn ice_lake_client() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 14;
    lat.l1_miss = 120;
    lat.syscall = 21;
    lat.sysret = 29;
    lat.swap_cr3 = 150;
    lat.verw_legacy = 15;
    lat.indirect_branch = 5;
    lat.ibrs_indirect_extra = 0;
    lat.generic_retpoline_extra = 21;
    lat.ibpb = 2500;
    lat.rsb_fill = 40;
    lat.lfence = 8;
    lat.wrmsr_spec_ctrl = 350;
    lat.mispredict_penalty = 14;
    lat.indirect_mispredict = 20;
    lat.ret_mispredict = 11;
    lat.ssbd_forward_stall = 4;
    lat.vmentry = 600;
    lat.vmexit = 1000;
    lat.kernel_entry_base = 50;
    lat.eibrs_periodic_flush = 210;

    let mut spec = Common::base_spec();
    spec.eibrs = true;
    spec.btb_priv_tagged = true;
    spec.ibrs_blocks_kernel_mode = true;
    spec.eibrs_flush_interval = 12;
    spec.rsb_entries = 32;

    let mut vuln = VulnProfile::pre_spectre_intel();
    vuln.meltdown = false;
    vuln.l1tf = false;
    vuln.mds = false;
    vuln.lazy_fp = false;

    CpuModel {
        name: "i5-10351G1",
        microarch: "Ice Lake Client",
        vendor: Vendor::Intel,
        year: 2019,
        power_watts: 15,
        clock_ghz: 1.0,
        cores: 4,
        vuln,
        lat,
        spec,
    }
}

/// Intel Xeon Gold 6354 — Ice Lake Server (2021). A separately designed
/// microarchitecture from Ice Lake Client despite the shared name.
pub fn ice_lake_server() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 15;
    lat.l1_miss = 180;
    lat.syscall = 45;
    lat.sysret = 32;
    lat.swap_cr3 = 170;
    lat.verw_legacy = 12;
    lat.indirect_branch = 1;
    lat.ibrs_indirect_extra = 1;
    lat.generic_retpoline_extra = 50;
    lat.ibpb = 840;
    lat.rsb_fill = 69;
    lat.lfence = 13;
    lat.wrmsr_spec_ctrl = 280;
    lat.mispredict_penalty = 17;
    lat.indirect_mispredict = 48;
    lat.ret_mispredict = 36;
    lat.ssbd_forward_stall = 5;
    lat.vmentry = 550;
    lat.vmexit = 900;
    lat.eibrs_periodic_flush = 210;

    let mut spec = Common::base_spec();
    spec.eibrs = true;
    spec.btb_priv_tagged = true;
    spec.eibrs_flush_interval = 16;
    spec.rsb_entries = 32;

    let mut vuln = VulnProfile::pre_spectre_intel();
    vuln.meltdown = false;
    vuln.l1tf = false;
    vuln.mds = false;
    vuln.lazy_fp = false;

    CpuModel {
        name: "Xeon Gold 6354",
        microarch: "Ice Lake Server",
        vendor: Vendor::Intel,
        year: 2021,
        power_watts: 205,
        clock_ghz: 3.0,
        cores: 18,
        vuln,
        lat,
        spec,
    }
}

/// AMD Ryzen 3 1200 — Zen (2017). Never vulnerable to the Meltdown class;
/// no IBRS support (Table 10 marks it N/A); the only non-SMT part.
pub fn zen() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 16;
    lat.l1_miss = 190;
    lat.syscall = 63;
    lat.sysret = 53;
    lat.swap_cr3 = 180;
    lat.verw_legacy = 25;
    lat.indirect_branch = 30;
    lat.generic_retpoline_extra = 25;
    lat.amd_retpoline_extra = 28;
    lat.ibpb = 7400;
    lat.rsb_fill = 114;
    lat.lfence = 48;
    lat.mispredict_penalty = 19;
    lat.indirect_mispredict = 28;
    lat.ret_mispredict = 40;
    lat.ssbd_forward_stall = 1;
    lat.vmentry = 800;
    lat.vmexit = 1250;

    let mut spec = Common::base_spec();
    spec.ibrs_supported = false;
    spec.pcid = false;
    spec.smt = false;
    spec.rsb_entries = 16;

    CpuModel {
        name: "Ryzen 3 1200",
        microarch: "Zen",
        vendor: Vendor::Amd,
        year: 2017,
        power_watts: 65,
        clock_ghz: 3.1,
        cores: 4,
        vuln: VulnProfile::amd(),
        lat,
        spec,
    }
}

/// AMD EPYC 7452 — Zen 2 (2019).
pub fn zen2() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 14;
    lat.l1_miss = 180;
    lat.syscall = 53;
    lat.sysret = 46;
    lat.swap_cr3 = 175;
    lat.verw_legacy = 10;
    lat.indirect_branch = 3;
    lat.ibrs_indirect_extra = 13;
    lat.generic_retpoline_extra = 14;
    lat.amd_retpoline_extra = 0;
    lat.ibpb = 1100;
    lat.rsb_fill = 68;
    lat.lfence = 4;
    lat.wrmsr_spec_ctrl = 320;
    lat.mispredict_penalty = 16;
    lat.indirect_mispredict = 13;
    lat.ret_mispredict = 4;
    lat.ssbd_forward_stall = 3;
    lat.vmentry = 700;
    lat.vmexit = 1100;

    let mut spec = Common::base_spec();
    spec.ibrs_blocks_all_prediction = true;
    spec.pcid = false;
    spec.rsb_entries = 32;

    CpuModel {
        name: "EPYC 7452",
        microarch: "Zen 2",
        vendor: Vendor::Amd,
        year: 2019,
        power_watts: 155,
        clock_ghz: 2.35,
        cores: 32,
        vuln: VulnProfile::amd(),
        lat,
        spec,
    }
}

/// AMD Ryzen 5 5600X — Zen 3 (2020). The paper's probe could not poison
/// its BTB at all (§6.2), modelled as branch-history tagging.
pub fn zen3() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.div = 12;
    lat.l1_miss = 170;
    lat.syscall = 83;
    lat.sysret = 55;
    lat.swap_cr3 = 170;
    lat.verw_legacy = 20;
    lat.indirect_branch = 23;
    lat.ibrs_indirect_extra = 19;
    lat.generic_retpoline_extra = 13;
    lat.amd_retpoline_extra = 18;
    lat.ibpb = 800;
    lat.rsb_fill = 94;
    lat.lfence = 30;
    lat.wrmsr_spec_ctrl = 280;
    lat.mispredict_penalty = 15;
    lat.indirect_mispredict = 19;
    lat.ret_mispredict = 21;
    lat.ssbd_forward_stall = 6;
    lat.vmentry = 600;
    lat.vmexit = 950;

    let mut spec = Common::base_spec();
    spec.ibrs_blocks_all_prediction = true;
    // Branch-history-conditioned BTB indexing: an indirect branch only
    // predicts when the recent history matches the training context. A
    // steady loop predicts perfectly (its history window is identical
    // each iteration), but any path difference into the branch defeats
    // cross-context poisoning — the paper's §6.2 hypothesis for why its
    // probe came up empty on this part.
    spec.btb_history_tagged = true;
    spec.rsb_entries = 32;

    CpuModel {
        name: "Ryzen 5 5600X",
        microarch: "Zen 3",
        vendor: Vendor::Amd,
        year: 2020,
        power_watts: 65,
        clock_ghz: 3.7,
        cores: 6,
        vuln: VulnProfile::amd(),
        lat,
        spec,
    }
}

/// All eight models in Table 2 order.
pub fn all_models() -> Vec<CpuModel> {
    vec![
        broadwell(),
        skylake_client(),
        cascade_lake(),
        ice_lake_client(),
        ice_lake_server(),
        zen(),
        zen2(),
        zen3(),
    ]
}
