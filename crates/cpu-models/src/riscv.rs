//! The extended, beyond-the-paper catalog: RISC-V model descriptors.
//!
//! PAPERS.md's *Software Mitigation of RISC-V Spectre Attacks* direction:
//! the same speculation primitives on a different ISA, with `fence`-
//! analogue serialization (RISC-V has no `lfence`; the barrier is a
//! `fence`+`fence.i`-style sequence, costed via the model's `lfence`
//! field) and a retpoline-analogue thunk (costed via
//! `generic_retpoline_extra`). None of these parts appear in the paper,
//! so they live behind [`RiscvId`] / [`extended_models`] and the
//! paper-pinned [`CpuId::ALL`](crate::CpuId::ALL) Table 2 set is
//! untouched — the golden outputs for every paper artifact stay
//! byte-identical.
//!
//! Geometry is calibrated from public microarchitecture disclosures, not
//! from the paper: a dual-issue in-order part with a short pipeline and
//! a small (but real — in-order machines still run past unresolved
//! branches) speculation window, a mid-size out-of-order application
//! core, and a many-core out-of-order server part. All three speculate
//! far enough to cover the ~6-instruction Figure-1 gadget, so the
//! Spectre-V1 PoC leaks on every one of them absent mitigation; none
//! implement the Intel-specific MSR interfaces (IBRS/IBPB/SSBD), so the
//! kernel's V2 choice degrades to the retpoline-analogue.

use uarch::model::{CpuModel, Vendor, VulnProfile};

use crate::Common;

/// Vulnerability profile shared by the RISC-V parts: speculation exists
/// (V1/V2), but there is no cross-privilege lazy data forwarding
/// (Meltdown/L1TF/MDS-class) and no `swapgs` analogue.
fn riscv_vuln(ssb: bool) -> VulnProfile {
    VulnProfile {
        meltdown: false,
        l1tf: false,
        lazy_fp: false,
        spectre_v1: true,
        spectre_v2: true,
        ssb,
        mds: false,
        swapgs: false,
    }
}

/// SiFive FU740-C000 — U74 (2020). Dual-issue in-order, 8-stage
/// pipeline: a short speculation window (it still fetches and executes
/// past a predicted branch while the compare resolves), cheap fences,
/// cheap mispredicts.
pub fn riscv_u74() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.l1_miss = 160;
    lat.syscall = 60;
    lat.sysret = 50;
    lat.indirect_branch = 5;
    lat.generic_retpoline_extra = 12;
    lat.lfence = 8; // fence + pipeline drain on a short in-order pipe
    lat.mispredict_penalty = 6;
    lat.indirect_mispredict = 8;
    lat.ret_mispredict = 8;
    lat.rsb_fill = 40;

    let mut spec = Common::base_spec();
    spec.window = 12; // covers the 6-instruction Figure-1 gadget
    spec.btb_entries = 512;
    spec.rsb_entries = 6;
    spec.bhb_len = 8;
    spec.ibrs_supported = false;
    spec.ibpb_supported = false;
    spec.ssbd_supported = false;
    spec.pcid = false;
    spec.xsaveopt = false;
    spec.smt = false;

    CpuModel {
        name: "FU740-C000",
        microarch: "U74",
        vendor: Vendor::RiscV,
        year: 2020,
        power_watts: 5,
        clock_ghz: 1.4,
        cores: 4,
        vuln: riscv_vuln(false),
        lat,
        spec,
    }
}

/// SiFive P670 — out-of-order application core (2022). Mid-size window,
/// real store-to-load speculation (SSB applies), pricier barrier.
pub fn riscv_p670() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.l1_miss = 190;
    lat.syscall = 48;
    lat.sysret = 40;
    lat.indirect_branch = 9;
    lat.generic_retpoline_extra = 24;
    lat.lfence = 26;
    lat.mispredict_penalty = 13;
    lat.indirect_mispredict = 18;
    lat.ret_mispredict = 20;
    lat.rsb_fill = 90;

    let mut spec = Common::base_spec();
    spec.window = 96;
    spec.btb_entries = 2048;
    spec.rsb_entries = 16;
    spec.bhb_len = 16;
    spec.ibrs_supported = false;
    spec.ibpb_supported = false;
    spec.ssbd_supported = false;
    spec.pcid = false;
    spec.xsaveopt = false;
    spec.smt = false;

    CpuModel {
        name: "P670-SDK",
        microarch: "P670",
        vendor: Vendor::RiscV,
        year: 2022,
        power_watts: 15,
        clock_ghz: 2.2,
        cores: 8,
        vuln: riscv_vuln(true),
        lat,
        spec,
    }
}

/// Sophon SG2042 — C920 server part (2023). Deep out-of-order window,
/// many cores, the most expensive fence-analogue of the three.
pub fn riscv_c920() -> CpuModel {
    let mut lat = Common::base_latency();
    lat.l1_miss = 230;
    lat.syscall = 55;
    lat.sysret = 45;
    lat.indirect_branch = 11;
    lat.generic_retpoline_extra = 32;
    lat.lfence = 38;
    lat.mispredict_penalty = 15;
    lat.indirect_mispredict = 22;
    lat.ret_mispredict = 24;
    lat.rsb_fill = 110;

    let mut spec = Common::base_spec();
    spec.window = 128;
    spec.btb_entries = 4096;
    spec.rsb_entries = 32;
    spec.bhb_len = 16;
    spec.ibrs_supported = false;
    spec.ibpb_supported = false;
    spec.ssbd_supported = false;
    spec.pcid = false;
    spec.xsaveopt = false;
    spec.smt = false;

    CpuModel {
        name: "SG2042",
        microarch: "C920",
        vendor: Vendor::RiscV,
        year: 2023,
        power_watts: 120,
        clock_ghz: 2.0,
        cores: 64,
        vuln: riscv_vuln(true),
        lat,
        spec,
    }
}

/// Identifier for one of the extended-catalog RISC-V parts, mirroring
/// [`CpuId`](crate::CpuId).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RiscvId {
    /// SiFive U74 (dual-issue in-order).
    U74,
    /// SiFive P670 (out-of-order application core).
    P670,
    /// T-Head C920 (out-of-order server core, Sophon SG2042).
    C920,
}

impl RiscvId {
    /// All extended-catalog parts, in-order core first.
    pub const ALL: [RiscvId; 3] = [RiscvId::U74, RiscvId::P670, RiscvId::C920];

    /// Builds the model descriptor.
    pub fn model(self) -> CpuModel {
        match self {
            RiscvId::U74 => riscv_u74(),
            RiscvId::P670 => riscv_p670(),
            RiscvId::C920 => riscv_c920(),
        }
    }

    /// The microarchitecture name (stable cell label).
    pub fn microarch(self) -> &'static str {
        match self {
            RiscvId::U74 => "U74",
            RiscvId::P670 => "P670",
            RiscvId::C920 => "C920",
        }
    }
}

impl std::fmt::Display for RiscvId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.microarch())
    }
}

/// The extended catalog: the paper's Table 2 set (unchanged, in order)
/// followed by the RISC-V parts.
pub fn extended_models() -> Vec<CpuModel> {
    let mut models = crate::all_models();
    models.extend(RiscvId::ALL.iter().map(|id| id.model()));
    models
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuId;

    #[test]
    fn extended_catalog_appends_without_touching_table2() {
        let ext = extended_models();
        assert_eq!(ext.len(), CpuId::ALL.len() + RiscvId::ALL.len());
        // The paper-pinned prefix is exactly all_models().
        for (a, b) in ext.iter().zip(crate::all_models().iter()) {
            assert_eq!(a.microarch, b.microarch);
            assert_eq!(a.name, b.name);
        }
        let mut names: Vec<_> = ext.iter().map(|m| m.microarch).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ext.len(), "microarch labels must stay unique");
    }

    #[test]
    fn riscv_parts_speculate_past_the_gadget() {
        for id in RiscvId::ALL {
            let m = id.model();
            assert_eq!(m.vendor, uarch::model::Vendor::RiscV);
            assert!(m.vuln.spectre_v1 && m.vuln.spectre_v2, "{id}");
            assert!(
                m.spec.window >= 8,
                "{id}: window {} cannot cover the Figure-1 gadget",
                m.spec.window
            );
            // No Intel MSR interfaces: the kernel must fall back to the
            // retpoline-analogue, never IBRS/IBPB.
            assert!(!m.spec.ibrs_supported && !m.spec.ibpb_supported, "{id}");
            // No hardware-unfixed Meltdown-class leaks on these parts.
            assert!(!m.vuln.meltdown && !m.vuln.mds && !m.vuln.l1tf, "{id}");
        }
    }
}
