//! Paper reference values, kept verbatim so the benchmark harness can
//! print "paper vs measured" comparisons (EXPERIMENTS.md).

use crate::CpuId;

/// A row of the paper's Table 3 (entry/exit primitive cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperTable3Row {
    /// Which CPU.
    pub cpu: CpuId,
    /// `syscall` cycles.
    pub syscall: u64,
    /// `sysret` cycles.
    pub sysret: u64,
    /// `mov %cr3` cycles, `None` where the paper reports N/A.
    pub swap_cr3: Option<u64>,
}

/// The paper's Table 3, verbatim.
pub fn paper_table3() -> Vec<PaperTable3Row> {
    use CpuId::*;
    [
        (Broadwell, 49, 40, Some(206)),
        (SkylakeClient, 42, 42, Some(191)),
        (CascadeLake, 70, 43, None),
        (IceLakeClient, 21, 29, None),
        (IceLakeServer, 45, 32, None),
        (Zen, 63, 53, None),
        (Zen2, 53, 46, None),
        (Zen3, 83, 55, None),
    ]
    .into_iter()
    .map(|(cpu, syscall, sysret, swap_cr3)| PaperTable3Row { cpu, syscall, sysret, swap_cr3 })
    .collect()
}

/// A row of the paper's Table 5 (indirect branch cycles per mitigation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperTable5Row {
    /// Which CPU.
    pub cpu: CpuId,
    /// Unmitigated, predicted indirect branch.
    pub baseline: u64,
    /// Extra cycles with IBRS enabled (`None` = N/A, Zen).
    pub ibrs_extra: Option<u64>,
    /// Extra cycles of a generic retpoline.
    pub generic_extra: u64,
    /// Extra cycles of an AMD (lfence) retpoline (`None` on Intel).
    pub amd_extra: Option<u64>,
}

/// The paper's Table 5, verbatim.
pub fn paper_table5() -> Vec<PaperTable5Row> {
    use CpuId::*;
    [
        (Broadwell, 16, Some(32), 28, None),
        (SkylakeClient, 11, Some(15), 19, None),
        (CascadeLake, 3, Some(0), 49, None),
        (IceLakeClient, 5, Some(0), 21, None),
        (IceLakeServer, 1, Some(1), 50, None),
        (Zen, 30, None, 25, Some(28)),
        (Zen2, 3, Some(13), 14, Some(0)),
        (Zen3, 23, Some(19), 13, Some(18)),
    ]
    .into_iter()
    .map(|(cpu, baseline, ibrs_extra, generic_extra, amd_extra)| PaperTable5Row {
        cpu,
        baseline,
        ibrs_extra,
        generic_extra,
        amd_extra,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_covers_all_cpus_in_order() {
        let t = paper_table3();
        assert_eq!(t.len(), 8);
        for (row, id) in t.iter().zip(CpuId::ALL) {
            assert_eq!(row.cpu, id);
        }
        // Only the two Meltdown-vulnerable parts report a cr3 cost.
        assert_eq!(t.iter().filter(|r| r.swap_cr3.is_some()).count(), 2);
    }

    #[test]
    fn table5_amd_columns() {
        let t = paper_table5();
        for row in &t {
            let is_amd = matches!(row.cpu, CpuId::Zen | CpuId::Zen2 | CpuId::Zen3);
            assert_eq!(row.amd_extra.is_some(), is_amd, "{:?}", row.cpu);
        }
        // Zen has no IBRS.
        assert!(t.iter().find(|r| r.cpu == CpuId::Zen).unwrap().ibrs_extra.is_none());
    }

    #[test]
    fn models_agree_with_reference_tables() {
        for row in paper_table3() {
            let m = row.cpu.model();
            assert_eq!(m.lat.syscall, row.syscall);
            assert_eq!(m.lat.sysret, row.sysret);
            if let Some(c) = row.swap_cr3 {
                assert_eq!(m.lat.swap_cr3, c);
            }
        }
        for row in paper_table5() {
            let m = row.cpu.model();
            assert_eq!(m.lat.indirect_branch, row.baseline);
            assert_eq!(m.lat.generic_retpoline_extra, row.generic_extra);
            if let Some(e) = row.ibrs_extra {
                assert_eq!(m.lat.ibrs_indirect_extra, e);
            }
            if let Some(e) = row.amd_extra {
                assert_eq!(m.lat.amd_retpoline_extra, e);
            }
        }
    }
}
