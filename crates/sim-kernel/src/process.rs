//! Processes: register/FPU context, address-space handles, blocking state.

use uarch::fpu::FpuState;
use uarch::mmu::PageTableId;

/// Process id.
pub type Pid = u64;

/// Why a process is not runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Blocked reading from a pipe; parameters of the pending read.
    PipeRead {
        /// Pipe index.
        pipe: usize,
        /// User buffer address.
        buf: u64,
        /// Maximum bytes.
        len: u64,
    },
}

/// Scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Eligible to run.
    Runnable,
    /// Waiting on a resource.
    Blocked(BlockedOn),
    /// Terminated.
    Exited,
}

/// A file descriptor table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fd {
    /// Closed slot.
    Closed,
    /// An in-memory file with a seek offset.
    File {
        /// Index into the kernel file table.
        index: usize,
        /// Current offset.
        offset: u64,
    },
    /// Read end of a pipe.
    PipeRead {
        /// Index into the kernel pipe table.
        index: usize,
    },
    /// Write end of a pipe.
    PipeWrite {
        /// Index into the kernel pipe table.
        index: usize,
    },
}

/// A lazily-populated mmap region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmapRegion {
    /// Start virtual address (page aligned).
    pub start: u64,
    /// Length in bytes (page aligned).
    pub len: u64,
}

impl MmapRegion {
    /// Whether `vaddr` falls inside this region.
    pub fn contains(&self, vaddr: u64) -> bool {
        vaddr >= self.start && vaddr < self.start + self.len
    }
}

/// A process control block.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Scheduling state.
    pub state: ProcState,
    /// Saved general-purpose registers (valid while not running).
    pub saved_regs: [u64; 16],
    /// Saved user program counter.
    pub user_pc: u64,
    /// Saved FPU state (used by eager switching; under lazy switching the
    /// live FPU may still hold this process's registers).
    pub fpu: FpuState,
    /// Full address space (user + kernel mappings).
    pub full_table: PageTableId,
    /// User-only address space (PTI). Equal to `full_table` without PTI.
    pub user_table: PageTableId,
    /// CR3 value selecting the full table.
    pub full_cr3: u64,
    /// CR3 value selecting the user table.
    pub user_cr3: u64,
    /// File descriptor table.
    pub fds: Vec<Fd>,
    /// Lazy mmap regions.
    pub mmap_regions: Vec<MmapRegion>,
    /// Next free address in the mmap area.
    pub mmap_cursor: u64,
    /// Whether the process entered seccomp mode.
    pub seccomp: bool,
    /// Whether the process requested SSBD via prctl.
    pub ssbd_prctl: bool,
    /// Demand faults served for this process (diagnostics).
    pub demand_faults: u64,
}

impl Process {
    /// Whether this process runs with SSBD under the given policy.
    pub fn wants_ssbd(&self, mode: crate::boot::SsbdMode) -> bool {
        use crate::boot::SsbdMode;
        match mode {
            SsbdMode::ForceOn => true,
            SsbdMode::ForceOff => false,
            SsbdMode::PrctlOnly => self.ssbd_prctl,
            SsbdMode::SeccompAndPrctl => self.ssbd_prctl || self.seccomp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::SsbdMode;

    fn proc_with(seccomp: bool, prctl: bool) -> Process {
        Process {
            pid: 1,
            state: ProcState::Runnable,
            saved_regs: [0; 16],
            user_pc: 0,
            fpu: FpuState::default(),
            full_table: PageTableId(1),
            user_table: PageTableId(2),
            full_cr3: 0,
            user_cr3: 0,
            fds: Vec::new(),
            mmap_regions: Vec::new(),
            mmap_cursor: crate::layout::MMAP_BASE,
            seccomp,
            ssbd_prctl: prctl,
            demand_faults: 0,
        }
    }

    #[test]
    fn ssbd_policy_matrix() {
        // Pre-5.16 default: seccomp processes get SSBD (the Firefox case,
        // paper §4.3).
        assert!(proc_with(true, false).wants_ssbd(SsbdMode::SeccompAndPrctl));
        assert!(proc_with(false, true).wants_ssbd(SsbdMode::SeccompAndPrctl));
        assert!(!proc_with(false, false).wants_ssbd(SsbdMode::SeccompAndPrctl));
        // 5.16 behaviour: seccomp alone no longer opts in (§7).
        assert!(!proc_with(true, false).wants_ssbd(SsbdMode::PrctlOnly));
        assert!(proc_with(false, true).wants_ssbd(SsbdMode::PrctlOnly));
        // Forced modes ignore per-process state.
        assert!(proc_with(false, false).wants_ssbd(SsbdMode::ForceOn));
        assert!(!proc_with(true, true).wants_ssbd(SsbdMode::ForceOff));
    }

    #[test]
    fn mmap_region_containment() {
        let r = MmapRegion { start: 0x2000_0000, len: 0x4000 };
        assert!(r.contains(0x2000_0000));
        assert!(r.contains(0x2000_3fff));
        assert!(!r.contains(0x2000_4000));
        assert!(!r.contains(0x1fff_ffff));
    }
}
