//! Kernel entry/exit code generation.
//!
//! The mitigation-bearing paths — syscall entry/exit, fault entry/exit,
//! the kernel's indirect-call sites — are *real instruction sequences*
//! generated per [`MitigationConfig`], so their costs (and their
//! microarchitectural side effects: `mov %cr3`, `verw`, `wrmsr`,
//! retpoline RSB capture, `lfence`) emerge from execution rather than
//! being charged abstractly. Syscall *semantics* run in host hooks.

use uarch::isa::{msr_index, Cond, Inst, Reg, Width};
use uarch::program::Program;
use uarch::ProgramBuilder;

use crate::abi::hook;
use crate::layout;
use crate::mitigation::{MitigationConfig, SpectreV2Mode};

/// Addresses of the generated kernel text entry points.
#[derive(Debug, Clone, Copy)]
pub struct EntryAddrs {
    /// Syscall entry point (installed as the machine's `syscall_entry`).
    pub syscall_entry: u64,
    /// Fault entry point (installed for page faults and friends).
    pub fault_entry: u64,
    /// The kernel function indirect calls dispatch to.
    pub kernel_fn: u64,
    /// A `Halt` pad the kernel jumps to when every process has exited.
    pub halt_pad: u64,
    /// Harmless `Ret` used as the RSB-stuffing target.
    pub rsb_harmless: u64,
}

/// Generates the kernel text for `config` and returns it with its entry
/// addresses.
pub fn build_kernel_text(config: &MitigationConfig) -> (Program, EntryAddrs) {
    let mut b = ProgramBuilder::new();

    let syscall_entry = b.new_label();
    let fault_entry = b.new_label();
    let kernel_fn = b.new_label();
    let halt_pad = b.new_label();
    let generic_thunk = b.new_label();

    // ---- Syscall path -------------------------------------------------
    b.bind(syscall_entry);
    b.push(Inst::Swapgs);
    if config.spectre_v1_lfence {
        // Spectre V1 swapgs hardening: no speculation past the gs swap.
        b.push(Inst::Lfence);
    }
    if config.pti {
        // Switch to the kernel view of the address space. The CR3 value is
        // per-process, so a host hook materializes it into R12 first.
        b.push(Inst::Host(hook::LOAD_KCR3));
        b.push(Inst::MovCr3(Reg::R12));
    }
    if config.entry_writes_spec_ctrl() {
        // Legacy IBRS: restrict indirect speculation for the kernel's
        // lifetime in this entry. This MSR write is the cost that made
        // IBRS "unacceptably high" (§5.3).
        b.mov_imm(Reg::R12, uarch::isa::spec_ctrl::IBRS);
        b.push(Inst::Wrmsr { msr: msr_index::IA32_SPEC_CTRL, src: Reg::R12 });
    }
    b.push(Inst::Host(hook::SYSCALL_DISPATCH));

    // Kernel body: R10 indirect calls to the function in R9, through the
    // configured Spectre V2 dispatch mechanism. This is where retpoline /
    // eIBRS overheads accumulate on syscall-heavy workloads.
    let body_top = b.here();
    let body_done = b.new_label();
    b.cmp_imm(Reg::R10, 0);
    b.jcc(Cond::Eq, body_done);
    b.sub_imm(Reg::R10, 1);
    match config.spectre_v2 {
        SpectreV2Mode::RetpolineGeneric => {
            b.call(generic_thunk);
        }
        SpectreV2Mode::RetpolineAmd => {
            b.push(Inst::Lfence);
            b.push(Inst::CallInd(Reg::R9));
        }
        SpectreV2Mode::Off | SpectreV2Mode::Eibrs | SpectreV2Mode::LegacyIbrs => {
            b.push(Inst::CallInd(Reg::R9));
        }
    }
    b.jmp(body_top);
    b.bind(body_done);

    if config.entry_writes_spec_ctrl() {
        b.mov_imm(Reg::R12, 0);
        b.push(Inst::Wrmsr { msr: msr_index::IA32_SPEC_CTRL, src: Reg::R12 });
    }
    if config.mds_clear {
        // MDS: clear microarchitectural buffers before returning to user.
        b.push(Inst::Verw);
    }
    b.push(Inst::Host(hook::SYSCALL_EXIT));
    if config.pti {
        // SYSCALL_EXIT left the user CR3 in R12; switch and then restore
        // the user's R12 so the syscall only architecturally clobbers R11.
        b.push(Inst::MovCr3(Reg::R12));
        b.push(Inst::Host(hook::R12_RESTORE));
    }
    b.push(Inst::Swapgs);
    b.push(Inst::Sysret);

    // ---- Fault path ----------------------------------------------------
    b.bind(fault_entry);
    b.push(Inst::Swapgs);
    if config.spectre_v1_lfence {
        b.push(Inst::Lfence);
    }
    if config.pti {
        b.push(Inst::Host(hook::LOAD_KCR3));
        b.push(Inst::MovCr3(Reg::R12));
    }
    if config.entry_writes_spec_ctrl() {
        b.mov_imm(Reg::R12, uarch::isa::spec_ctrl::IBRS);
        b.push(Inst::Wrmsr { msr: msr_index::IA32_SPEC_CTRL, src: Reg::R12 });
    }
    b.push(Inst::Host(hook::FAULT_DISPATCH));
    if config.entry_writes_spec_ctrl() {
        b.mov_imm(Reg::R12, 0);
        b.push(Inst::Wrmsr { msr: msr_index::IA32_SPEC_CTRL, src: Reg::R12 });
    }
    if config.mds_clear {
        b.push(Inst::Verw);
    }
    b.push(Inst::Host(hook::FAULT_EXIT));
    if config.pti {
        // Faults must be fully transparent to user code: switch back to
        // the user CR3 and restore the user's R12.
        b.push(Inst::MovCr3(Reg::R12));
        b.push(Inst::Host(hook::R12_RESTORE));
    }
    b.push(Inst::Swapgs);
    b.push(Inst::Iret);

    // ---- Generic retpoline thunk (Figure 4), target in R9 --------------
    b.bind(generic_thunk);
    let capture = b.new_label();
    let set_target = b.new_label();
    b.call(set_target);
    b.bind(capture);
    b.push(Inst::Pause);
    b.push(Inst::Lfence);
    b.jmp(capture);
    b.bind(set_target);
    b.push(Inst::Store { src: Reg::R9, base: Reg::SP, offset: 0, width: Width::B8 });
    b.push(Inst::Ret);

    // ---- The kernel function indirect calls land in --------------------
    // A couple of loads from kernel data (R8): these populate the fill
    // buffers with kernel data, which is exactly what MDS samples if the
    // exit path does not `verw`.
    b.bind(kernel_fn);
    b.push(Inst::Load { dst: Reg::R11, base: Reg::R8, offset: 0, width: Width::B8 });
    b.push(Inst::Load { dst: Reg::R12, base: Reg::R8, offset: 64, width: Width::B8 });
    b.push(Inst::Add(Reg::R11, Reg::R12));
    b.push(Inst::Ret);

    // ---- Halt pad -------------------------------------------------------
    b.bind(halt_pad);
    b.push(Inst::Halt);

    // ---- RSB-stuffing target --------------------------------------------
    // Loaded separately at a fixed address so its address is stable
    // regardless of configuration-dependent stub sizes.

    let prog = b.link(layout::KERNEL_TEXT_BASE);
    let mut addrs = EntryAddrs {
        syscall_entry: prog.addr(syscall_entry),
        fault_entry: prog.addr(fault_entry),
        kernel_fn: prog.addr(kernel_fn),
        halt_pad: prog.addr(halt_pad),
        rsb_harmless: layout::RSB_HARMLESS,
    };

    // Targeted V1 policy: run the branch-attackability analysis over the
    // text we just generated and serialize only flagged branches. The
    // kernel's one conditional branch (the dispatch-loop bound) has a
    // pure-ALU shadow, so in practice nothing is inserted and the text
    // stays byte-identical to the blanket-lfence build — pinned by the
    // `targeted_text_matches_default` test. The swapgs lfence above is
    // *kept* under `targeted`: the swapgs variant is not a
    // conditional-branch gadget, so the analysis cannot vouch for it.
    if config.spectre_v1 == spec_taint::V1Policy::Targeted {
        let report = spec_taint::analyze(prog.base(), prog.insts());
        let flagged = report.flagged_indices();
        if !flagged.is_empty() {
            let hardened = spec_taint::harden_lfence(prog.base(), prog.insts(), &flagged);
            addrs.syscall_entry = hardened.remap(addrs.syscall_entry);
            addrs.fault_entry = hardened.remap(addrs.fault_entry);
            addrs.kernel_fn = hardened.remap(addrs.kernel_fn);
            addrs.halt_pad = hardened.remap(addrs.halt_pad);
            let mut nb = ProgramBuilder::new();
            nb.extend(hardened.insts.iter().cloned());
            return (nb.link(layout::KERNEL_TEXT_BASE), addrs);
        }
    }
    (prog, addrs)
}

/// Builds the tiny harmless-return pad used as the RSB stuffing target.
pub fn build_rsb_pad() -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Inst::Ret);
    b.link(layout::RSB_HARMLESS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::BootParams;
    use cpu_models::CpuId;
    use uarch::isa::Inst;

    fn config_for(id: CpuId, cmdline: &str) -> MitigationConfig {
        MitigationConfig::resolve(&id.model(), &BootParams::parse(cmdline))
    }

    fn count_inst(prog: &Program, pred: impl Fn(&Inst) -> bool) -> usize {
        prog.insts().iter().filter(|i| pred(i)).count()
    }

    #[test]
    fn pti_emits_cr3_swaps_in_both_paths() {
        let (prog, _) = build_kernel_text(&config_for(CpuId::Broadwell, ""));
        // Entry+exit for syscall and fault paths: 4 swaps.
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::MovCr3(_))), 4);
        let (prog, _) = build_kernel_text(&config_for(CpuId::CascadeLake, ""));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::MovCr3(_))), 0);
        let (prog, _) = build_kernel_text(&config_for(CpuId::Broadwell, "nopti"));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::MovCr3(_))), 0);
    }

    #[test]
    fn mds_emits_verw_on_exit_paths() {
        let (prog, _) = build_kernel_text(&config_for(CpuId::SkylakeClient, ""));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::Verw)), 2);
        let (prog, _) = build_kernel_text(&config_for(CpuId::SkylakeClient, "mds=off"));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::Verw)), 0);
        let (prog, _) = build_kernel_text(&config_for(CpuId::Zen3, ""));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::Verw)), 0);
    }

    #[test]
    fn retpoline_kind_matches_config() {
        // Generic retpoline: the body calls the thunk, no bare CallInd.
        let (prog, _) = build_kernel_text(&config_for(CpuId::Broadwell, ""));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::CallInd(_))), 0);
        // AMD: lfence + CallInd.
        let (prog, _) = build_kernel_text(&config_for(CpuId::Zen, ""));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::CallInd(_))), 1);
        assert!(count_inst(&prog, |i| matches!(i, Inst::Lfence)) >= 2);
        // eIBRS: plain indirect call.
        let (prog, _) = build_kernel_text(&config_for(CpuId::IceLakeServer, ""));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::CallInd(_))), 1);
    }

    #[test]
    fn legacy_ibrs_writes_spec_ctrl_four_times() {
        let (prog, _) = build_kernel_text(&config_for(CpuId::SkylakeClient, "spectre_v2=ibrs"));
        // On + off for both syscall and fault paths.
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::Wrmsr { .. })), 4);
        let (prog, _) = build_kernel_text(&config_for(CpuId::SkylakeClient, ""));
        assert_eq!(count_inst(&prog, |i| matches!(i, Inst::Wrmsr { .. })), 0);
    }

    #[test]
    fn v1_lfence_guards_swapgs() {
        let (prog, _) = build_kernel_text(&config_for(CpuId::Broadwell, ""));
        let insts = prog.insts();
        // Both entry points start with swapgs; the next instruction is the
        // V1 lfence.
        let mut found = 0;
        for w in insts.windows(2) {
            if matches!(w[0], Inst::Swapgs) && matches!(w[1], Inst::Lfence) {
                found += 1;
            }
        }
        assert_eq!(found, 2);
        let (prog, _) = build_kernel_text(&config_for(CpuId::Broadwell, "nospectre_v1"));
        let mut found = 0;
        for w in prog.insts().windows(2) {
            if matches!(w[0], Inst::Swapgs) && matches!(w[1], Inst::Lfence) {
                found += 1;
            }
        }
        assert_eq!(found, 0);
    }

    #[test]
    fn targeted_text_matches_default() {
        // The kernel's only conditional branch is the dispatch-loop
        // bound, whose shadow is pure ALU — the analysis must leave it
        // alone, so `spectre_v1=targeted` generates byte-identical text
        // (and identical entry addresses) to the default blanket build.
        for id in CpuId::ALL {
            let (default_prog, default_addrs) = build_kernel_text(&config_for(id, ""));
            let (targeted_prog, targeted_addrs) =
                build_kernel_text(&config_for(id, "spectre_v1=targeted"));
            assert_eq!(default_prog.insts(), targeted_prog.insts(), "{id}");
            assert_eq!(default_addrs.syscall_entry, targeted_addrs.syscall_entry, "{id}");
            assert_eq!(default_addrs.fault_entry, targeted_addrs.fault_entry, "{id}");
        }
        // And the analysis did actually look at the text: the dispatch
        // loop's bound check is scanned and classified benign.
        let (prog, _) = build_kernel_text(&config_for(CpuId::Broadwell, ""));
        let report = spec_taint::analyze(prog.base(), prog.insts());
        assert!(report.scanned() >= 1);
        assert_eq!(report.flagged(), 0, "{:?}", report.findings);
    }

    #[test]
    fn entry_addrs_are_within_text() {
        let (prog, addrs) = build_kernel_text(&config_for(CpuId::Broadwell, ""));
        for a in [addrs.syscall_entry, addrs.fault_entry, addrs.kernel_fn, addrs.halt_pad] {
            assert!(a >= prog.base() && a < prog.end(), "{a:#x}");
        }
        assert_eq!(addrs.rsb_harmless, layout::RSB_HARMLESS);
    }
}
