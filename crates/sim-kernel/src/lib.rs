//! # sim-kernel — a simulated operating system with Linux's mitigation logic
//!
//! This crate boots a small OS on the `uarch` simulator. Its purpose is
//! to make transient-execution mitigation costs *emerge* from execution
//! the way they do on Linux:
//!
//! * the syscall/fault entry and exit paths are generated **instruction
//!   sequences** containing exactly the mitigation work the configuration
//!   calls for — `mov %cr3` (PTI), `verw` (MDS), `lfence` after `swapgs`
//!   (Spectre V1), `wrmsr IA32_SPEC_CTRL` (legacy IBRS);
//! * kernel indirect calls go through the configured Spectre V2 dispatch
//!   (generic retpoline, AMD lfence retpoline, plain call under eIBRS);
//! * context switches perform eager FPU save/restore, IBPB, RSB stuffing,
//!   and per-process SSBD at the CPU model's calibrated costs.
//!
//! Mitigations are selected from the CPU model and boot parameters by
//! [`mitigation::MitigationConfig::resolve`], which reproduces the
//! paper's Table 1. Boot parameters accept the same strings Linux does
//! (`mitigations=off`, `nopti`, `mds=off`, …) so the attribution harness
//! can successively disable mitigations exactly as the paper did (§4.1).
//!
//! # Example
//!
//! ```
//! use sim_kernel::{Kernel, BootParams, userlib};
//! use uarch::isa::Reg;
//!
//! let mut k = Kernel::boot(cpu_models::broadwell(), &BootParams::default());
//! k.spawn(|b| {
//!     userlib::emit_getpid(b);
//!     userlib::emit_exit(b);
//! });
//! k.start();
//! k.run(100_000).unwrap();
//! assert_eq!(k.state.stats.syscalls, 2); // getpid + exit
//! ```

pub mod abi;
pub mod boot;
pub mod bpf;
pub mod entry;
pub mod kernel;
pub mod layout;
pub mod mitigation;
pub mod process;
pub mod resources;
pub mod userlib;

pub use boot::{BootParams, SsbdMode};
pub use spec_taint::V1Policy;
pub use kernel::{Kernel, KernelState, KernelStats};
pub use mitigation::{Mitigation, MitigationConfig, SpectreV2Mode};
pub use process::{Pid, ProcState};
