//! Address-space layout of the simulated system.
//!
//! Code addresses are a single flat space (the simulator does not
//! translate instruction fetches), so each process gets a disjoint code
//! window. Data addresses are per-address-space; the regions below are
//! conventions shared by the kernel and the program builders.

/// Base of kernel text (entry stubs, thunks, kernel functions).
pub const KERNEL_TEXT_BASE: u64 = 0x8000_0000;

/// Virtual base of kernel data (supervisor pages in every full table).
pub const KERNEL_DATA_VADDR: u64 = 0x7000_0000;
/// Number of kernel data pages.
pub const KERNEL_DATA_PAGES: u64 = 64;

/// Virtual base of each process's eagerly mapped data arena.
pub const USER_DATA_VADDR: u64 = 0x1000_0000;
/// Pages in the eager data arena.
pub const USER_DATA_PAGES: u64 = 256;

/// Virtual base of the lazy mmap area.
pub const MMAP_BASE: u64 = 0x2000_0000;
/// Size of the mmap area in bytes.
pub const MMAP_SPAN: u64 = 0x1000_0000;

/// Top of each process's stack (grows down); 16 pages are mapped.
pub const STACK_TOP: u64 = 0x3800_0000;
/// Mapped stack pages.
pub const STACK_PAGES: u64 = 16;

/// Base of the first process's code window.
pub const USER_CODE_BASE: u64 = 0x0100_0000;
/// Size of each process's code window.
pub const USER_CODE_SPAN: u64 = 0x0010_0000;

/// Code address of the harmless RSB-stuffing target.
pub const RSB_HARMLESS: u64 = KERNEL_TEXT_BASE + 0xff00;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // Data regions are ordered and disjoint.
        const { assert!(USER_DATA_VADDR + USER_DATA_PAGES * 4096 <= MMAP_BASE) };
        const { assert!(MMAP_BASE + MMAP_SPAN <= STACK_TOP - STACK_PAGES * 4096) };
        const { assert!(STACK_TOP <= KERNEL_DATA_VADDR) };
        // Code windows stay below kernel text for many processes.
        const { assert!(USER_CODE_BASE + 100 * USER_CODE_SPAN < KERNEL_TEXT_BASE) };
    }
}
