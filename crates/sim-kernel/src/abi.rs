//! Syscall ABI of the simulated kernel.
//!
//! Calling convention: syscall number in `R0`, arguments in `R1`–`R5`,
//! return value in `R0`. `R11` and `R12` are clobbered by `syscall`
//! (mirroring x86-64's `%rcx`/`%r11` clobber); everything else is
//! preserved. The kernel also uses `R8`–`R10` internally but restores
//! them.

/// Syscall numbers.
pub mod nr {
    /// `exit()` — terminate the calling process.
    pub const EXIT: u64 = 0;
    /// `getpid() -> pid`.
    pub const GETPID: u64 = 1;
    /// `write(fd, buf, len) -> written`.
    pub const WRITE: u64 = 2;
    /// `read(fd, buf, len) -> read` (blocks on an empty pipe).
    pub const READ: u64 = 3;
    /// `mmap(len) -> addr` (lazy; pages fault in on first touch).
    pub const MMAP: u64 = 4;
    /// `munmap(addr, len)`.
    pub const MUNMAP: u64 = 5;
    /// `pipe() -> rfd | (wfd << 32)`.
    pub const PIPE: u64 = 6;
    /// `sched_yield()`.
    pub const YIELD: u64 = 7;
    /// `fork() -> child_pid` (0 in the child).
    pub const FORK: u64 = 8;
    /// `seccomp()` — enter seccomp mode (pre-5.16 kernels then apply SSBD).
    pub const SECCOMP: u64 = 9;
    /// `prctl_ssbd()` — request SSBD for this process.
    pub const PRCTL_SSBD: u64 = 10;
    /// `creat() -> fd` for a fresh in-memory file.
    pub const CREAT: u64 = 11;
    /// `close(fd)`.
    pub const CLOSE: u64 = 12;
    /// `select(nfds) -> ready` (scans the first `nfds` descriptors).
    pub const SELECT: u64 = 13;
    /// `send(fd, buf, len)` — alias of `write` for the LEBench send/recv
    /// pair.
    pub const SEND: u64 = 14;
    /// `recv(fd, buf, len)` — alias of `read`.
    pub const RECV: u64 = 15;
    /// `thread_create(entry_pc) -> tid` — new context sharing the address
    /// space.
    pub const THREAD_CREATE: u64 = 16;
    /// `mmap_populate(len) -> addr` — eagerly mapped mmap.
    pub const MMAP_POPULATE: u64 = 17;
    /// `lseek(fd, offset) -> offset`.
    pub const LSEEK: u64 = 18;
    /// `ftruncate(fd, size)`.
    pub const FTRUNCATE: u64 = 19;
    /// `fsync(fd)` — on a paravirtualized disk this triggers a VM exit.
    pub const FSYNC: u64 = 20;
    /// `bpf_prog_run(prog_id) -> r0` — run a loaded BPF program in
    /// kernel context (through the kernel's Spectre V2 dispatch).
    pub const BPF_PROG_RUN: u64 = 21;
}

/// Host-hook ids used by the kernel's entry stubs.
pub mod hook {
    /// Syscall dispatch: save context, run the handler.
    pub const SYSCALL_DISPATCH: u16 = 10;
    /// Syscall exit: restore context of the (possibly new) current process.
    pub const SYSCALL_EXIT: u16 = 11;
    /// Fault dispatch.
    pub const FAULT_DISPATCH: u16 = 12;
    /// Fault exit: restore context.
    pub const FAULT_EXIT: u16 = 13;
    /// Load the current process's kernel CR3 into `R12` (PTI entry),
    /// saving the user's R12 in kernel scratch first.
    pub const LOAD_KCR3: u16 = 14;
    /// Restore the user's R12 after an exit path's CR3 switch.
    pub const R12_RESTORE: u16 = 15;
    /// Resume after a paravirtual `vmcall` (the hypervisor's trampoline
    /// jumps back to the interrupted kernel path).
    pub const VMCALL_RESUME: u16 = 16;
}

/// Error return values (negative errno style, as `u64`).
pub mod err {
    /// Bad file descriptor.
    pub const EBADF: u64 = u64::MAX; // -1
    /// Invalid argument.
    pub const EINVAL: u64 = u64::MAX - 21; // -22
    /// Out of memory / address space.
    pub const ENOMEM: u64 = u64::MAX - 11; // -12
}
