//! Mitigation selection: the logic behind the paper's Table 1.
//!
//! Given a CPU model and boot parameters, [`MitigationConfig::resolve`]
//! decides which mitigations the kernel deploys, following Linux's rules:
//! a mitigation is used iff the CPU is vulnerable, the hardware lacks a
//! fix, and the administrator did not disable it.

use spec_taint::V1Policy;
use uarch::model::{CpuModel, Vendor};

use crate::boot::{BootParams, SsbdMode};

/// Which Spectre V2 kernel mitigation is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectreV2Mode {
    /// No mitigation (`nospectre_v2` or master off).
    Off,
    /// Generic retpolines (pre-eIBRS Intel).
    RetpolineGeneric,
    /// AMD lfence retpolines.
    ///
    /// This was the Linux default on AMD at the time of the paper's
    /// measurements; Linux 5.15.28 later switched AMD to generic
    /// retpolines after the lfence/jmp race was published (§3.2, reference \[34\]).
    RetpolineAmd,
    /// Enhanced IBRS: set `IA32_SPEC_CTRL.IBRS` once at boot.
    Eibrs,
    /// Legacy IBRS: MSR write on every kernel entry/exit (never a
    /// production default; selectable for the Table 5/10 experiments).
    LegacyIbrs,
}

/// The resolved mitigation set for one boot of the simulated kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MitigationConfig {
    /// Kernel page-table isolation (Meltdown).
    pub pti: bool,
    /// PTE inversion (L1TF, user/kernel level) — free, but tracked.
    pub pte_inversion: bool,
    /// Flush L1D on VM entry (L1TF, hypervisor level).
    pub l1d_flush_vmentry: bool,
    /// Eager FPU save/restore on context switch (LazyFP).
    pub eager_fpu: bool,
    /// `lfence` after `swapgs` and hardened bounds checks (Spectre V1).
    /// True for every policy except [`V1Policy::Off`]; the policy below
    /// refines *how* bounds checks are hardened.
    pub spectre_v1_lfence: bool,
    /// The resolved Spectre-V1 hardening policy. [`V1Policy::Lfence`]
    /// (the default) is byte-identical to the paper's blanket
    /// behaviour; [`V1Policy::Targeted`] consults the `spec-taint`
    /// branch analysis and hardens only flagged branches.
    pub spectre_v1: V1Policy,
    /// Spectre V2 kernel strategy.
    pub spectre_v2: SpectreV2Mode,
    /// RSB stuffing on context switch (Spectre V2 / SpectreRSB).
    pub rsb_stuffing: bool,
    /// IBPB on context switch between processes (Spectre V2, user/user).
    pub ibpb_on_switch: bool,
    /// Conditional IBPB (the Linux default): the barrier is only issued
    /// when the outgoing or incoming task asked for protection
    /// (seccomp/prctl), not on every switch — issuing it unconditionally
    /// would dominate context-switch cost (Table 6's thousands of cycles).
    pub ibpb_conditional: bool,
    /// `verw` buffer clearing on kernel exit (MDS).
    pub mds_clear: bool,
    /// SSBD application policy.
    pub ssbd: SsbdMode,
    /// SMT left enabled (Table 1: "Disable SMT" is `!` — available but
    /// not the default, because the performance cost was judged too high).
    pub smt_enabled: bool,
}

impl MitigationConfig {
    /// Resolves the mitigation set for `model` under `params`, mirroring
    /// Linux's selection logic.
    pub fn resolve(model: &CpuModel, params: &BootParams) -> MitigationConfig {
        let off = params.mitigations_off;
        let v2 = if off || params.nospectre_v2 {
            SpectreV2Mode::Off
        } else if params.force_ibrs && model.spec.ibrs_supported {
            SpectreV2Mode::LegacyIbrs
        } else if model.spec.eibrs {
            SpectreV2Mode::Eibrs
        } else if model.vendor == Vendor::Amd {
            SpectreV2Mode::RetpolineAmd
        } else {
            SpectreV2Mode::RetpolineGeneric
        };
        MitigationConfig {
            pti: model.vuln.meltdown && !off && !params.nopti,
            pte_inversion: model.vuln.l1tf && !off && !params.l1tf_off,
            l1d_flush_vmentry: model.vuln.l1tf && !off && !params.l1tf_off,
            // Eager FPU is used on every CPU (Table 1: ✓ everywhere) —
            // it is usually *faster* than trapping (§3.1); only the
            // explicit `eagerfpu=off` toggle reverts it.
            eager_fpu: !params.lazy_fpu,
            spectre_v1_lfence: !off && !params.nospectre_v1 && params.spectre_v1 != V1Policy::Off,
            spectre_v1: if off || params.nospectre_v1 {
                V1Policy::Off
            } else {
                params.spectre_v1
            },
            spectre_v2: v2,
            rsb_stuffing: !off && !params.nospectre_v2,
            ibpb_on_switch: model.spec.ibpb_supported && !off && !params.nospectre_v2,
            ibpb_conditional: true,
            mds_clear: model.vuln.mds && model.spec.md_clear && !off && !params.mds_off,
            ssbd: if off { SsbdMode::ForceOff } else { params.ssbd },
            smt_enabled: model.spec.smt,
        }
    }

    /// Whether the entry/exit stubs contain any `mov %cr3` (the PTI cost).
    pub fn entry_swaps_cr3(&self) -> bool {
        self.pti
    }

    /// Whether legacy IBRS writes `IA32_SPEC_CTRL` on every entry/exit.
    pub fn entry_writes_spec_ctrl(&self) -> bool {
        self.spectre_v2 == SpectreV2Mode::LegacyIbrs
    }

    /// Human-readable summary (the kernel's
    /// `/sys/devices/system/cpu/vulnerabilities` analogue).
    pub fn summary(&self) -> String {
        let v2 = match self.spectre_v2 {
            SpectreV2Mode::Off => "vulnerable",
            SpectreV2Mode::RetpolineGeneric => "retpoline (generic)",
            SpectreV2Mode::RetpolineAmd => "retpoline (amd/lfence)",
            SpectreV2Mode::Eibrs => "enhanced IBRS",
            SpectreV2Mode::LegacyIbrs => "IBRS (legacy)",
        };
        format!(
            "pti={} l1tf={} eager_fpu={} v1_lfence={} v2={} rsb={} ibpb={} mds_clear={} ssbd={:?} smt={}",
            self.pti,
            self.pte_inversion,
            self.eager_fpu,
            self.spectre_v1_lfence,
            v2,
            self.rsb_stuffing,
            self.ibpb_on_switch,
            self.mds_clear,
            self.ssbd,
            self.smt_enabled,
        )
    }
}

/// A nameable individual mitigation, for attribution (Figures 2/3 stack
/// these) and for Table 1 rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mitigation {
    /// Kernel page-table isolation.
    PageTableIsolation,
    /// PTE inversion (L1TF).
    PteInversion,
    /// L1D flush on VM entry (L1TF).
    FlushL1Cache,
    /// Eager FPU save/restore (LazyFP).
    AlwaysSaveFpu,
    /// JS-level index masking (Spectre V1).
    IndexMasking,
    /// `lfence` after `swapgs` (Spectre V1).
    LfenceAfterSwapgs,
    /// Generic retpolines.
    GenericRetpoline,
    /// AMD lfence retpolines.
    AmdRetpoline,
    /// Legacy IBRS.
    Ibrs,
    /// Enhanced IBRS.
    EnhancedIbrs,
    /// RSB stuffing on context switch.
    RsbStuffing,
    /// IBPB on context switch.
    Ibpb,
    /// Speculative Store Bypass Disable.
    Ssbd,
    /// `verw` buffer clearing (MDS).
    FlushCpuBuffers,
    /// Disable SMT (MDS, non-default).
    DisableSmt,
}

impl Mitigation {
    /// All mitigations in the paper's Table 1 row order.
    pub const TABLE1_ORDER: [Mitigation; 15] = [
        Mitigation::PageTableIsolation,
        Mitigation::PteInversion,
        Mitigation::FlushL1Cache,
        Mitigation::AlwaysSaveFpu,
        Mitigation::IndexMasking,
        Mitigation::LfenceAfterSwapgs,
        Mitigation::GenericRetpoline,
        Mitigation::AmdRetpoline,
        Mitigation::Ibrs,
        Mitigation::EnhancedIbrs,
        Mitigation::RsbStuffing,
        Mitigation::Ibpb,
        Mitigation::Ssbd,
        Mitigation::FlushCpuBuffers,
        Mitigation::DisableSmt,
    ];

    /// The attack each mitigation addresses (Table 1 left column).
    pub fn attack(self) -> &'static str {
        match self {
            Mitigation::PageTableIsolation => "Meltdown",
            Mitigation::PteInversion | Mitigation::FlushL1Cache => "L1TF",
            Mitigation::AlwaysSaveFpu => "LazyFP",
            Mitigation::IndexMasking | Mitigation::LfenceAfterSwapgs => "Spectre V1",
            Mitigation::GenericRetpoline
            | Mitigation::AmdRetpoline
            | Mitigation::Ibrs
            | Mitigation::EnhancedIbrs
            | Mitigation::RsbStuffing
            | Mitigation::Ibpb => "Spectre V2",
            Mitigation::Ssbd => "Spec. Store Bypass",
            Mitigation::FlushCpuBuffers | Mitigation::DisableSmt => "MDS",
        }
    }

    /// Display name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Mitigation::PageTableIsolation => "Page Table Isolation",
            Mitigation::PteInversion => "PTE Inversion",
            Mitigation::FlushL1Cache => "Flush L1 Cache",
            Mitigation::AlwaysSaveFpu => "Always save FPU",
            Mitigation::IndexMasking => "Index Masking",
            Mitigation::LfenceAfterSwapgs => "lfence after swapgs",
            Mitigation::GenericRetpoline => "Generic Retpoline",
            Mitigation::AmdRetpoline => "AMD Retpoline",
            Mitigation::Ibrs => "IBRS",
            Mitigation::EnhancedIbrs => "Enhanced IBRS",
            Mitigation::RsbStuffing => "RSB Stuffing",
            Mitigation::Ibpb => "IBPB",
            Mitigation::Ssbd => "SSBD",
            Mitigation::FlushCpuBuffers => "Flush CPU Buffers",
            Mitigation::DisableSmt => "Disable SMT",
        }
    }

    /// Table 1 cell for this mitigation on `model`:
    /// `Some(true)` = ✓ (used by default), `Some(false)` = `!` (needed but
    /// not default), `None` = empty (not required).
    pub fn table1_cell(self, model: &CpuModel) -> Option<bool> {
        let cfg = MitigationConfig::resolve(model, &BootParams::default());
        match self {
            Mitigation::PageTableIsolation => cfg.pti.then_some(true),
            Mitigation::PteInversion => cfg.pte_inversion.then_some(true),
            Mitigation::FlushL1Cache => cfg.l1d_flush_vmentry.then_some(true),
            Mitigation::AlwaysSaveFpu => Some(true),
            Mitigation::IndexMasking => Some(true),
            Mitigation::LfenceAfterSwapgs => Some(true),
            Mitigation::GenericRetpoline => {
                (cfg.spectre_v2 == SpectreV2Mode::RetpolineGeneric).then_some(true)
            }
            Mitigation::AmdRetpoline => {
                (cfg.spectre_v2 == SpectreV2Mode::RetpolineAmd).then_some(true)
            }
            Mitigation::Ibrs => None,
            Mitigation::EnhancedIbrs => {
                (cfg.spectre_v2 == SpectreV2Mode::Eibrs).then_some(true)
            }
            Mitigation::RsbStuffing => Some(true),
            Mitigation::Ibpb => Some(true),
            // SSBD is needed on every part but never default-on: `!`.
            Mitigation::Ssbd => Some(false),
            Mitigation::FlushCpuBuffers => cfg.mds_clear.then_some(true),
            // SMT disabling: needed where MDS is unfixed, never default.
            Mitigation::DisableSmt => {
                (model.vuln.mds && model.spec.smt).then_some(false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::CpuId;

    fn cfg(id: CpuId) -> MitigationConfig {
        MitigationConfig::resolve(&id.model(), &BootParams::default())
    }

    #[test]
    fn pti_only_on_meltdown_parts() {
        assert!(cfg(CpuId::Broadwell).pti);
        assert!(cfg(CpuId::SkylakeClient).pti);
        for id in [
            CpuId::CascadeLake,
            CpuId::IceLakeClient,
            CpuId::IceLakeServer,
            CpuId::Zen,
            CpuId::Zen2,
            CpuId::Zen3,
        ] {
            assert!(!cfg(id).pti, "{id}");
        }
    }

    #[test]
    fn spectre_v2_strategy_per_table1() {
        assert_eq!(cfg(CpuId::Broadwell).spectre_v2, SpectreV2Mode::RetpolineGeneric);
        assert_eq!(cfg(CpuId::SkylakeClient).spectre_v2, SpectreV2Mode::RetpolineGeneric);
        assert_eq!(cfg(CpuId::CascadeLake).spectre_v2, SpectreV2Mode::Eibrs);
        assert_eq!(cfg(CpuId::IceLakeClient).spectre_v2, SpectreV2Mode::Eibrs);
        assert_eq!(cfg(CpuId::IceLakeServer).spectre_v2, SpectreV2Mode::Eibrs);
        assert_eq!(cfg(CpuId::Zen).spectre_v2, SpectreV2Mode::RetpolineAmd);
        assert_eq!(cfg(CpuId::Zen2).spectre_v2, SpectreV2Mode::RetpolineAmd);
        assert_eq!(cfg(CpuId::Zen3).spectre_v2, SpectreV2Mode::RetpolineAmd);
    }

    #[test]
    fn mds_clear_on_first_three_intel() {
        assert!(cfg(CpuId::Broadwell).mds_clear);
        assert!(cfg(CpuId::SkylakeClient).mds_clear);
        assert!(cfg(CpuId::CascadeLake).mds_clear);
        assert!(!cfg(CpuId::IceLakeClient).mds_clear);
        assert!(!cfg(CpuId::Zen).mds_clear);
    }

    #[test]
    fn master_switch_disables_everything() {
        let p = BootParams::parse("mitigations=off");
        let c = MitigationConfig::resolve(&CpuId::Broadwell.model(), &p);
        assert!(!c.pti && !c.mds_clear && !c.rsb_stuffing && !c.ibpb_on_switch);
        assert_eq!(c.spectre_v2, SpectreV2Mode::Off);
        assert_eq!(c.ssbd, SsbdMode::ForceOff);
        // Eager FPU stays: it is a performance win, not a cost.
        assert!(c.eager_fpu);
    }

    #[test]
    fn individual_toggles_are_independent() {
        let p = BootParams::parse("nopti");
        let c = MitigationConfig::resolve(&CpuId::Broadwell.model(), &p);
        assert!(!c.pti);
        assert!(c.mds_clear, "mds stays on when only PTI is disabled");
        assert_eq!(c.spectre_v2, SpectreV2Mode::RetpolineGeneric);
    }

    #[test]
    fn force_ibrs_respects_hardware_support() {
        let p = BootParams::parse("spectre_v2=ibrs");
        let c = MitigationConfig::resolve(&CpuId::SkylakeClient.model(), &p);
        assert_eq!(c.spectre_v2, SpectreV2Mode::LegacyIbrs);
        assert!(c.entry_writes_spec_ctrl());
        // Zen has no IBRS: falls back to its normal choice.
        let c = MitigationConfig::resolve(&CpuId::Zen.model(), &p);
        assert_eq!(c.spectre_v2, SpectreV2Mode::RetpolineAmd);
    }

    #[test]
    fn table1_matrix_matches_paper() {
        use Mitigation as M;
        // Expected cells: (mitigation, [8 cells in CpuId::ALL order]),
        // Some(true)=✓, Some(false)=!, None=empty.
        let y = Some(true);
        let bang = Some(false);
        let n: Option<bool> = None;
        let expected: &[(M, [Option<bool>; 8])] = &[
            (M::PageTableIsolation, [y, y, n, n, n, n, n, n]),
            (M::PteInversion, [y, y, n, n, n, n, n, n]),
            (M::FlushL1Cache, [y, y, n, n, n, n, n, n]),
            (M::AlwaysSaveFpu, [y; 8]),
            (M::IndexMasking, [y; 8]),
            (M::LfenceAfterSwapgs, [y; 8]),
            (M::GenericRetpoline, [y, y, n, n, n, n, n, n]),
            (M::AmdRetpoline, [n, n, n, n, n, y, y, y]),
            (M::Ibrs, [n; 8]),
            (M::EnhancedIbrs, [n, n, y, y, y, n, n, n]),
            (M::RsbStuffing, [y; 8]),
            (M::Ibpb, [y; 8]),
            (M::Ssbd, [bang; 8]),
            (M::FlushCpuBuffers, [y, y, y, n, n, n, n, n]),
            (M::DisableSmt, [bang, bang, bang, n, n, n, n, n]),
        ];
        for (mit, cells) in expected {
            for (id, want) in CpuId::ALL.iter().zip(cells) {
                let got = mit.table1_cell(&id.model());
                assert_eq!(got, *want, "{} on {id}", mit.name());
            }
        }
    }
}
