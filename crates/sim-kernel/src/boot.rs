//! Boot-time command line parameters.
//!
//! The paper's attribution methodology (§4.1) toggles mitigations through
//! Linux kernel boot parameters; this module accepts the same tokens so
//! the harness drives the simulated kernel exactly the way the authors
//! drove Linux: `mitigations=off`, `nopti`, `nospectre_v1`,
//! `nospectre_v2`, `mds=off`, `l1tf=off`, `spec_store_bypass_disable=…`,
//! plus a couple of toggles Linux exposes elsewhere (`eagerfpu=off`),
//! and the beyond-the-paper `spectre_v1=off|lfence|mask|targeted` policy
//! selector (see [`spec_taint::V1Policy`]).

use spec_taint::V1Policy;

/// How Speculative Store Bypass Disable is applied (Linux
/// `spec_store_bypass_disable=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsbdMode {
    /// Enabled for processes that request it via `prctl` (and, before
    /// Linux 5.16, implicitly for seccomp processes). This is the kernel
    /// default the paper measured (§4.3).
    SeccompAndPrctl,
    /// Enabled only via explicit `prctl` — the Linux 5.16 change the
    /// paper's §7 discusses (seccomp processes no longer opted in).
    PrctlOnly,
    /// Force-enabled for every process (`=on`).
    ForceOn,
    /// Fully disabled (`=off`).
    ForceOff,
}

/// Parsed boot parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootParams {
    /// `mitigations=off`: master switch disabling everything.
    pub mitigations_off: bool,
    /// `nopti`: disable kernel page-table isolation.
    pub nopti: bool,
    /// `nospectre_v1`: drop lfence/swapgs hardening.
    pub nospectre_v1: bool,
    /// `spectre_v1=<policy>`: how bounds checks are hardened when the
    /// V1 mitigation is on. `lfence` (the default) reproduces the
    /// paper's blanket behaviour byte for byte; `targeted` consults the
    /// `spec-taint` branch-attackability analysis and hardens only
    /// flagged branches. `spectre_v1=off` is equivalent to
    /// `nospectre_v1`.
    pub spectre_v1: V1Policy,
    /// `nospectre_v2`: drop retpolines/eIBRS/IBPB/RSB stuffing.
    pub nospectre_v2: bool,
    /// `mds=off`: drop verw buffer clearing.
    pub mds_off: bool,
    /// `l1tf=off`: drop PTE inversion and VM-entry L1D flushes.
    pub l1tf_off: bool,
    /// SSBD application mode.
    pub ssbd: SsbdMode,
    /// `eagerfpu=off`: revert to lazy FPU switching (not a real Linux
    /// option any more; exposed for attribution of the LazyFP mitigation).
    pub lazy_fpu: bool,
    /// `spectre_v2=ibrs`: force legacy IBRS instead of retpolines (used by
    /// the Table 5 / Table 10 experiments).
    pub force_ibrs: bool,
}

impl Default for BootParams {
    fn default() -> BootParams {
        BootParams {
            mitigations_off: false,
            nopti: false,
            nospectre_v1: false,
            spectre_v1: V1Policy::Lfence,
            nospectre_v2: false,
            mds_off: false,
            l1tf_off: false,
            ssbd: SsbdMode::SeccompAndPrctl,
            lazy_fpu: false,
            force_ibrs: false,
        }
    }
}

impl BootParams {
    /// The kernel defaults (everything mitigated, as Table 1 reports).
    pub fn secure_default() -> BootParams {
        BootParams::default()
    }

    /// Parses a boot command line. Unknown tokens are ignored, as Linux
    /// does.
    pub fn parse(cmdline: &str) -> BootParams {
        let mut p = BootParams::default();
        for tok in cmdline.split_whitespace() {
            match tok {
                "mitigations=off" => p.mitigations_off = true,
                "mitigations=auto" => p.mitigations_off = false,
                "nopti" | "pti=off" => p.nopti = true,
                "pti=on" => p.nopti = false,
                "nospectre_v1" => p.nospectre_v1 = true,
                _ if tok.starts_with("spectre_v1=") => {
                    // Unknown policy values are ignored like any other
                    // malformed token, but V1Policy::parse's error (and
                    // the CLI help) name the accepted set from
                    // V1Policy::ALL so they can never drift.
                    if let Ok(policy) = V1Policy::parse(&tok["spectre_v1=".len()..]) {
                        p.spectre_v1 = policy;
                    }
                }
                "nospectre_v2" | "spectre_v2=off" => p.nospectre_v2 = true,
                "spectre_v2=ibrs" => p.force_ibrs = true,
                "mds=off" => p.mds_off = true,
                "l1tf=off" => p.l1tf_off = true,
                "spec_store_bypass_disable=off" => p.ssbd = SsbdMode::ForceOff,
                "spec_store_bypass_disable=on" => p.ssbd = SsbdMode::ForceOn,
                "spec_store_bypass_disable=prctl" => p.ssbd = SsbdMode::PrctlOnly,
                "spec_store_bypass_disable=seccomp" => p.ssbd = SsbdMode::SeccompAndPrctl,
                "eagerfpu=off" => p.lazy_fpu = true,
                _ => {}
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_mitigated() {
        let p = BootParams::default();
        assert!(!p.mitigations_off && !p.nopti && !p.nospectre_v2 && !p.mds_off);
        assert_eq!(p.ssbd, SsbdMode::SeccompAndPrctl);
    }

    #[test]
    fn parse_individual_toggles() {
        let p = BootParams::parse("nopti mds=off nospectre_v2");
        assert!(p.nopti && p.mds_off && p.nospectre_v2);
        assert!(!p.nospectre_v1);
    }

    #[test]
    fn parse_master_switch() {
        assert!(BootParams::parse("quiet mitigations=off splash").mitigations_off);
    }

    #[test]
    fn parse_ssbd_modes() {
        assert_eq!(BootParams::parse("spec_store_bypass_disable=on").ssbd, SsbdMode::ForceOn);
        assert_eq!(BootParams::parse("spec_store_bypass_disable=off").ssbd, SsbdMode::ForceOff);
        assert_eq!(BootParams::parse("spec_store_bypass_disable=prctl").ssbd, SsbdMode::PrctlOnly);
    }

    #[test]
    fn unknown_tokens_ignored() {
        let p = BootParams::parse("console=ttyS0 root=/dev/sda1 nopti");
        assert!(p.nopti);
    }

    #[test]
    fn parse_spectre_v1_policies() {
        // Every name in V1Policy::ALL round-trips through the cmdline.
        for policy in V1Policy::ALL {
            let p = BootParams::parse(&format!("spectre_v1={policy}"));
            assert_eq!(p.spectre_v1, policy);
        }
        // The default is the paper's blanket lfence behaviour.
        assert_eq!(BootParams::default().spectre_v1, V1Policy::Lfence);
        // Malformed values are ignored like any unknown token.
        assert_eq!(BootParams::parse("spectre_v1=bogus").spectre_v1, V1Policy::Lfence);
    }
}
