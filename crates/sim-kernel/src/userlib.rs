//! Helpers for building user programs against the kernel ABI.
//!
//! These emit the common syscall sequences so workload generators don't
//! repeat themselves. Registers: args go in `R1`–`R5`, the number in
//! `R0`; the return value comes back in `R0`; `R11` is clobbered.

use uarch::isa::{Cond, Inst, Reg};
use uarch::program::Label;
use uarch::ProgramBuilder;

use crate::abi::nr;
use crate::layout;

/// Emits `R0 = syscall(number)` with arguments already in place.
pub fn emit_syscall(b: &mut ProgramBuilder, number: u64) {
    b.mov_imm(Reg::R0, number);
    b.push(Inst::Syscall);
}

/// Emits `exit()`.
pub fn emit_exit(b: &mut ProgramBuilder) {
    emit_syscall(b, nr::EXIT);
}

/// Emits `getpid()`.
pub fn emit_getpid(b: &mut ProgramBuilder) {
    emit_syscall(b, nr::GETPID);
}

/// Emits `R0 = read(fd, buf, len)`.
pub fn emit_read(b: &mut ProgramBuilder, fd: u64, buf: u64, len: u64) {
    b.mov_imm(Reg::R1, fd);
    b.mov_imm(Reg::R2, buf);
    b.mov_imm(Reg::R3, len);
    emit_syscall(b, nr::READ);
}

/// Emits `R0 = write(fd, buf, len)`.
pub fn emit_write(b: &mut ProgramBuilder, fd: u64, buf: u64, len: u64) {
    b.mov_imm(Reg::R1, fd);
    b.mov_imm(Reg::R2, buf);
    b.mov_imm(Reg::R3, len);
    emit_syscall(b, nr::WRITE);
}

/// Starts a counted loop of `count` iterations using `counter` as the
/// induction register. Returns the label to pass to [`end_loop`].
pub fn begin_loop(b: &mut ProgramBuilder, counter: Reg, count: u64) -> Label {
    b.mov_imm(counter, count);
    b.here()
}

/// Ends a counted loop begun with [`begin_loop`].
pub fn end_loop(b: &mut ProgramBuilder, counter: Reg, top: Label) {
    b.sub_imm(counter, 1);
    b.cmp_imm(counter, 0);
    b.jcc(Cond::Ne, top);
}

/// The address of the process's eager data arena.
pub fn data_base() -> u64 {
    layout::USER_DATA_VADDR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_emission_links() {
        let mut b = ProgramBuilder::new();
        let top = begin_loop(&mut b, Reg::R5, 10);
        b.push(Inst::Nop);
        end_loop(&mut b, Reg::R5, top);
        emit_exit(&mut b);
        let p = b.link(0x1000);
        assert!(p.len() >= 6);
    }
}
