//! Kernel-side resources: pipes and in-memory files.

use std::collections::VecDeque;

/// Default pipe capacity in bytes (Linux default is 64 KiB).
pub const PIPE_CAPACITY: usize = 65536;

/// A unidirectional byte pipe.
#[derive(Debug, Default)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Pid of a reader blocked on this pipe, if any.
    pub blocked_reader: Option<u64>,
}

impl Pipe {
    /// Creates an empty pipe.
    pub fn new() -> Pipe {
        Pipe::default()
    }

    /// Writes up to capacity; returns bytes accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        let room = PIPE_CAPACITY.saturating_sub(self.buf.len());
        let n = room.min(data.len());
        self.buf.extend(&data[..n]);
        n
    }

    /// Reads up to `len` bytes.
    pub fn read(&mut self, len: usize) -> Vec<u8> {
        let n = len.min(self.buf.len());
        self.buf.drain(..n).collect()
    }

    /// Bytes currently buffered.
    pub fn available(&self) -> usize {
        self.buf.len()
    }
}

/// An in-memory file.
#[derive(Debug, Default)]
pub struct File {
    /// File contents.
    pub data: Vec<u8>,
}

impl File {
    /// Creates an empty file.
    pub fn new() -> File {
        File::default()
    }

    /// Reads up to `len` bytes from `offset`.
    pub fn read_at(&self, offset: u64, len: usize) -> &[u8] {
        let start = (offset as usize).min(self.data.len());
        let end = (start + len).min(self.data.len());
        &self.data[start..end]
    }

    /// Writes `data` at `offset`, growing the file as needed.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        let end = offset as usize + data.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[offset as usize..end].copy_from_slice(data);
    }

    /// Current size in bytes.
    pub fn size(&self) -> u64 {
        self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_fifo_order() {
        let mut p = Pipe::new();
        assert_eq!(p.write(b"hello"), 5);
        assert_eq!(p.write(b" world"), 6);
        assert_eq!(p.read(5), b"hello");
        assert_eq!(p.read(100), b" world");
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn pipe_respects_capacity() {
        let mut p = Pipe::new();
        let big = vec![0u8; PIPE_CAPACITY + 100];
        assert_eq!(p.write(&big), PIPE_CAPACITY);
        assert_eq!(p.write(b"x"), 0);
        p.read(10);
        assert_eq!(p.write(b"0123456789ab"), 10);
    }

    #[test]
    fn file_sparse_write_grows() {
        let mut f = File::new();
        f.write_at(10, b"abc");
        assert_eq!(f.size(), 13);
        assert_eq!(f.read_at(0, 5), &[0, 0, 0, 0, 0]);
        assert_eq!(f.read_at(10, 3), b"abc");
        assert_eq!(f.read_at(12, 100), b"c");
        assert_eq!(f.read_at(100, 10), b"");
    }
}
