//! An eBPF-like in-kernel VM: the security boundary the paper lists as
//! unstudied ("we don't study the eBPF/kernel boundary", §1).
//!
//! Untrusted user code loads small programs that the kernel verifies and
//! JIT-compiles into kernel text; they then run *in kernel mode* with
//! access to kernel-resident maps. This is precisely the configuration
//! that made Spectre V1 an in-kernel problem: a malicious program can
//! train its own bounds check and speculatively read kernel memory past
//! a map. Linux's verifier answers with index masking on map accesses —
//! the same cmov strategy the JS engines use — which this module
//! reproduces, gated on the kernel's Spectre V1 toggle so the attribution
//! harness can price it.
//!
//! The model is deliberately classic eBPF: at most
//! [`MAX_INSNS`] instructions, forward branches only (no loops), eight
//! registers, array maps.

use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::ProgramBuilder;

/// Maximum instructions per program (classic eBPF's 4096, scaled down).
pub const MAX_INSNS: usize = 512;

/// Number of BPF registers (`r0`–`r7`, mapped to machine `R0`–`R7`).
pub const N_REGS: u8 = 8;

/// A BPF map id.
pub type MapId = u32;

/// A loaded-program id.
pub type ProgId = u32;

/// One instruction of the BPF-like bytecode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BpfInsn {
    /// `dst = imm`.
    MovImm(u8, i64),
    /// `dst = src`.
    Mov(u8, u8),
    /// `dst += src`.
    Add(u8, u8),
    /// `dst -= src`.
    Sub(u8, u8),
    /// `dst *= src`.
    Mul(u8, u8),
    /// `dst &= imm`.
    AndImm(u8, i64),
    /// `dst <<= k`.
    Shl(u8, u8),
    /// `dst >>= k` (logical).
    Shr(u8, u8),
    /// `dst = map[src]` with the map's bounds check; 0 when out of
    /// bounds. The verifier inserts index masking here when the kernel's
    /// Spectre V1 mitigation is on.
    MapLookup {
        /// Destination register.
        dst: u8,
        /// Which map.
        map: MapId,
        /// Index register.
        idx: u8,
    },
    /// `map[idx] = src` (bounds-checked store).
    MapUpdate {
        /// Which map.
        map: MapId,
        /// Index register.
        idx: u8,
        /// Value register.
        src: u8,
    },
    /// Skip `off` following instructions if `reg == imm` (forward only).
    JeqImm(u8, i64, u16),
    /// Unconditional forward skip.
    Ja(u16),
    /// Return `r0`.
    Exit,
}

/// Why the verifier rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierError {
    /// Too many instructions.
    TooLong {
        /// Actual instruction count.
        len: usize,
    },
    /// A register operand is out of range.
    BadRegister {
        /// Offending instruction index.
        at: usize,
    },
    /// A branch does not land inside the program (or goes backward).
    BadBranch {
        /// Offending instruction index.
        at: usize,
    },
    /// Unknown map id.
    BadMap {
        /// Offending instruction index.
        at: usize,
    },
    /// Control can fall off the end (no terminating `Exit`).
    NoExit,
}

impl std::fmt::Display for VerifierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifierError::TooLong { len } => {
                write!(f, "program too long: {len} instructions (max {MAX_INSNS})")
            }
            VerifierError::BadRegister { at } => {
                write!(f, "bad register operand at instruction {at}")
            }
            VerifierError::BadBranch { at } => {
                write!(f, "branch out of range at instruction {at}")
            }
            VerifierError::BadMap { at } => write!(f, "unknown map at instruction {at}"),
            VerifierError::NoExit => write!(f, "control falls off the end (no exit)"),
        }
    }
}

impl std::error::Error for VerifierError {}

/// The verifier: structural checks, then a report of what the JIT must
/// harden.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedProg {
    insns: Vec<BpfInsn>,
    /// Map accesses found (the sites the JIT masks).
    pub map_accesses: usize,
}

/// Verifies a program against the set of existing maps.
pub fn verify(insns: &[BpfInsn], n_maps: u32) -> Result<VerifiedProg, VerifierError> {
    if insns.len() > MAX_INSNS {
        return Err(VerifierError::TooLong { len: insns.len() });
    }
    let mut map_accesses = 0;
    let reg_ok = |r: u8| r < N_REGS;
    for (at, insn) in insns.iter().enumerate() {
        match *insn {
            BpfInsn::MovImm(d, _) | BpfInsn::AndImm(d, _) | BpfInsn::Shl(d, _)
            | BpfInsn::Shr(d, _) => {
                if !reg_ok(d) {
                    return Err(VerifierError::BadRegister { at });
                }
            }
            BpfInsn::Mov(d, s) | BpfInsn::Add(d, s) | BpfInsn::Sub(d, s)
            | BpfInsn::Mul(d, s) => {
                if !reg_ok(d) || !reg_ok(s) {
                    return Err(VerifierError::BadRegister { at });
                }
            }
            BpfInsn::MapLookup { dst, map, idx } => {
                if !reg_ok(dst) || !reg_ok(idx) {
                    return Err(VerifierError::BadRegister { at });
                }
                if map >= n_maps {
                    return Err(VerifierError::BadMap { at });
                }
                map_accesses += 1;
            }
            BpfInsn::MapUpdate { map, idx, src } => {
                if !reg_ok(idx) || !reg_ok(src) {
                    return Err(VerifierError::BadRegister { at });
                }
                if map >= n_maps {
                    return Err(VerifierError::BadMap { at });
                }
                map_accesses += 1;
            }
            BpfInsn::JeqImm(r, _, off) => {
                if !reg_ok(r) {
                    return Err(VerifierError::BadRegister { at });
                }
                if at + 1 + off as usize > insns.len() {
                    return Err(VerifierError::BadBranch { at });
                }
            }
            BpfInsn::Ja(off) => {
                if at + 1 + off as usize > insns.len() {
                    return Err(VerifierError::BadBranch { at });
                }
            }
            BpfInsn::Exit => {}
        }
    }
    // Forward-only branches + no loops means reachability is simple:
    // require the program to end in Exit (any earlier Exit is fine too).
    if !matches!(insns.last(), Some(BpfInsn::Exit)) {
        return Err(VerifierError::NoExit);
    }
    Ok(VerifiedProg { insns: insns.to_vec(), map_accesses })
}

/// A map's kernel-side location: virtual address of its `[len, slots…]`
/// block in kernel data.
#[derive(Debug, Clone, Copy)]
pub struct MapLoc {
    /// Kernel virtual address of the length header.
    pub vaddr: u64,
    /// Slot count.
    pub len: u64,
}

/// JIT-compiles a verified program into kernel code. The emitted function
/// is entered by the kernel's dispatch (through the configured Spectre V2
/// thunk) and ends with `Ret`; `r0`…`r7` map to machine `R0`…`R7`.
///
/// `mask_indices` is the verifier's Spectre V1 hardening (Linux's
/// `CONFIG_BPF` index masking); the attribution harness toggles it with
/// the kernel's `nospectre_v1`.
pub fn jit(prog: &VerifiedProg, maps: &[MapLoc], mask_indices: bool) -> ProgramBuilder {
    let mut b = ProgramBuilder::new();
    let r = |i: u8| Reg::from_index(i as usize);
    // Prologue: zero the BPF register file. Programs must not observe
    // whatever kernel state the dispatch left in the machine registers
    // (the same reason real kernels control BPF's initial registers),
    // and it gives the reference interpreter's all-zero starting state.
    for i in 0..N_REGS {
        b.mov_imm(r(i), 0);
    }
    // Pre-create machine labels for every bytecode position (branch
    // targets are instruction indices).
    let labels: Vec<_> = (0..=prog.insns.len()).map(|_| b.new_label()).collect();
    for (at, insn) in prog.insns.iter().enumerate() {
        b.bind(labels[at]);
        match *insn {
            BpfInsn::MovImm(d, v) => {
                b.mov_imm(r(d), v as u64);
            }
            BpfInsn::Mov(d, s) => {
                b.push(Inst::Mov(r(d), r(s)));
            }
            BpfInsn::Add(d, s) => {
                b.push(Inst::Add(r(d), r(s)));
            }
            BpfInsn::Sub(d, s) => {
                b.push(Inst::Sub(r(d), r(s)));
            }
            BpfInsn::Mul(d, s) => {
                b.push(Inst::Mul(r(d), r(s)));
            }
            BpfInsn::AndImm(d, v) => {
                b.push(Inst::AndImm(r(d), v as u64));
            }
            BpfInsn::Shl(d, k) => {
                b.push(Inst::Shl(r(d), k));
            }
            BpfInsn::Shr(d, k) => {
                b.push(Inst::Shr(r(d), k));
            }
            BpfInsn::MapLookup { dst, map, idx } => {
                let loc = maps[map as usize];
                let oob = b.new_label();
                let done = b.new_label();
                // The JIT uses R12/R13 as scratch (kernel-owned regs).
                b.mov_imm(Reg::R12, loc.vaddr);
                b.push(Inst::Load { dst: Reg::R13, base: Reg::R12, offset: 0, width: Width::B8 });
                b.push(Inst::Cmp(r(idx), Reg::R13));
                b.jcc(Cond::AboveEq, oob);
                b.push(Inst::Mov(Reg::R13, r(idx)));
                if mask_indices {
                    // The verifier's Spectre V1 hardening.
                    b.push(Inst::CmovImm(Cond::AboveEq, Reg::R13, 0));
                }
                b.push(Inst::Shl(Reg::R13, 3));
                b.push(Inst::Add(Reg::R13, Reg::R12));
                b.push(Inst::Load { dst: r(dst), base: Reg::R13, offset: 8, width: Width::B8 });
                b.jmp(done);
                b.bind(oob);
                b.mov_imm(r(dst), 0);
                b.bind(done);
            }
            BpfInsn::MapUpdate { map, idx, src } => {
                let loc = maps[map as usize];
                let skip = b.new_label();
                b.mov_imm(Reg::R12, loc.vaddr);
                b.push(Inst::Load { dst: Reg::R13, base: Reg::R12, offset: 0, width: Width::B8 });
                b.push(Inst::Cmp(r(idx), Reg::R13));
                b.jcc(Cond::AboveEq, skip);
                b.push(Inst::Mov(Reg::R13, r(idx)));
                if mask_indices {
                    b.push(Inst::CmovImm(Cond::AboveEq, Reg::R13, 0));
                }
                b.push(Inst::Shl(Reg::R13, 3));
                b.push(Inst::Add(Reg::R13, Reg::R12));
                b.push(Inst::Store { src: r(src), base: Reg::R13, offset: 8, width: Width::B8 });
                b.bind(skip);
            }
            BpfInsn::JeqImm(reg, v, off) => {
                b.cmp_imm(r(reg), v as u64);
                b.jcc(Cond::Eq, labels[at + 1 + off as usize]);
            }
            BpfInsn::Ja(off) => {
                b.jmp(labels[at + 1 + off as usize]);
            }
            BpfInsn::Exit => {
                b.push(Inst::Ret);
            }
        }
    }
    b.bind(labels[prog.insns.len()]);
    b
}

/// Decides whether the JIT applies index masking under `policy`.
///
/// `off` never masks; `lfence`/`mask` mask every program (Linux's
/// blanket `bpf_jit_harden` behaviour, and exactly what the kernel did
/// before the targeted policy existed). `targeted` JITs the program
/// *unmasked* at its real load address, runs the branch-attackability
/// analysis over the result, and masks only when a branch is flagged:
/// a single map lookup is benign (the loaded value never feeds another
/// load's address), while a lookup chain — lookup output used as the
/// next lookup's index — is the eBPF Spectre V1 gadget.
pub fn mask_decision(
    policy: spec_taint::V1Policy,
    prog: &VerifiedProg,
    maps: &[MapLoc],
    base: u64,
) -> bool {
    use spec_taint::V1Policy;
    match policy {
        V1Policy::Off => false,
        V1Policy::Lfence | V1Policy::Mask => true,
        V1Policy::Targeted => {
            let probe = jit(prog, maps, false).link(base);
            spec_taint::analyze(probe.base(), probe.insts()).any_attackable()
        }
    }
}

/// Reference interpreter for verified programs: defines the bytecode's
/// architectural semantics in plain Rust, for differential testing
/// against the JIT (maps are plain slices here).
///
/// Returns `r0`. Out-of-bounds lookups read 0; out-of-bounds updates are
/// dropped — identical to the JIT's committed behaviour.
pub fn interpret(prog: &VerifiedProg, maps: &mut [Vec<u64>]) -> u64 {
    let mut regs = [0u64; N_REGS as usize];
    let mut pc = 0usize;
    while pc < prog.insns.len() {
        let insn = prog.insns[pc];
        pc += 1;
        match insn {
            BpfInsn::MovImm(d, v) => regs[d as usize] = v as u64,
            BpfInsn::Mov(d, s) => regs[d as usize] = regs[s as usize],
            BpfInsn::Add(d, s) => {
                regs[d as usize] = regs[d as usize].wrapping_add(regs[s as usize])
            }
            BpfInsn::Sub(d, s) => {
                regs[d as usize] = regs[d as usize].wrapping_sub(regs[s as usize])
            }
            BpfInsn::Mul(d, s) => {
                regs[d as usize] = regs[d as usize].wrapping_mul(regs[s as usize])
            }
            BpfInsn::AndImm(d, v) => regs[d as usize] &= v as u64,
            BpfInsn::Shl(d, k) => regs[d as usize] <<= (k & 63) as u32,
            BpfInsn::Shr(d, k) => regs[d as usize] >>= (k & 63) as u32,
            BpfInsn::MapLookup { dst, map, idx } => {
                let m = &maps[map as usize];
                let i = regs[idx as usize];
                regs[dst as usize] =
                    if (i as usize) < m.len() { m[i as usize] } else { 0 };
            }
            BpfInsn::MapUpdate { map, idx, src } => {
                let i = regs[idx as usize];
                let v = regs[src as usize];
                let m = &mut maps[map as usize];
                if (i as usize) < m.len() {
                    m[i as usize] = v;
                }
            }
            BpfInsn::JeqImm(r, v, off) => {
                if regs[r as usize] == v as u64 {
                    pc += off as usize;
                }
            }
            BpfInsn::Ja(off) => pc += off as usize,
            BpfInsn::Exit => return regs[0],
        }
    }
    regs[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_prog() -> Vec<BpfInsn> {
        vec![
            BpfInsn::MovImm(1, 3),
            BpfInsn::MapLookup { dst: 0, map: 0, idx: 1 },
            BpfInsn::Exit,
        ]
    }

    #[test]
    fn verifier_accepts_simple_program() {
        let v = verify(&ok_prog(), 1).unwrap();
        assert_eq!(v.map_accesses, 1);
    }

    #[test]
    fn verifier_rejects_bad_register() {
        let p = vec![BpfInsn::MovImm(9, 0), BpfInsn::Exit];
        assert_eq!(verify(&p, 1), Err(VerifierError::BadRegister { at: 0 }));
    }

    #[test]
    fn verifier_rejects_unknown_map() {
        let p = vec![
            BpfInsn::MovImm(1, 0),
            BpfInsn::MapLookup { dst: 0, map: 5, idx: 1 },
            BpfInsn::Exit,
        ];
        assert_eq!(verify(&p, 1), Err(VerifierError::BadMap { at: 1 }));
    }

    #[test]
    fn verifier_rejects_out_of_range_branch() {
        let p = vec![BpfInsn::Ja(7), BpfInsn::Exit];
        assert_eq!(verify(&p, 0), Err(VerifierError::BadBranch { at: 0 }));
    }

    #[test]
    fn verifier_requires_exit() {
        let p = vec![BpfInsn::MovImm(0, 1)];
        assert_eq!(verify(&p, 0), Err(VerifierError::NoExit));
    }

    #[test]
    fn verifier_rejects_oversized_program() {
        let mut p = vec![BpfInsn::MovImm(0, 0); MAX_INSNS + 1];
        *p.last_mut().unwrap() = BpfInsn::Exit;
        assert!(matches!(verify(&p, 0), Err(VerifierError::TooLong { .. })));
    }

    #[test]
    fn targeted_masks_only_gadget_shaped_programs() {
        use spec_taint::V1Policy;
        let maps = [MapLoc { vaddr: 0x7000_0000, len: 8 }];
        // A single lookup: out-of-bounds data is read transiently but
        // never feeds another load — benign, no mask under targeted.
        let single = verify(&ok_prog(), 1).unwrap();
        assert!(!mask_decision(V1Policy::Targeted, &single, &maps, 0x9000_0000));
        // A lookup chain: the first lookup's value indexes the second —
        // the eBPF Spectre V1 gadget, masked under targeted.
        let chain = verify(
            &[
                BpfInsn::MovImm(1, 3),
                BpfInsn::MapLookup { dst: 2, map: 0, idx: 1 },
                BpfInsn::MapLookup { dst: 0, map: 0, idx: 2 },
                BpfInsn::Exit,
            ],
            1,
        )
        .unwrap();
        assert!(mask_decision(V1Policy::Targeted, &chain, &maps, 0x9000_0000));
        // Blanket policies mask everything; off masks nothing.
        assert!(mask_decision(V1Policy::Lfence, &single, &maps, 0x9000_0000));
        assert!(mask_decision(V1Policy::Mask, &single, &maps, 0x9000_0000));
        assert!(!mask_decision(V1Policy::Off, &chain, &maps, 0x9000_0000));
    }

    #[test]
    fn jit_emits_mask_only_when_hardened() {
        let v = verify(&ok_prog(), 1).unwrap();
        let maps = [MapLoc { vaddr: 0x7000_0000, len: 8 }];
        let masked = jit(&v, &maps, true).link(0x9000_0000);
        let bare = jit(&v, &maps, false).link(0x9001_0000);
        let count = |p: &uarch::Program| {
            p.insts().iter().filter(|i| matches!(i, Inst::CmovImm(..))).count()
        };
        assert_eq!(count(&masked), 1);
        assert_eq!(count(&bare), 0);
    }
}
