//! Integration tests for the in-kernel BPF subsystem: load/verify/run
//! semantics through the real syscall path.

use cpu_models::{cascade_lake, zen3};
use sim_kernel::abi::nr;
use sim_kernel::bpf::{BpfInsn, VerifierError};
use sim_kernel::userlib::{self, begin_loop, emit_exit, emit_syscall, end_loop};
use sim_kernel::{BootParams, Kernel};
use uarch::isa::{Inst, Reg, Width};

const BUDGET: u64 = 100_000_000;

/// Runs one program via the syscall path and returns its r0.
fn run_prog(k: &mut Kernel, prog: u32) -> u64 {
    let data = userlib::data_base();
    let pid = k.spawn(move |b| {
        b.mov_imm(Reg::R1, prog as u64);
        emit_syscall(b, nr::BPF_PROG_RUN);
        b.mov_imm(Reg::R4, data);
        b.push(Inst::Store { src: Reg::R0, base: Reg::R4, offset: 0, width: Width::B8 });
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).expect("program run completes");
    let out = k.peek_user_data(pid, 0, 8);
    u64::from_le_bytes(out.try_into().unwrap())
}

#[test]
fn arithmetic_program_computes() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    let prog = k
        .bpf_load(&[
            BpfInsn::MovImm(0, 6),
            BpfInsn::MovImm(1, 7),
            BpfInsn::Mul(0, 1),
            BpfInsn::Exit,
        ])
        .unwrap();
    assert_eq!(run_prog(&mut k, prog), 42);
}

#[test]
fn map_lookup_and_update_round_trip() {
    let mut k = Kernel::boot(zen3(), &BootParams::default());
    let map = k.bpf_create_map(4);
    k.bpf_map_write(map, 2, 123);
    // r0 = map[2]; map[3] = r0 + 1.
    let prog = k
        .bpf_load(&[
            BpfInsn::MovImm(1, 2),
            BpfInsn::MapLookup { dst: 0, map, idx: 1 },
            BpfInsn::Mov(2, 0),
            BpfInsn::MovImm(3, 1),
            BpfInsn::Add(2, 3),
            BpfInsn::MovImm(1, 3),
            BpfInsn::MapUpdate { map, idx: 1, src: 2 },
            BpfInsn::Exit,
        ])
        .unwrap();
    assert_eq!(run_prog(&mut k, prog), 123);
    assert_eq!(k.bpf_map_read(map, 3), 124);
}

#[test]
fn out_of_bounds_lookup_returns_zero_architecturally() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    let map = k.bpf_create_map(4);
    k.bpf_map_write(map, 0, 99);
    let prog = k
        .bpf_load(&[
            BpfInsn::MovImm(1, 100),
            BpfInsn::MapLookup { dst: 0, map, idx: 1 },
            BpfInsn::Exit,
        ])
        .unwrap();
    assert_eq!(run_prog(&mut k, prog), 0);
}

#[test]
fn out_of_bounds_update_is_dropped() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    let map = k.bpf_create_map(2);
    let prog = k
        .bpf_load(&[
            BpfInsn::MovImm(1, 7),
            BpfInsn::MovImm(2, 0xbad),
            BpfInsn::MapUpdate { map, idx: 1, src: 2 },
            BpfInsn::MovImm(0, 1),
            BpfInsn::Exit,
        ])
        .unwrap();
    assert_eq!(run_prog(&mut k, prog), 1);
    assert_eq!(k.bpf_map_read(map, 0), 0);
    assert_eq!(k.bpf_map_read(map, 1), 0);
}

#[test]
fn forward_branches_work() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    // if r1 == 5: r0 = 1 else r0 = 2.
    let prog = k
        .bpf_load(&[
            BpfInsn::MovImm(1, 5),
            BpfInsn::JeqImm(1, 5, 2), // skip the else arm
            BpfInsn::MovImm(0, 2),
            BpfInsn::Ja(1),
            BpfInsn::MovImm(0, 1),
            BpfInsn::Exit,
        ])
        .unwrap();
    assert_eq!(run_prog(&mut k, prog), 1);
}

#[test]
fn bad_programs_are_rejected_before_loading() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    assert!(matches!(
        k.bpf_load(&[BpfInsn::MovImm(0, 1)]),
        Err(VerifierError::NoExit)
    ));
    assert!(matches!(
        k.bpf_load(&[
            BpfInsn::MapLookup { dst: 0, map: 9, idx: 1 },
            BpfInsn::Exit
        ]),
        Err(VerifierError::BadMap { .. })
    ));
}

#[test]
fn bad_prog_id_returns_ebadf() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    let data = userlib::data_base();
    let pid = k.spawn(move |b| {
        b.mov_imm(Reg::R1, 42); // never loaded
        emit_syscall(b, nr::BPF_PROG_RUN);
        b.mov_imm(Reg::R4, data);
        b.push(Inst::Store { src: Reg::R0, base: Reg::R4, offset: 0, width: Width::B8 });
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).unwrap();
    let out = k.peek_user_data(pid, 0, 8);
    assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), u64::MAX); // EBADF
}

#[test]
fn bpf_runs_cost_more_on_mitigated_old_hardware() {
    // The boundary behaves like the syscall boundary: PTI/verw dominate
    // per-invocation cost on vulnerable parts.
    let cost = |cmdline: &str| {
        let mut k = Kernel::boot(cpu_models::broadwell(), &BootParams::parse(cmdline));
        let map = k.bpf_create_map(8);
        let prog = k
            .bpf_load(&[
                BpfInsn::MovImm(1, 1),
                BpfInsn::MapLookup { dst: 0, map, idx: 1 },
                BpfInsn::Exit,
            ])
            .unwrap();
        k.spawn(move |b| {
            let top = begin_loop(b, Reg::R7, 100);
            b.mov_imm(Reg::R1, prog as u64);
            emit_syscall(b, nr::BPF_PROG_RUN);
            end_loop(b, Reg::R7, top);
            emit_exit(b);
        });
        k.start();
        let c0 = k.cycles();
        k.run(BUDGET).unwrap();
        k.cycles() - c0
    };
    let mitigated = cost("");
    let bare = cost("mitigations=off");
    assert!(
        mitigated as f64 / bare as f64 > 1.3,
        "{mitigated} vs {bare}"
    );
}
