//! Integration tests: the simulated kernel's process, memory, and
//! scheduling behaviour, and the coupling between kernel mitigations and
//! attack outcomes (PTI vs Meltdown, verw vs MDS, seccomp vs SSBD).

use cpu_models::{broadwell, cascade_lake, zen2};
use sim_kernel::abi::nr;
use sim_kernel::userlib::{self, begin_loop, emit_exit, emit_syscall, end_loop};
use sim_kernel::{BootParams, Kernel, ProcState, SpectreV2Mode};
use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::machine::Stop;
use uarch::isa::spec_ctrl;

const BUDGET: u64 = 50_000_000;

#[test]
fn getpid_returns_pid_and_preserves_registers() {
    let mut k = Kernel::boot(broadwell(), &BootParams::default());
    let pid = k.spawn(|b| {
        b.mov_imm(Reg::R5, 0x1234_5678); // must survive the syscall
        b.mov_imm(Reg::R12, 0x9abc_def0); // must survive despite PTI
        userlib::emit_getpid(b);
        // Stash results in the data arena for inspection.
        b.mov_imm(Reg::R4, userlib::data_base());
        b.push(Inst::Store { src: Reg::R0, base: Reg::R4, offset: 0, width: Width::B8 });
        b.push(Inst::Store { src: Reg::R5, base: Reg::R4, offset: 8, width: Width::B8 });
        b.push(Inst::Store { src: Reg::R12, base: Reg::R4, offset: 16, width: Width::B8 });
        emit_exit(b);
    });
    k.start();
    assert_eq!(k.run(BUDGET).unwrap(), Stop::Halted);
    let out = k.peek_user_data(pid, 0, 24);
    assert_eq!(u64::from_le_bytes(out[0..8].try_into().unwrap()), pid);
    assert_eq!(u64::from_le_bytes(out[8..16].try_into().unwrap()), 0x1234_5678);
    assert_eq!(u64::from_le_bytes(out[16..24].try_into().unwrap()), 0x9abc_def0);
}

#[test]
fn file_write_then_read_round_trips() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    let data = userlib::data_base();
    let pid = k.spawn(move |b| {
        // creat() -> fd in R0
        emit_syscall(b, nr::CREAT);
        b.push(Inst::Mov(Reg::R7, Reg::R0)); // fd
        // write(fd, data, 64)
        b.push(Inst::Mov(Reg::R1, Reg::R7));
        b.mov_imm(Reg::R2, data);
        b.mov_imm(Reg::R3, 64);
        emit_syscall(b, nr::WRITE);
        // lseek(fd, 0)
        b.push(Inst::Mov(Reg::R1, Reg::R7));
        b.mov_imm(Reg::R2, 0);
        emit_syscall(b, nr::LSEEK);
        // read(fd, data+4096, 64)
        b.push(Inst::Mov(Reg::R1, Reg::R7));
        b.mov_imm(Reg::R2, data + 4096);
        b.mov_imm(Reg::R3, 64);
        emit_syscall(b, nr::READ);
        emit_exit(b);
    });
    k.poke_user_data(pid, 0, b"The quick brown fox jumps over the lazy dog. 0123456789ABCDEF..");
    k.start();
    k.run(BUDGET).unwrap();
    let round = k.peek_user_data(pid, 4096, 64);
    assert_eq!(&round[..44], b"The quick brown fox jumps over the lazy dog.");
}

#[test]
fn pipe_ping_pong_context_switches() {
    // Parent forks; parent writes to pipe A and blocks reading pipe B;
    // child reads A and writes B; N rounds. This is LEBench's context
    // switch benchmark shape.
    let mut k = Kernel::boot(zen2(), &BootParams::default());
    let data = userlib::data_base();
    let rounds = 8u64;
    k.spawn(move |b| {
        let child = b.new_label();
        let done = b.new_label();
        // pipe() twice: A (fds 0,1), B (fds 2,3).
        emit_syscall(b, nr::PIPE);
        emit_syscall(b, nr::PIPE);
        // fork()
        emit_syscall(b, nr::FORK);
        b.cmp_imm(Reg::R0, 0);
        b.jcc(Cond::Eq, child);

        // Parent: loop { write(A.w=1), read(B.r=2) }.
        let top = begin_loop(b, Reg::R6, rounds);
        b.mov_imm(Reg::R1, 1);
        b.mov_imm(Reg::R2, data);
        b.mov_imm(Reg::R3, 8);
        emit_syscall(b, nr::WRITE);
        b.mov_imm(Reg::R1, 2);
        b.mov_imm(Reg::R2, data + 64);
        b.mov_imm(Reg::R3, 8);
        emit_syscall(b, nr::READ);
        end_loop(b, Reg::R6, top);
        b.jmp(done);

        // Child: loop { read(A.r=0), write(B.w=3) }.
        b.bind(child);
        let ctop = begin_loop(b, Reg::R6, rounds);
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, data + 128);
        b.mov_imm(Reg::R3, 8);
        emit_syscall(b, nr::READ);
        b.mov_imm(Reg::R1, 3);
        b.mov_imm(Reg::R2, data + 192);
        b.mov_imm(Reg::R3, 8);
        emit_syscall(b, nr::WRITE);
        end_loop(b, Reg::R6, ctop);

        b.bind(done);
        emit_exit(b);
    });
    k.start();
    assert_eq!(k.run(BUDGET).unwrap(), Stop::Halted);
    assert!(
        k.state.stats.ctx_switches >= rounds,
        "ping-pong must context switch every round: {} switches",
        k.state.stats.ctx_switches
    );
    assert_eq!(k.state.stats.forks, 1);
    // Default IBPB policy is conditional: plain tasks get no barrier.
    assert_eq!(k.state.stats.ibpbs, 0);
}

#[test]
fn ibpb_not_issued_with_nospectre_v2() {
    let mut k = Kernel::boot(zen2(), &BootParams::parse("nospectre_v2"));
    k.spawn(|b| {
        emit_syscall(b, nr::PIPE);
        emit_syscall(b, nr::FORK);
        b.cmp_imm(Reg::R0, 0);
        let child = b.new_label();
        b.jcc(Cond::Eq, child);
        // Parent writes so the child can read, then exits.
        b.mov_imm(Reg::R1, 1);
        b.mov_imm(Reg::R2, userlib::data_base());
        b.mov_imm(Reg::R3, 8);
        emit_syscall(b, nr::WRITE);
        emit_exit(b);
        b.bind(child);
        b.mov_imm(Reg::R1, 0);
        b.mov_imm(Reg::R2, userlib::data_base() + 64);
        b.mov_imm(Reg::R3, 8);
        emit_syscall(b, nr::READ);
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).unwrap();
    assert!(k.state.stats.ctx_switches > 0);
    assert_eq!(k.state.stats.ibpbs, 0);
}

#[test]
fn seccomp_task_gets_ibpb_on_switches() {
    // Conditional IBPB: a hardened (seccomp) task is isolated from its
    // neighbours with a barrier on every switch involving it.
    let mut k = Kernel::boot(zen2(), &BootParams::default());
    k.spawn(|b| {
        emit_syscall(b, nr::SECCOMP);
        for _ in 0..4 {
            emit_syscall(b, nr::YIELD);
        }
        emit_exit(b);
    });
    k.spawn(|b| {
        for _ in 0..4 {
            emit_syscall(b, nr::YIELD);
        }
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).unwrap();
    assert!(k.state.stats.ctx_switches >= 4);
    assert!(
        k.state.stats.ibpbs >= 4,
        "switches around a seccomp task must IBPB: {}",
        k.state.stats.ibpbs
    );
}

#[test]
fn mmap_demand_paging_faults_once_per_page() {
    let mut k = Kernel::boot(broadwell(), &BootParams::default());
    let pages = 16u64;
    k.spawn(move |b| {
        b.mov_imm(Reg::R1, pages * 4096);
        emit_syscall(b, nr::MMAP);
        b.push(Inst::Mov(Reg::R7, Reg::R0)); // base
        // Touch each page twice; only the first touch faults.
        for round in 0..2 {
            let _ = round;
            let top = begin_loop(b, Reg::R6, pages);
            b.push(Inst::Store { src: Reg::R6, base: Reg::R7, offset: 0, width: Width::B8 });
            b.push(Inst::AddImm(Reg::R7, 4096));
            end_loop(b, Reg::R6, top);
            b.push(Inst::SubImm(Reg::R7, pages * 4096));
        }
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).unwrap();
    assert_eq!(k.state.stats.demand_faults, pages);
}

#[test]
fn munmap_unmaps_and_faults_kill_without_handler() {
    let mut k = Kernel::boot(broadwell(), &BootParams::default());
    k.spawn(|b| {
        b.mov_imm(Reg::R1, 4096);
        emit_syscall(b, nr::MMAP_POPULATE);
        b.push(Inst::Mov(Reg::R7, Reg::R0));
        // Touch: fine.
        b.push(Inst::Store { src: Reg::R7, base: Reg::R7, offset: 0, width: Width::B8 });
        // munmap, then touch again: SIGSEGV (process killed).
        b.push(Inst::Mov(Reg::R1, Reg::R7));
        b.mov_imm(Reg::R2, 4096);
        emit_syscall(b, nr::MUNMAP);
        b.push(Inst::Store { src: Reg::R7, base: Reg::R7, offset: 0, width: Width::B8 });
        // Should never get here.
        emit_exit(b);
    });
    k.start();
    assert_eq!(k.run(BUDGET).unwrap(), Stop::Halted);
    let pid = 1;
    assert_eq!(k.process(pid).unwrap().state, ProcState::Exited);
    // Exactly one syscall round for mmap + munmap + 0 exits: the store
    // after munmap killed it, so the final `exit` never ran.
    assert!(k.state.stats.syscalls >= 2);
}

#[test]
fn select_counts_ready_fds() {
    let mut k = Kernel::boot(cascade_lake(), &BootParams::default());
    let data = userlib::data_base();
    let pid = k.spawn(move |b| {
        emit_syscall(b, nr::PIPE); // fds 0 (r), 1 (w)
        emit_syscall(b, nr::CREAT); // fd 2
        // select(3): pipe-read not ready, pipe-write ready, file ready = 2.
        b.mov_imm(Reg::R1, 3);
        emit_syscall(b, nr::SELECT);
        b.mov_imm(Reg::R4, data);
        b.push(Inst::Store { src: Reg::R0, base: Reg::R4, offset: 0, width: Width::B8 });
        // Write to the pipe, select again: 3 ready.
        b.mov_imm(Reg::R1, 1);
        b.mov_imm(Reg::R2, data);
        b.mov_imm(Reg::R3, 8);
        emit_syscall(b, nr::WRITE);
        b.mov_imm(Reg::R1, 3);
        emit_syscall(b, nr::SELECT);
        b.push(Inst::Store { src: Reg::R0, base: Reg::R4, offset: 8, width: Width::B8 });
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).unwrap();
    let out = k.peek_user_data(pid, 0, 16);
    assert_eq!(u64::from_le_bytes(out[0..8].try_into().unwrap()), 2);
    assert_eq!(u64::from_le_bytes(out[8..16].try_into().unwrap()), 3);
}

#[test]
fn seccomp_enables_ssbd_under_default_policy() {
    let mut k = Kernel::boot(broadwell(), &BootParams::default());
    k.spawn(|b| {
        emit_syscall(b, nr::SECCOMP);
        // Spin a little so we can observe the MSR while running.
        let top = begin_loop(b, Reg::R6, 4);
        b.push(Inst::Nop);
        end_loop(b, Reg::R6, top);
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).unwrap();
    // After the seccomp syscall the SSBD bit must have been set; it is
    // still set at halt since no other process ran.
    assert_ne!(k.machine.msrs.spec_ctrl() & spec_ctrl::SSBD, 0);
}

#[test]
fn seccomp_does_not_enable_ssbd_on_516_policy() {
    let mut k = Kernel::boot(
        broadwell(),
        &BootParams::parse("spec_store_bypass_disable=prctl"),
    );
    k.spawn(|b| {
        emit_syscall(b, nr::SECCOMP);
        emit_exit(b);
    });
    k.start();
    k.run(BUDGET).unwrap();
    assert_eq!(k.machine.msrs.spec_ctrl() & spec_ctrl::SSBD, 0);
}

#[test]
fn eibrs_is_set_once_at_boot() {
    let k = Kernel::boot(cascade_lake(), &BootParams::default());
    assert_eq!(k.state.config.spectre_v2, SpectreV2Mode::Eibrs);
    assert_ne!(k.machine.msrs.spec_ctrl() & spec_ctrl::IBRS, 0);
    // And not on retpoline parts.
    let k = Kernel::boot(broadwell(), &BootParams::default());
    assert_eq!(k.machine.msrs.spec_ctrl() & spec_ctrl::IBRS, 0);
}

#[test]
fn pti_makes_syscalls_slower() {
    // The PTI attribution: identical workload, with and without `nopti`,
    // on a Meltdown-vulnerable part.
    let run = |cmdline: &str| -> u64 {
        let mut k = Kernel::boot(broadwell(), &BootParams::parse(cmdline));
        k.spawn(|b| {
            let top = begin_loop(b, Reg::R6, 200);
            userlib::emit_getpid(b);
            end_loop(b, Reg::R6, top);
            emit_exit(b);
        });
        k.start();
        k.run(BUDGET).unwrap();
        k.cycles()
    };
    let with_pti = run("");
    let without = run("nopti");
    let delta = with_pti.saturating_sub(without);
    // Two cr3 swaps per syscall at 206 cycles each, 200 iterations.
    assert!(
        delta > 200 * 2 * 150,
        "PTI must cost ~2 swaps/syscall: delta {delta}"
    );
}

#[test]
fn mds_verw_makes_syscalls_slower_only_when_vulnerable() {
    let run = |model: uarch::CpuModel, cmdline: &str| -> u64 {
        let mut k = Kernel::boot(model, &BootParams::parse(cmdline));
        k.spawn(|b| {
            let top = begin_loop(b, Reg::R6, 200);
            userlib::emit_getpid(b);
            end_loop(b, Reg::R6, top);
            emit_exit(b);
        });
        k.start();
        k.run(BUDGET).unwrap();
        k.cycles()
    };
    let skl_on = run(cpu_models::skylake_client(), "nopti"); // isolate MDS
    let skl_off = run(cpu_models::skylake_client(), "nopti mds=off");
    assert!(
        skl_on.saturating_sub(skl_off) > 200 * 400,
        "verw (~518 cycles) per syscall exit on Skylake"
    );
    // Ice Lake Server: not vulnerable, toggle is a no-op.
    let icx_on = run(cpu_models::ice_lake_server(), "");
    let icx_off = run(cpu_models::ice_lake_server(), "mds=off");
    let rel = (icx_on as f64 - icx_off as f64).abs() / icx_off as f64;
    assert!(rel < 0.01, "mds toggle must not matter on fixed hardware: {rel}");
}

#[test]
fn meltdown_through_kernel_blocked_by_pti() {
    // End-to-end: a user process tries to Meltdown-read kernel data.
    // Without PTI on Broadwell it succeeds; with PTI the kernel mapping
    // is simply absent in user mode.
    let leak = |cmdline: &str| -> Option<u8> {
        let mut k = Kernel::boot(broadwell(), &BootParams::parse(cmdline));
        let kdata = sim_kernel::layout::KERNEL_DATA_VADDR;
        // Plant a distinctive secret as the first kernel data byte.
        let secret_paddr = k.kernel_data_paddr();
        k.machine.mem.write_u8(secret_paddr, 0xA5);
        let probe = userlib::data_base() + 0x8000; // within the data arena
        k.spawn(move |b| {
            let done = b.new_label();
            b.lea(Reg::R13, done); // fault recovery address
            b.mov_imm(Reg::R1, kdata);
            b.mov_imm(Reg::R3, probe);
            b.push(Inst::Load { dst: Reg::R4, base: Reg::R1, offset: 0, width: Width::B1 });
            b.push(Inst::Shl(Reg::R4, 9));
            b.push(Inst::Add(Reg::R4, Reg::R3));
            b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
            b.bind(done);
            emit_exit(b);
        });
        k.start();
        k.machine.l1d.flush_all();
        k.run(BUDGET).unwrap();
        // Readout: which probe line is hot?
        let mut hits = vec![];
        for i in 0..256u64 {
            let vaddr = probe + i * 512;
            // The data arena is identity-offset; find its frame via the
            // page table of process 1.
            let p = k.process(1).unwrap();
            let pte = k.machine.mmu.table(p.full_table).unwrap().lookup(vaddr).unwrap();
            let paddr = (pte.pfn << 12) | (vaddr & 0xfff);
            if k.machine.l1d.probe(paddr) {
                hits.push(i as u8);
            }
        }
        if hits.len() == 1 {
            Some(hits[0])
        } else {
            None
        }
    };
    let without_pti = leak("nopti");
    let with_pti = leak("");
    // Without PTI: the supervisor mapping exists, Meltdown forwards the
    // planted secret byte to the probe.
    assert_eq!(without_pti, Some(0xA5), "Meltdown leaks through a mapped kernel page");
    // With PTI there is no mapping at all: the transient load cannot
    // target the secret (at worst it samples stale, untargeted fill-buffer
    // data), so the readout never recovers it.
    assert_ne!(with_pti, Some(0xA5), "PTI must remove the kernel mapping");
}

#[test]
fn thread_create_shares_address_space() {
    let mut k = Kernel::boot(zen2(), &BootParams::default());
    let data = userlib::data_base();
    let pid = k.spawn(move |b| {
        let thread = b.new_label();
        let wait = b.new_label();
        b.lea(Reg::R1, thread);
        emit_syscall(b, nr::THREAD_CREATE);
        // Main: spin until the thread stores a flag.
        b.bind(wait);
        emit_syscall(b, nr::YIELD);
        b.mov_imm(Reg::R4, data);
        b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B8 });
        b.cmp_imm(Reg::R5, 0x77);
        b.jcc(Cond::Ne, wait);
        emit_exit(b);
        // Thread body: store the flag, exit.
        b.bind(thread);
        b.mov_imm(Reg::R4, data);
        b.mov_imm(Reg::R5, 0x77);
        b.push(Inst::Store { src: Reg::R5, base: Reg::R4, offset: 0, width: Width::B8 });
        emit_exit(b);
    });
    k.start();
    assert_eq!(k.run(BUDGET).unwrap(), Stop::Halted);
    let out = k.peek_user_data(pid, 0, 8);
    assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), 0x77);
}
