//! # workloads — the paper's end-to-end benchmark suites
//!
//! Three workload families, each stressing a different security boundary
//! (paper §4):
//!
//! * [`lebench`] — OS-intensive microbenchmarks (user↔kernel boundary;
//!   Figure 2). The suite metric is the geometric mean of cycles/op.
//! * [`parsec`] — single-process compute kernels with no boundary
//!   crossings (§4.5, Figure 5): they show that default mitigations are
//!   free for pure compute, and what force-enabled SSBD costs.
//! * [`lfs`] — the LFS smallfile/largefile file benchmarks (§4.4), used
//!   bare or inside the `hypervisor` crate's VM, where each fsync turns
//!   into a VM exit against the emulated disk.
//!
//! The JavaScript (Octane-like) workloads live in the `js-engine` crate,
//! next to the JIT whose mitigations they measure.

pub mod lebench;
pub mod lfs;
pub mod parsec;

pub use lebench::{geomean, run_op, run_suite, LeBenchOp, OpResult};
pub use lfs::{LfsBench, LfsResult};
pub use parsec::{run_bench, ParsecBench, ParsecResult};
