//! PARSEC-like compute kernels (paper §4.5, Figure 5).
//!
//! Three single-process, compute-intensive kernels chosen — like the
//! paper's swaptions/facesim/bodytrack — to span working-set sizes and
//! store intensities. They make (almost) no syscalls, so the default
//! mitigations cost nothing; only force-enabled SSBD shows up, because
//! each kernel's inner loop contains store-to-load forwarding that SSBD
//! stalls.

use sim_kernel::userlib::{begin_loop, data_base, emit_exit, end_loop};
use sim_kernel::{BootParams, Kernel};
use uarch::isa::{FReg, Inst, Reg, Width};
use uarch::model::CpuModel;

/// Instruction budget for one kernel run.
const BUDGET: u64 = 600_000_000;

/// One PARSEC-like benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParsecBench {
    /// Monte-Carlo swaption pricing: FP-heavy, small working set, spills
    /// its accumulator every path (moderate forwarding).
    Swaptions,
    /// Face simulation: iterative solver over a large array, streaming
    /// loads/stores with reuse (high forwarding on the in-place update).
    Facesim,
    /// Body tracking: particle-filter weight update, mixed integer/FP,
    /// frequent write-then-read of per-particle state (highest
    /// forwarding density).
    Bodytrack,
}

impl ParsecBench {
    /// All three benchmarks.
    pub const ALL: [ParsecBench; 3] =
        [ParsecBench::Swaptions, ParsecBench::Facesim, ParsecBench::Bodytrack];

    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            ParsecBench::Swaptions => "swaptions",
            ParsecBench::Facesim => "facesim",
            ParsecBench::Bodytrack => "bodytrack",
        }
    }

    /// Outer iteration count.
    fn iterations(self) -> u64 {
        match self {
            ParsecBench::Swaptions => 3000,
            ParsecBench::Facesim => 250,
            ParsecBench::Bodytrack => 500,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct ParsecResult {
    /// Which benchmark.
    pub bench: ParsecBench,
    /// Total simulated cycles.
    pub cycles: u64,
}

/// Runs one benchmark under the given kernel configuration.
pub fn run_bench(model: &CpuModel, params: &BootParams, bench: ParsecBench) -> ParsecResult {
    let mut k = Kernel::boot(model.clone(), params);
    build(&mut k, bench);
    k.start();
    let start = k.cycles();
    k.run(BUDGET).expect("benchmark must complete");
    ParsecResult { bench, cycles: k.cycles() - start }
}

fn build(k: &mut Kernel, bench: ParsecBench) {
    let data = data_base();
    let iters = bench.iterations();
    match bench {
        ParsecBench::Swaptions => {
            k.spawn(move |b| {
                b.mov_imm(Reg::R1, data);
                b.push(Inst::FmovImm(FReg::F0, 1.0)); // rate accumulator
                b.push(Inst::FmovImm(FReg::F1, 1.0001)); // drift
                b.push(Inst::FmovImm(FReg::F2, 0.98)); // discount
                let top = begin_loop(b, Reg::R7, iters);
                // One simulated path: several FP steps...
                for _ in 0..6 {
                    b.push(Inst::Fmul(FReg::F0, FReg::F1));
                    b.push(Inst::Fadd(FReg::F0, FReg::F2));
                }
                // ...then spill the path value and immediately re-read it
                // for the running sum (store-to-load forwarding).
                b.push(Inst::Fstore { src: FReg::F0, base: Reg::R1, offset: 0 });
                b.push(Inst::Fload { dst: FReg::F3, base: Reg::R1, offset: 0 });
                b.push(Inst::Fadd(FReg::F4, FReg::F3));
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        ParsecBench::Facesim => {
            k.spawn(move |b| {
                // Jacobi-style in-place sweep over a 4 KiB row: read
                // neighbours, write the cell, read it back next step.
                b.mov_imm(Reg::R1, data);
                let top = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R2, data);
                let row = begin_loop(b, Reg::R6, 32);
                b.push(Inst::Fload { dst: FReg::F0, base: Reg::R2, offset: 0 });
                b.push(Inst::Fload { dst: FReg::F1, base: Reg::R2, offset: 8 });
                b.push(Inst::Fadd(FReg::F0, FReg::F1));
                b.push(Inst::FmovImm(FReg::F2, 0.5));
                b.push(Inst::Fmul(FReg::F0, FReg::F2));
                b.push(Inst::Fstore { src: FReg::F0, base: Reg::R2, offset: 0 });
                // In-place solver reads the freshly written cell.
                b.push(Inst::Fload { dst: FReg::F3, base: Reg::R2, offset: 0 });
                b.push(Inst::Fadd(FReg::F4, FReg::F3));
                b.push(Inst::AddImm(Reg::R2, 128));
                end_loop(b, Reg::R6, row);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        ParsecBench::Bodytrack => {
            k.spawn(move |b| {
                // Particle filter: update 16 particle weights; each update
                // writes the weight and the normalization pass reads it
                // straight back (two forwarding events per particle).
                b.mov_imm(Reg::R1, data);
                let top = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R2, data);
                let particles = begin_loop(b, Reg::R6, 16);
                b.push(Inst::Load { dst: Reg::R3, base: Reg::R2, offset: 0, width: Width::B8 });
                b.push(Inst::AddImm(Reg::R3, 3));
                b.push(Inst::Mul(Reg::R3, Reg::R3));
                b.push(Inst::Store { src: Reg::R3, base: Reg::R2, offset: 0, width: Width::B8 });
                b.push(Inst::Load { dst: Reg::R4, base: Reg::R2, offset: 0, width: Width::B8 });
                b.push(Inst::Add(Reg::R5, Reg::R4));
                b.push(Inst::Store { src: Reg::R5, base: Reg::R2, offset: 8, width: Width::B8 });
                b.push(Inst::Load { dst: Reg::R5, base: Reg::R2, offset: 8, width: Width::B8 });
                b.push(Inst::AddImm(Reg::R2, 64));
                end_loop(b, Reg::R6, particles);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::{ice_lake_server, zen3};

    #[test]
    fn all_benches_complete() {
        for bench in ParsecBench::ALL {
            let r = run_bench(&ice_lake_server(), &BootParams::default(), bench);
            assert!(r.cycles > 100_000, "{}", bench.name());
        }
    }

    #[test]
    fn default_mitigations_cost_nothing_measurable() {
        // Paper §4.5: "total runtime was usually within ±0.5%".
        for bench in ParsecBench::ALL {
            let on = run_bench(&zen3(), &BootParams::default(), bench).cycles as f64;
            let off =
                run_bench(&zen3(), &BootParams::parse("mitigations=off"), bench).cycles as f64;
            let rel = (on - off).abs() / off;
            assert!(rel < 0.02, "{}: default mitigations cost {:.2}%", bench.name(), rel * 100.0);
        }
    }

    #[test]
    fn forced_ssbd_slows_everything_down() {
        // Figure 5: force-enabling SSBD costs real performance.
        for bench in ParsecBench::ALL {
            let off = run_bench(&zen3(), &BootParams::default(), bench).cycles as f64;
            let on = run_bench(
                &zen3(),
                &BootParams::parse("spec_store_bypass_disable=on"),
                bench,
            )
            .cycles as f64;
            let slow = on / off - 1.0;
            assert!(
                slow > 0.05,
                "{}: SSBD should visibly slow this kernel, got {:.2}%",
                bench.name(),
                slow * 100.0
            );
        }
    }

    #[test]
    fn ssbd_cost_trends_worse_on_newer_parts() {
        // Figure 5's headline: the slowdown is trending worse over time.
        let bench = ParsecBench::Bodytrack;
        let cost = |model: &uarch::CpuModel| {
            let off = run_bench(model, &BootParams::default(), bench).cycles as f64;
            let on = run_bench(
                model,
                &BootParams::parse("spec_store_bypass_disable=on"),
                bench,
            )
            .cycles as f64;
            on / off - 1.0
        };
        assert!(cost(&zen3()) > cost(&cpu_models::zen()));
        assert!(cost(&ice_lake_server()) > cost(&cpu_models::broadwell()));
    }
}
