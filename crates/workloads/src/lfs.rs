//! LFS smallfile/largefile microbenchmarks (paper §4.4).
//!
//! Rosenblum & Ousterhout's classic file benchmarks, used by the paper to
//! drive VM exits through an emulated disk: *smallfile* creates, writes,
//! and fsyncs many small files; *largefile* writes then reads one large
//! file sequentially. Run on a bare kernel they measure the syscall path;
//! run inside the `hypervisor` crate's VM, each fsync becomes a VM exit.

use sim_kernel::abi::nr;
use sim_kernel::userlib::{begin_loop, data_base, emit_exit, emit_syscall, end_loop};
use sim_kernel::{BootParams, Kernel};
use uarch::isa::{Inst, Reg};
use uarch::model::CpuModel;

/// Instruction budget for one run.
const BUDGET: u64 = 800_000_000;

/// Which LFS benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LfsBench {
    /// Many small files: create, 1 KiB write, fsync.
    Smallfile,
    /// One large file: sequential 16 KiB writes then reads.
    Largefile,
}

impl LfsBench {
    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            LfsBench::Smallfile => "smallfile",
            LfsBench::Largefile => "largefile",
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone, Copy)]
pub struct LfsResult {
    /// Which benchmark.
    pub bench: LfsBench,
    /// Total simulated cycles.
    pub cycles: u64,
    /// fsync calls issued (each is a disk flush — a VM exit when run in a
    /// guest).
    pub fsyncs: u64,
}

/// Builds the benchmark program into an existing kernel (used directly by
/// the hypervisor crate to run it inside a guest).
pub fn build(k: &mut Kernel, bench: LfsBench) -> u64 {
    let data = data_base();
    match bench {
        LfsBench::Smallfile => {
            let files = 40u64;
            k.spawn(move |b| {
                let top = begin_loop(b, Reg::R7, files);
                emit_syscall(b, nr::CREAT);
                b.push(Inst::Mov(Reg::R6, Reg::R0));
                // 4 KiB per file, written in 1 KiB chunks like the
                // original benchmark's buffered writes.
                for chunk in 0..4 {
                    b.push(Inst::Mov(Reg::R1, Reg::R6));
                    b.mov_imm(Reg::R2, data + chunk * 1024);
                    b.mov_imm(Reg::R3, 1024);
                    emit_syscall(b, nr::WRITE);
                }
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                emit_syscall(b, nr::FSYNC);
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                emit_syscall(b, nr::CLOSE);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
            files
        }
        LfsBench::Largefile => {
            let chunks = 48u64;
            k.spawn(move |b| {
                emit_syscall(b, nr::CREAT);
                b.push(Inst::Mov(Reg::R6, Reg::R0));
                // Write phase.
                let wtop = begin_loop(b, Reg::R7, chunks);
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, data);
                b.mov_imm(Reg::R3, 16384);
                emit_syscall(b, nr::WRITE);
                end_loop(b, Reg::R7, wtop);
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                emit_syscall(b, nr::FSYNC);
                // Read phase.
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, 0);
                emit_syscall(b, nr::LSEEK);
                let rtop = begin_loop(b, Reg::R7, chunks);
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, data);
                b.mov_imm(Reg::R3, 16384);
                emit_syscall(b, nr::READ);
                end_loop(b, Reg::R7, rtop);
                emit_exit(b);
            });
            1
        }
    }
}

/// Runs the benchmark on a bare (non-virtualized) kernel.
pub fn run_bench(model: &CpuModel, params: &BootParams, bench: LfsBench) -> LfsResult {
    let mut k = Kernel::boot(model.clone(), params);
    let fsyncs = build(&mut k, bench);
    k.start();
    let start = k.cycles();
    k.run(BUDGET).expect("benchmark must complete");
    LfsResult { bench, cycles: k.cycles() - start, fsyncs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::cascade_lake;

    #[test]
    fn both_benches_complete() {
        for bench in [LfsBench::Smallfile, LfsBench::Largefile] {
            let r = run_bench(&cascade_lake(), &BootParams::default(), bench);
            assert!(r.cycles > 100_000, "{}", bench.name());
        }
    }

    #[test]
    fn largefile_moves_more_bytes_than_smallfile() {
        let mut ks = Kernel::boot(cascade_lake(), &BootParams::default());
        build(&mut ks, LfsBench::Smallfile);
        ks.start();
        ks.run(BUDGET).unwrap();
        let small = ks.state.bytes_copied;

        let mut kl = Kernel::boot(cascade_lake(), &BootParams::default());
        build(&mut kl, LfsBench::Largefile);
        kl.start();
        kl.run(BUDGET).unwrap();
        let large = kl.state.bytes_copied;
        assert!(large > small, "{large} vs {small}");
    }
}
