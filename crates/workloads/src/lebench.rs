//! LEBench: microbenchmarks of core OS operations (paper §4.2).
//!
//! Mirrors the benchmark set of Ren et al.'s LEBench as distributed with
//! the WARD system: each benchmark stresses one kernel operation in a
//! tight loop, and the suite score is the geometric mean. Overhead on
//! this suite is where PTI and MDS buffer clearing show up (Figure 2).

use sim_kernel::abi::nr;
use sim_kernel::userlib::{begin_loop, data_base, emit_exit, emit_syscall, end_loop};
use sim_kernel::{BootParams, Kernel};
use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::model::CpuModel;

/// Instruction budget for a single benchmark run.
const BUDGET: u64 = 400_000_000;

/// One LEBench microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LeBenchOp {
    /// Minimal syscall round trip.
    GetPid,
    /// 64-byte file read.
    SmallRead,
    /// 4 KiB file read.
    MedRead,
    /// 16 KiB file read.
    BigRead,
    /// 256 KiB file read.
    HugeRead,
    /// 64-byte file write.
    SmallWrite,
    /// 4 KiB file write.
    MedWrite,
    /// 16 KiB file write.
    BigWrite,
    /// 256 KiB file write.
    HugeWrite,
    /// Anonymous mmap (lazy).
    Mmap,
    /// munmap of a populated 16 KiB region.
    Munmap,
    /// First-touch page fault on fresh mmap pages.
    PageFault,
    /// Pipe-based ping-pong between two processes.
    ContextSwitch,
    /// Pipe send+recv within one process.
    SendRecv,
    /// select() over 8 descriptors.
    Select,
    /// fork() + child exit.
    Fork,
    /// fork() of a process with a large populated mmap region.
    BigFork,
    /// munmap of a populated 256 KiB region.
    BigMunmap,
    /// Thread creation + exit.
    ThreadCreate,
}

impl LeBenchOp {
    /// All benchmarks in the suite.
    pub const ALL: [LeBenchOp; 19] = [
        LeBenchOp::GetPid,
        LeBenchOp::SmallRead,
        LeBenchOp::MedRead,
        LeBenchOp::BigRead,
        LeBenchOp::HugeRead,
        LeBenchOp::SmallWrite,
        LeBenchOp::MedWrite,
        LeBenchOp::BigWrite,
        LeBenchOp::HugeWrite,
        LeBenchOp::Mmap,
        LeBenchOp::Munmap,
        LeBenchOp::BigMunmap,
        LeBenchOp::PageFault,
        LeBenchOp::ContextSwitch,
        LeBenchOp::SendRecv,
        LeBenchOp::Select,
        LeBenchOp::Fork,
        LeBenchOp::BigFork,
        LeBenchOp::ThreadCreate,
    ];

    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            LeBenchOp::GetPid => "getpid",
            LeBenchOp::SmallRead => "small-read",
            LeBenchOp::MedRead => "med-read",
            LeBenchOp::BigRead => "big-read",
            LeBenchOp::HugeRead => "huge-read",
            LeBenchOp::SmallWrite => "small-write",
            LeBenchOp::MedWrite => "med-write",
            LeBenchOp::BigWrite => "big-write",
            LeBenchOp::HugeWrite => "huge-write",
            LeBenchOp::Mmap => "mmap",
            LeBenchOp::Munmap => "munmap",
            LeBenchOp::PageFault => "page-fault",
            LeBenchOp::ContextSwitch => "context-switch",
            LeBenchOp::SendRecv => "send-recv",
            LeBenchOp::Select => "select",
            LeBenchOp::Fork => "fork",
            LeBenchOp::BigFork => "big-fork",
            LeBenchOp::BigMunmap => "big-munmap",
            LeBenchOp::ThreadCreate => "thread-create",
        }
    }

    /// Iterations per run (sized so every benchmark simulates quickly but
    /// amortizes loop overhead).
    pub fn iterations(self) -> u64 {
        match self {
            LeBenchOp::GetPid => 300,
            LeBenchOp::SmallRead | LeBenchOp::SmallWrite => 150,
            LeBenchOp::MedRead | LeBenchOp::MedWrite => 60,
            LeBenchOp::BigRead | LeBenchOp::BigWrite => 12,
            LeBenchOp::HugeRead | LeBenchOp::HugeWrite => 3,
            LeBenchOp::Mmap | LeBenchOp::Munmap => 80,
            LeBenchOp::BigMunmap => 20,
            LeBenchOp::PageFault => 64,
            LeBenchOp::ContextSwitch => 60,
            LeBenchOp::SendRecv => 100,
            LeBenchOp::Select => 120,
            LeBenchOp::Fork => 12,
            LeBenchOp::BigFork => 6,
            LeBenchOp::ThreadCreate => 16,
        }
    }
}

/// Result of one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct OpResult {
    /// Which benchmark.
    pub op: LeBenchOp,
    /// Simulated cycles per operation.
    pub cycles_per_op: f64,
}

/// Runs one LEBench benchmark on a freshly booted kernel.
pub fn run_op(model: &CpuModel, params: &BootParams, op: LeBenchOp) -> OpResult {
    let mut k = Kernel::boot(model.clone(), params);
    let iters = op.iterations();
    build(&mut k, op, iters);
    k.start();
    let start = k.cycles();
    k.run(BUDGET).expect("benchmark must complete");
    let total = k.cycles() - start;
    OpResult { op, cycles_per_op: total as f64 / iters as f64 }
}

/// Runs the full suite; returns per-op results.
pub fn run_suite(model: &CpuModel, params: &BootParams) -> Vec<OpResult> {
    LeBenchOp::ALL.iter().map(|op| run_op(model, params, *op)).collect()
}

/// Geometric mean of cycles-per-op across the suite (the paper's suite
/// metric).
pub fn geomean(results: &[OpResult]) -> f64 {
    let log_sum: f64 = results.iter().map(|r| r.cycles_per_op.ln()).sum();
    (log_sum / results.len() as f64).exp()
}

fn build(k: &mut Kernel, op: LeBenchOp, iters: u64) {
    let data = data_base();
    match op {
        LeBenchOp::GetPid => {
            k.spawn(move |b| {
                let top = begin_loop(b, Reg::R7, iters);
                emit_syscall(b, nr::GETPID);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::SmallRead | LeBenchOp::MedRead | LeBenchOp::BigRead | LeBenchOp::HugeRead => {
            let len = match op {
                LeBenchOp::SmallRead => 64,
                LeBenchOp::MedRead => 4096,
                LeBenchOp::BigRead => 16384,
                _ => 262144,
            };
            k.spawn(move |b| {
                emit_syscall(b, nr::CREAT);
                b.push(Inst::Mov(Reg::R6, Reg::R0)); // fd
                // Pre-size the file.
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, len);
                emit_syscall(b, nr::FTRUNCATE);
                let top = begin_loop(b, Reg::R7, iters);
                // Rewind and read.
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, 0);
                emit_syscall(b, nr::LSEEK);
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, data);
                b.mov_imm(Reg::R3, len);
                emit_syscall(b, nr::READ);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::SmallWrite | LeBenchOp::MedWrite | LeBenchOp::BigWrite | LeBenchOp::HugeWrite => {
            let len = match op {
                LeBenchOp::SmallWrite => 64,
                LeBenchOp::MedWrite => 4096,
                LeBenchOp::BigWrite => 16384,
                _ => 262144,
            };
            k.spawn(move |b| {
                emit_syscall(b, nr::CREAT);
                b.push(Inst::Mov(Reg::R6, Reg::R0));
                let top = begin_loop(b, Reg::R7, iters);
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, 0);
                emit_syscall(b, nr::LSEEK);
                b.push(Inst::Mov(Reg::R1, Reg::R6));
                b.mov_imm(Reg::R2, data);
                b.mov_imm(Reg::R3, len);
                emit_syscall(b, nr::WRITE);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::Mmap => {
            k.spawn(move |b| {
                let top = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R1, 16384);
                emit_syscall(b, nr::MMAP);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::Munmap | LeBenchOp::BigMunmap => {
            let len: u64 = if op == LeBenchOp::Munmap { 16384 } else { 262144 };
            k.spawn(move |b| {
                let top = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R1, len);
                emit_syscall(b, nr::MMAP_POPULATE);
                b.push(Inst::Mov(Reg::R1, Reg::R0));
                b.mov_imm(Reg::R2, len);
                emit_syscall(b, nr::MUNMAP);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::PageFault => {
            k.spawn(move |b| {
                b.mov_imm(Reg::R1, iters * 4096);
                emit_syscall(b, nr::MMAP);
                b.push(Inst::Mov(Reg::R6, Reg::R0));
                let top = begin_loop(b, Reg::R7, iters);
                b.push(Inst::Store { src: Reg::R7, base: Reg::R6, offset: 0, width: Width::B8 });
                b.push(Inst::AddImm(Reg::R6, 4096));
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::ContextSwitch => {
            k.spawn(move |b| {
                let child = b.new_label();
                let done = b.new_label();
                emit_syscall(b, nr::PIPE); // A: fds 0,1
                emit_syscall(b, nr::PIPE); // B: fds 2,3
                emit_syscall(b, nr::FORK);
                b.cmp_imm(Reg::R0, 0);
                b.jcc(Cond::Eq, child);
                // Parent.
                let top = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R1, 1);
                b.mov_imm(Reg::R2, data);
                b.mov_imm(Reg::R3, 8);
                emit_syscall(b, nr::WRITE);
                b.mov_imm(Reg::R1, 2);
                b.mov_imm(Reg::R2, data + 64);
                b.mov_imm(Reg::R3, 8);
                emit_syscall(b, nr::READ);
                end_loop(b, Reg::R7, top);
                b.jmp(done);
                // Child.
                b.bind(child);
                let ctop = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R1, 0);
                b.mov_imm(Reg::R2, data);
                b.mov_imm(Reg::R3, 8);
                emit_syscall(b, nr::READ);
                b.mov_imm(Reg::R1, 3);
                b.mov_imm(Reg::R2, data + 64);
                b.mov_imm(Reg::R3, 8);
                emit_syscall(b, nr::WRITE);
                end_loop(b, Reg::R7, ctop);
                b.bind(done);
                emit_exit(b);
            });
        }
        LeBenchOp::SendRecv => {
            k.spawn(move |b| {
                emit_syscall(b, nr::PIPE);
                let top = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R1, 1);
                b.mov_imm(Reg::R2, data);
                b.mov_imm(Reg::R3, 256);
                emit_syscall(b, nr::SEND);
                b.mov_imm(Reg::R1, 0);
                b.mov_imm(Reg::R2, data + 4096);
                b.mov_imm(Reg::R3, 256);
                emit_syscall(b, nr::RECV);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::Select => {
            k.spawn(move |b| {
                // 4 pipes = 8 fds.
                for _ in 0..4 {
                    emit_syscall(b, nr::PIPE);
                }
                let top = begin_loop(b, Reg::R7, iters);
                b.mov_imm(Reg::R1, 8);
                emit_syscall(b, nr::SELECT);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::Fork | LeBenchOp::BigFork => {
            let extra_pages: u64 = if op == LeBenchOp::BigFork { 192 } else { 0 };
            k.spawn(move |b| {
                if extra_pages > 0 {
                    b.mov_imm(Reg::R1, extra_pages * 4096);
                    emit_syscall(b, nr::MMAP_POPULATE);
                }
                let top = begin_loop(b, Reg::R7, iters);
                emit_syscall(b, nr::FORK);
                b.cmp_imm(Reg::R0, 0);
                let parent = b.new_label();
                b.jcc(Cond::Ne, parent);
                emit_exit(b); // child exits immediately
                b.bind(parent);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
        LeBenchOp::ThreadCreate => {
            k.spawn(move |b| {
                let thread = b.new_label();
                let start = b.new_label();
                b.jmp(start);
                b.bind(thread);
                emit_exit(b); // thread body: exit immediately
                b.bind(start);
                let top = begin_loop(b, Reg::R7, iters);
                b.lea(Reg::R1, thread);
                emit_syscall(b, nr::THREAD_CREATE);
                emit_syscall(b, nr::YIELD); // let the thread run & die
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::{broadwell, ice_lake_server};

    #[test]
    fn every_op_completes_on_default_config() {
        let model = ice_lake_server();
        let params = BootParams::default();
        for op in LeBenchOp::ALL {
            let r = run_op(&model, &params, op);
            assert!(r.cycles_per_op > 0.0, "{}", op.name());
            assert!(r.cycles_per_op.is_finite());
        }
    }

    #[test]
    fn getpid_is_cheapest_and_fork_among_most_expensive() {
        let model = ice_lake_server();
        let params = BootParams::default();
        let results = run_suite(&model, &params);
        let get = |o: LeBenchOp| {
            results.iter().find(|r| r.op == o).unwrap().cycles_per_op
        };
        assert!(get(LeBenchOp::GetPid) < get(LeBenchOp::Fork));
        assert!(get(LeBenchOp::GetPid) < get(LeBenchOp::BigRead));
        assert!(get(LeBenchOp::SmallRead) < get(LeBenchOp::BigRead));
    }

    #[test]
    fn geomean_is_between_min_and_max() {
        let model = ice_lake_server();
        let results = run_suite(&model, &BootParams::default());
        let g = geomean(&results);
        let min = results.iter().map(|r| r.cycles_per_op).fold(f64::MAX, f64::min);
        let max = results.iter().map(|r| r.cycles_per_op).fold(0.0, f64::max);
        assert!(g >= min && g <= max);
    }

    #[test]
    fn broadwell_suite_slower_with_mitigations() {
        // The headline effect: on a Meltdown+MDS-vulnerable part, default
        // mitigations cost a large fraction of LEBench performance
        // (Figure 2 reports >30% on older Intel).
        let model = broadwell();
        let on = geomean(&run_suite(&model, &BootParams::default()));
        let off = geomean(&run_suite(&model, &BootParams::parse("mitigations=off")));
        let overhead = on / off - 1.0;
        assert!(
            overhead > 0.10,
            "expected sizeable mitigation overhead on Broadwell, got {:.1}%",
            overhead * 100.0
        );
    }

    #[test]
    fn ice_lake_suite_overhead_is_small() {
        // Figure 2: modern parts are down to ~3%.
        let model = ice_lake_server();
        let on = geomean(&run_suite(&model, &BootParams::default()));
        let off = geomean(&run_suite(&model, &BootParams::parse("mitigations=off")));
        let overhead = on / off - 1.0;
        assert!(
            overhead < 0.10,
            "modern parts should be cheap: got {:.1}%",
            overhead * 100.0
        );
    }
}
