//! Exit-code contract of the `regen` binary: usage errors are exit 2
//! (distinct from exit 1, which means a sweep ran but was not clean).

use std::process::Command;

fn regen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regen"))
}

#[test]
fn unknown_artifact_lists_valid_names_and_exits_2() {
    let out = regen().arg("table42").output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact: table42"), "{stderr}");
    // The error must enumerate what *is* valid.
    for name in ["figure2", "table1", "table9"] {
        assert!(stderr.contains(name), "artifact list names {name}: {stderr}");
    }
}

#[test]
fn unknown_flag_exits_2() {
    let out = regen().arg("--frobnicate").output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_exits_0() {
    let out = regen().arg("--help").output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--quick", "--keep-going", "--retries", "--resume", "--inject"] {
        assert!(stdout.contains(flag), "help documents {flag}");
    }
}

#[test]
fn cheap_artifact_regenerates_cleanly() {
    let out = regen().args(["--quick", "table2"]).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table 2"));
}

#[test]
fn injected_permanent_fault_exits_nonzero_with_keep_going() {
    let out = regen()
        .args([
            "--quick",
            "--keep-going",
            "--retries",
            "2",
            "--inject",
            "cell=Broadwell/getpid/[nopti]:kind=sim:times=forever",
            "figure2",
        ])
        .output()
        .expect("spawn regen");
    assert_eq!(out.status.code(), Some(1), "degraded sweep exits 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DEGRADED"), "{stderr}");
}
