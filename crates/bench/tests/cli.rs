//! Exit-code contract of the `regen` binary: usage errors are exit 2
//! (distinct from exit 1, which means a sweep ran but was not clean),
//! and `regen fsck` maps journal damage severity onto exit codes.

use std::path::{Path, PathBuf};
use std::process::Command;

fn regen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_regen"))
}

/// A scratch directory unique to this test (the suite runs tests in
/// parallel in one process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regen-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs a quick table1 sweep journaling into `journal`, returning
/// (exit code, stderr).
fn sweep(journal: &Path, extra: &[&str]) -> (Option<i32>, String) {
    let mut cmd = regen();
    cmd.args(["--quick", "--resume"]).arg(journal).args(extra).arg("table1");
    let out = cmd.output().expect("spawn regen");
    (out.status.code(), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn unknown_artifact_lists_valid_names_and_exits_2() {
    let out = regen().arg("table42").output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact: table42"), "{stderr}");
    // The error must enumerate what *is* valid.
    for name in ["figure2", "table1", "table9"] {
        assert!(stderr.contains(name), "artifact list names {name}: {stderr}");
    }
}

#[test]
fn unknown_flag_exits_2() {
    let out = regen().arg("--frobnicate").output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_exits_0() {
    let out = regen().arg("--help").output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for flag in ["--quick", "--keep-going", "--retries", "--resume", "--inject"] {
        assert!(stdout.contains(flag), "help documents {flag}");
    }
}

#[test]
fn cheap_artifact_regenerates_cleanly() {
    let out = regen().args(["--quick", "table2"]).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table 2"));
}

#[test]
fn fsck_without_a_path_exits_2() {
    let out = regen().arg("fsck").output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2));
    let out = regen().args(["fsck", "a", "b"]).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2));
    let out = regen().args(["fsck", "/nonexistent/journal.jsonl"]).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2), "unreadable journal is severity 2");
}

#[test]
fn truncated_journal_resumes_after_fsck() {
    let dir = scratch("torn");
    let journal = dir.join("run.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Seed the journal with a clean quick sweep, then tear its tail:
    // drop the final newline plus a few bytes, as a SIGKILL mid-append
    // would.
    let (code, stderr) = sweep(&journal, &[]);
    assert_eq!(code, Some(0), "{stderr}");
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    assert!(text.starts_with("#regen-journal v2\n"), "v2 header present");
    let torn = &text.as_bytes()[..text.len() - 5];
    assert!(!torn.ends_with(b"\n"));
    std::fs::write(&journal, torn).expect("tear the journal tail");

    // fsck: severity 1 (recoverable crash artifact), compacted rewrite.
    let out = regen().args(["fsck"]).arg(&journal).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(1), "torn tail is severity 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 truncated"), "{stderr}");
    assert!(stderr.contains("quarantined"), "{stderr}");
    assert!(dir.join("run.jsonl.quarantine").exists(), "quarantine file written");

    // A second fsck finds the compacted journal fully clean.
    let out = regen().args(["fsck"]).arg(&journal).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(0), "compacted journal is clean");

    // Resuming completes the sweep: the compacted journal replays
    // cleanly (no damage warning) and only the torn cell re-runs.
    let (code, stderr) = sweep(&journal, &[]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(!stderr.contains("warning: journal"), "compacted journal is clean: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_journal_is_detected_and_quarantined() {
    let dir = scratch("flip");
    let journal = dir.join("run.jsonl");
    let _ = std::fs::remove_file(&journal);

    let (code, stderr) = sweep(&journal, &[]);
    assert_eq!(code, Some(0), "{stderr}");
    // Flip one byte in the middle of the first entry line (silent media
    // corruption: the line structure survives, the checksum must not).
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
    let line_end = header_end
        + bytes[header_end..].iter().position(|&b| b == b'\n').expect("entry line");
    let mid = header_end + (line_end - header_end) / 2;
    assert_ne!(bytes[mid], b'\n');
    bytes[mid] ^= 0x01;
    std::fs::write(&journal, &bytes).expect("corrupt the journal");

    // The resumed sweep warns, re-runs the damaged cell, and still
    // exits 0 — corruption costs a re-measurement, never the sweep.
    let (code, stderr) = sweep(&journal, &[]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("corrupt"), "resume names the damage: {stderr}");

    // The journal is append-only, so the flipped line is still in
    // place; fsck quarantines it: severity 2.
    let out = regen().args(["fsck"]).arg(&journal).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(2), "corruption is severity 2");
    let q = std::fs::read_to_string(dir.join("run.jsonl.quarantine"))
        .expect("quarantine file written");
    assert!(!q.trim().is_empty(), "quarantine holds the damaged line");

    // After quarantine the journal is clean and the sweep resumes.
    let out = regen().args(["fsck"]).arg(&journal).output().expect("spawn regen");
    assert_eq!(out.status.code(), Some(0));
    let (code, stderr) = sweep(&journal, &[]);
    assert_eq!(code, Some(0), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_io_faults_damage_the_journal_without_failing_the_sweep() {
    let dir = scratch("io-inject");
    let journal = dir.join("run.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Damage every Broadwell cell's journal line: torn appends. The
    // sweep itself must stay clean (exit 0, no degraded artifacts).
    let (code, stderr) = sweep(
        &journal,
        &["--inject", "cell=Broadwell:kind=torn-write:times=1"],
    );
    assert_eq!(code, Some(0), "io faults never fail the sweep: {stderr}");
    assert!(stderr.contains("faults injected"), "{stderr}");

    // fsck classifies the damage (mid-file torn lines are corrupt,
    // a final torn line is truncated — either way nonzero severity).
    let out = regen().args(["fsck"]).arg(&journal).output().expect("spawn regen");
    assert!(
        matches!(out.status.code(), Some(1) | Some(2)),
        "damaged journal yields nonzero fsck severity: {:?}",
        out.status.code()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_permanent_fault_exits_nonzero_with_keep_going() {
    let out = regen()
        .args([
            "--quick",
            "--keep-going",
            "--retries",
            "2",
            "--inject",
            "cell=Broadwell/getpid/[nopti]:kind=sim:times=forever",
            "figure2",
        ])
        .output()
        .expect("spawn regen");
    assert_eq!(out.status.code(), Some(1), "degraded sweep exits 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("DEGRADED"), "{stderr}");
}
