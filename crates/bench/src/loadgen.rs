//! `regen loadgen`: an open-loop HTTP load generator for `regend`.
//!
//! Arrivals are scheduled on a fixed-rate clock *before* any response
//! comes back — the open-loop discipline — and each request's latency is
//! measured from its **scheduled due time**, not from when a worker got
//! around to sending it. A server that stalls therefore shows the stall
//! in the tail percentiles instead of silently slowing the offered load
//! (the coordinated-omission trap closed-loop generators fall into).
//!
//! A fixed pool of keep-alive [`Connection`]s carries the traffic:
//! worker `k` sends arrival `i` as soon as both `i`'s due time has
//! passed and `k`'s previous response has been read. Backlogged workers
//! thus *add* the queueing delay to the measured latency rather than
//! suppressing arrivals.
//!
//! Errors are counted, never retried — retry would hide exactly the
//! overload behaviour the generator exists to measure. 429s count as
//! responses (the server answered; that is its overload contract).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::client::Connection;

/// Options for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Full URL to hammer (e.g. `http://127.0.0.1:7979/artifact/table2`).
    pub url: String,
    /// Offered load, requests per second.
    pub rate: f64,
    /// Total arrivals to schedule.
    pub requests: u64,
    /// Keep-alive connections (= worker threads) carrying the load.
    pub connections: usize,
    /// Per-operation socket timeout.
    pub timeout: Duration,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            url: String::new(),
            rate: 200.0,
            requests: 1_000,
            connections: 8,
            timeout: Duration::from_secs(30),
        }
    }
}

/// What one loadgen run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Arrivals scheduled.
    pub requests: u64,
    /// Responses fully read (any status).
    pub responses: u64,
    /// Responses with status 200.
    pub responses_200: u64,
    /// Responses with status 429 (admission shed).
    pub responses_429: u64,
    /// Transport/protocol failures (no response).
    pub errors: u64,
    /// Body bytes received across all responses.
    pub body_bytes: u64,
    /// TCP sockets the pool opened (ideally == `connections`).
    pub sockets_opened: u64,
    /// Keep-alive connections in the pool.
    pub connections: usize,
    /// Offered rate (requests/sec).
    pub offered_rps: f64,
    /// Wall seconds from first due time to last response.
    pub elapsed_secs: f64,
    /// Due-time-to-response-read latencies, microseconds, sorted.
    pub latencies_micros: Vec<u64>,
}

impl LoadgenReport {
    /// Achieved throughput: completed responses over the wall clock.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed_secs > 0.0 { self.responses as f64 / self.elapsed_secs } else { 0.0 }
    }

    /// The `p`-th percentile latency in microseconds (`p` in 0..=100),
    /// nearest-rank definition. Zero when nothing completed.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        let n = self.latencies_micros.len();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_micros[rank - 1]
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.latencies_micros.last().copied().unwrap_or(0)
    }

    /// The human-readable summary `regen loadgen` prints.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "loadgen: {} arrival(s) at {:.0} req/s over {} keep-alive connection(s)",
            self.requests, self.offered_rps, self.connections
        );
        let _ = writeln!(
            s,
            "loadgen: {} response(s) ({} x 200, {} x 429), {} error(s), {} socket(s) opened, {} body byte(s)",
            self.responses,
            self.responses_200,
            self.responses_429,
            self.errors,
            self.sockets_opened,
            self.body_bytes
        );
        let _ = writeln!(
            s,
            "loadgen: achieved {:.1} req/s in {:.2}s",
            self.achieved_rps(),
            self.elapsed_secs
        );
        let _ = writeln!(
            s,
            "loadgen: latency from scheduled arrival: p50 {} us, p90 {} us, p99 {} us, max {} us",
            self.percentile_micros(50.0),
            self.percentile_micros(90.0),
            self.percentile_micros(99.0),
            self.max_micros()
        );
        s
    }

    /// A power-of-two-bucket latency histogram (text, one `<= N us`
    /// line per occupied bucket) — the artifact CI uploads.
    pub fn render_histogram(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# loadgen latency histogram ({} sample(s), microseconds)", self.latencies_micros.len());
        if self.latencies_micros.is_empty() {
            return s;
        }
        let max = self.max_micros();
        let mut bound = 1u64;
        let mut from = 0usize;
        loop {
            // latencies are sorted: count the slice within this bucket.
            let to = self.latencies_micros.partition_point(|&v| v <= bound);
            let count = to - from;
            if count > 0 {
                let _ = writeln!(s, "le {:>10} us: {count}", bound);
            }
            from = to;
            if bound >= max {
                break;
            }
            bound = bound.saturating_mul(2);
        }
        s
    }
}

/// Runs the open-loop generator. Fails only on setup errors (bad URL);
/// per-request failures are counted in the report.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    if opts.rate <= 0.0 {
        return Err("rate must be positive".to_string());
    }
    if opts.requests == 0 || opts.connections == 0 {
        return Err("requests and connections must be at least 1".to_string());
    }
    let (authority, path) = crate::client::split_url(&opts.url)?;
    let interval = Duration::from_secs_f64(1.0 / opts.rate);

    struct WorkerOut {
        latencies: Vec<u64>,
        responses: u64,
        responses_200: u64,
        responses_429: u64,
        errors: u64,
        body_bytes: u64,
        sockets: u64,
    }

    let next = AtomicU64::new(0);
    let start = Instant::now() + Duration::from_millis(5);
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut conn = Connection::new(authority, opts.timeout);
                    let mut out = WorkerOut {
                        latencies: Vec::new(),
                        responses: 0,
                        responses_200: 0,
                        responses_429: 0,
                        errors: 0,
                        body_bytes: 0,
                        sockets: 0,
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= opts.requests {
                            break;
                        }
                        // Open loop: arrival i is *due* at a fixed time
                        // regardless of how the server is doing.
                        let due = start + interval.mul_f64(i as f64);
                        let now = Instant::now();
                        if now < due {
                            std::thread::sleep(due - now);
                        }
                        match conn.get(path) {
                            Ok(r) => {
                                out.responses += 1;
                                match r.status {
                                    200 => out.responses_200 += 1,
                                    429 => out.responses_429 += 1,
                                    _ => {}
                                }
                                out.body_bytes += r.body.len() as u64;
                                // Latency from the scheduled due time:
                                // backlog shows up here, not in a
                                // silently-reduced offered rate.
                                out.latencies
                                    .push(due.elapsed().as_micros().min(u128::from(u64::MAX))
                                        as u64);
                            }
                            Err(_) => out.errors += 1,
                        }
                    }
                    out.sockets = conn.sockets_opened();
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker")).collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = outs.iter().flat_map(|o| o.latencies.iter().copied()).collect();
    latencies.sort_unstable();
    Ok(LoadgenReport {
        requests: opts.requests,
        responses: outs.iter().map(|o| o.responses).sum(),
        responses_200: outs.iter().map(|o| o.responses_200).sum(),
        responses_429: outs.iter().map(|o| o.responses_429).sum(),
        errors: outs.iter().map(|o| o.errors).sum(),
        body_bytes: outs.iter().map(|o| o.body_bytes).sum(),
        sockets_opened: outs.iter().map(|o| o.sockets).sum(),
        connections: opts.connections,
        offered_rps: opts.rate,
        elapsed_secs,
        latencies_micros: latencies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies: Vec<u64>) -> LoadgenReport {
        LoadgenReport {
            requests: latencies.len() as u64,
            responses: latencies.len() as u64,
            responses_200: latencies.len() as u64,
            responses_429: 0,
            errors: 0,
            body_bytes: 0,
            sockets_opened: 1,
            connections: 1,
            offered_rps: 100.0,
            elapsed_secs: 2.0,
            latencies_micros: latencies,
        }
    }

    #[test]
    fn percentiles_read_the_sorted_tail() {
        let r = report_with((1..=100).collect());
        assert_eq!(r.percentile_micros(50.0), 50);
        assert_eq!(r.percentile_micros(99.0), 99);
        assert_eq!(r.max_micros(), 100);
        assert_eq!(r.achieved_rps(), 50.0);
        let empty = report_with(vec![]);
        assert_eq!(empty.percentile_micros(99.0), 0);
        assert_eq!(empty.max_micros(), 0);
    }

    #[test]
    fn histogram_buckets_double_and_cover_every_sample() {
        let r = report_with(vec![1, 2, 3, 700, 100_000]);
        let h = r.render_histogram();
        // Each occupied power-of-two bucket appears once; counts sum to
        // the sample count.
        let total: usize = h
            .lines()
            .filter(|l| l.starts_with("le "))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 5, "{h}");
        assert!(h.contains("le          1 us: 1"), "{h}");
        assert!(h.contains("le          2 us: 1"), "{h}");
    }

    #[test]
    fn rejects_nonsense_options() {
        let bad = LoadgenOptions { rate: 0.0, ..LoadgenOptions::default() };
        assert!(run_loadgen(&bad).is_err());
        let bad = LoadgenOptions {
            url: "gopher://x".to_string(),
            ..LoadgenOptions::default()
        };
        assert!(run_loadgen(&bad).is_err());
    }
}
