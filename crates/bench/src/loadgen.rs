//! `regen loadgen`: an open-loop HTTP load generator for `regend`.
//!
//! Arrivals are scheduled on a fixed-rate clock *before* any response
//! comes back — the open-loop discipline — and each request's latency is
//! measured from its **scheduled due time**, not from when a worker got
//! around to sending it. A server that stalls therefore shows the stall
//! in the tail percentiles instead of silently slowing the offered load
//! (the coordinated-omission trap closed-loop generators fall into).
//!
//! A fixed pool of keep-alive [`Connection`]s carries the traffic:
//! worker `k` sends arrival `i` as soon as both `i`'s due time has
//! passed and `k`'s previous response has been read. Backlogged workers
//! thus *add* the queueing delay to the measured latency rather than
//! suppressing arrivals.
//!
//! Errors are counted, never retried — retry would hide exactly the
//! overload behaviour the generator exists to measure. 429s count as
//! responses (the server answered; that is its overload contract).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::client::Connection;

/// Options for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Full URLs to hammer (e.g. `http://127.0.0.1:7979/artifact/table2`).
    /// Arrival `i` deterministically targets `targets[i % len]`, so a
    /// proxy and a direct shard can be loaded side by side and their
    /// latency splits compared.
    pub targets: Vec<String>,
    /// Offered load, requests per second (across all targets).
    pub rate: f64,
    /// Total arrivals to schedule.
    pub requests: u64,
    /// Keep-alive connection sets (= worker threads) carrying the load;
    /// each worker holds one connection per target.
    pub connections: usize,
    /// Per-operation socket timeout.
    pub timeout: Duration,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            targets: Vec::new(),
            rate: 200.0,
            requests: 1_000,
            connections: 8,
            timeout: Duration::from_secs(30),
        }
    }
}

/// Per-target slice of a loadgen run (meaningful with several
/// `--target`s: the proxy-vs-direct-shard overhead is the difference
/// between two splits).
#[derive(Debug, Clone)]
pub struct TargetStats {
    /// The target URL this split covers.
    pub url: String,
    /// Responses fully read (any status).
    pub responses: u64,
    /// Responses with status 200.
    pub responses_200: u64,
    /// Transport/protocol failures (no response).
    pub errors: u64,
    /// Due-time-to-response-read latencies, microseconds, sorted.
    pub latencies_micros: Vec<u64>,
}

impl TargetStats {
    /// Nearest-rank percentile of this split, microseconds.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        percentile(&self.latencies_micros, p)
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// What one loadgen run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Arrivals scheduled.
    pub requests: u64,
    /// Responses fully read (any status).
    pub responses: u64,
    /// Responses with status 200.
    pub responses_200: u64,
    /// Responses with status 429 (admission shed).
    pub responses_429: u64,
    /// Transport/protocol failures (no response).
    pub errors: u64,
    /// Body bytes received across all responses.
    pub body_bytes: u64,
    /// TCP sockets the pool opened (ideally == `connections`).
    pub sockets_opened: u64,
    /// Keep-alive connections in the pool.
    pub connections: usize,
    /// Offered rate (requests/sec).
    pub offered_rps: f64,
    /// Wall seconds from first due time to last response.
    pub elapsed_secs: f64,
    /// Due-time-to-response-read latencies, microseconds, sorted.
    pub latencies_micros: Vec<u64>,
    /// Per-target splits, in `targets` order (one entry per target).
    pub per_target: Vec<TargetStats>,
}

impl LoadgenReport {
    /// Achieved throughput: completed responses over the wall clock.
    pub fn achieved_rps(&self) -> f64 {
        if self.elapsed_secs > 0.0 { self.responses as f64 / self.elapsed_secs } else { 0.0 }
    }

    /// The `p`-th percentile latency in microseconds (`p` in 0..=100),
    /// nearest-rank definition. Zero when nothing completed.
    pub fn percentile_micros(&self, p: f64) -> u64 {
        percentile(&self.latencies_micros, p)
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.latencies_micros.last().copied().unwrap_or(0)
    }

    /// The human-readable summary `regen loadgen` prints.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "loadgen: {} arrival(s) at {:.0} req/s over {} keep-alive connection(s)",
            self.requests, self.offered_rps, self.connections
        );
        let _ = writeln!(
            s,
            "loadgen: {} response(s) ({} x 200, {} x 429), {} error(s), {} socket(s) opened, {} body byte(s)",
            self.responses,
            self.responses_200,
            self.responses_429,
            self.errors,
            self.sockets_opened,
            self.body_bytes
        );
        let _ = writeln!(
            s,
            "loadgen: achieved {:.1} req/s in {:.2}s",
            self.achieved_rps(),
            self.elapsed_secs
        );
        let _ = writeln!(
            s,
            "loadgen: latency from scheduled arrival: p50 {} us, p90 {} us, p99 {} us, max {} us",
            self.percentile_micros(50.0),
            self.percentile_micros(90.0),
            self.percentile_micros(99.0),
            self.max_micros()
        );
        // Per-target splits only matter (and only print) when several
        // targets were loaded; the single-target lines above stay
        // byte-stable for the CI greps and the committed baseline.
        if self.per_target.len() > 1 {
            for t in &self.per_target {
                let _ = writeln!(
                    s,
                    "loadgen: target {}: {} response(s) ({} x 200), {} error(s), p50 {} us, p99 {} us",
                    t.url,
                    t.responses,
                    t.responses_200,
                    t.errors,
                    t.percentile_micros(50.0),
                    t.percentile_micros(99.0)
                );
            }
        }
        s
    }

    /// A power-of-two-bucket latency histogram (text, one `<= N us`
    /// line per occupied bucket) — the artifact CI uploads.
    pub fn render_histogram(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# loadgen latency histogram ({} sample(s), microseconds)", self.latencies_micros.len());
        if self.latencies_micros.is_empty() {
            return s;
        }
        let max = self.max_micros();
        let mut bound = 1u64;
        let mut from = 0usize;
        loop {
            // latencies are sorted: count the slice within this bucket.
            let to = self.latencies_micros.partition_point(|&v| v <= bound);
            let count = to - from;
            if count > 0 {
                let _ = writeln!(s, "le {:>10} us: {count}", bound);
            }
            from = to;
            if bound >= max {
                break;
            }
            bound = bound.saturating_mul(2);
        }
        s
    }
}

/// Runs the open-loop generator. Fails only on setup errors (bad URL);
/// per-request failures are counted in the report.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    if opts.rate <= 0.0 {
        return Err("rate must be positive".to_string());
    }
    if opts.requests == 0 || opts.connections == 0 {
        return Err("requests and connections must be at least 1".to_string());
    }
    if opts.targets.is_empty() {
        return Err("at least one target URL is required".to_string());
    }
    let parsed: Vec<(&str, &str)> = opts
        .targets
        .iter()
        .map(|t| crate::client::split_url(t))
        .collect::<Result<_, _>>()?;
    let interval = Duration::from_secs_f64(1.0 / opts.rate);

    #[derive(Clone, Default)]
    struct TargetOut {
        latencies: Vec<u64>,
        responses: u64,
        responses_200: u64,
        errors: u64,
    }

    struct WorkerOut {
        per_target: Vec<TargetOut>,
        responses: u64,
        responses_200: u64,
        responses_429: u64,
        errors: u64,
        body_bytes: u64,
        sockets: u64,
    }

    let next = AtomicU64::new(0);
    let start = Instant::now() + Duration::from_millis(5);
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|_| {
                let next = &next;
                let parsed = &parsed;
                s.spawn(move || {
                    // One keep-alive connection per target: target
                    // rotation must not cost reconnects.
                    let mut conns: Vec<Connection> = parsed
                        .iter()
                        .map(|(authority, _)| Connection::new(authority, opts.timeout))
                        .collect();
                    let mut out = WorkerOut {
                        per_target: vec![TargetOut::default(); parsed.len()],
                        responses: 0,
                        responses_200: 0,
                        responses_429: 0,
                        errors: 0,
                        body_bytes: 0,
                        sockets: 0,
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= opts.requests {
                            break;
                        }
                        // Arrival i deterministically targets
                        // targets[i % T], so splits are comparable
                        // across runs.
                        let t = (i % parsed.len() as u64) as usize;
                        // Open loop: arrival i is *due* at a fixed time
                        // regardless of how the server is doing.
                        let due = start + interval.mul_f64(i as f64);
                        let now = Instant::now();
                        if now < due {
                            std::thread::sleep(due - now);
                        }
                        match conns[t].get(parsed[t].1) {
                            Ok(r) => {
                                out.responses += 1;
                                out.per_target[t].responses += 1;
                                match r.status {
                                    200 => {
                                        out.responses_200 += 1;
                                        out.per_target[t].responses_200 += 1;
                                    }
                                    429 => out.responses_429 += 1,
                                    _ => {}
                                }
                                out.body_bytes += r.body.len() as u64;
                                // Latency from the scheduled due time:
                                // backlog shows up here, not in a
                                // silently-reduced offered rate.
                                let lat = due.elapsed().as_micros().min(u128::from(u64::MAX))
                                    as u64;
                                out.per_target[t].latencies.push(lat);
                            }
                            Err(_) => {
                                out.errors += 1;
                                out.per_target[t].errors += 1;
                            }
                        }
                    }
                    out.sockets = conns.iter().map(Connection::sockets_opened).sum();
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker")).collect()
    });
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = outs
        .iter()
        .flat_map(|o| o.per_target.iter().flat_map(|t| t.latencies.iter().copied()))
        .collect();
    latencies.sort_unstable();
    let per_target: Vec<TargetStats> = opts
        .targets
        .iter()
        .enumerate()
        .map(|(t, url)| {
            let mut lat: Vec<u64> = outs
                .iter()
                .flat_map(|o| o.per_target[t].latencies.iter().copied())
                .collect();
            lat.sort_unstable();
            TargetStats {
                url: url.clone(),
                responses: outs.iter().map(|o| o.per_target[t].responses).sum(),
                responses_200: outs.iter().map(|o| o.per_target[t].responses_200).sum(),
                errors: outs.iter().map(|o| o.per_target[t].errors).sum(),
                latencies_micros: lat,
            }
        })
        .collect();
    Ok(LoadgenReport {
        requests: opts.requests,
        responses: outs.iter().map(|o| o.responses).sum(),
        responses_200: outs.iter().map(|o| o.responses_200).sum(),
        responses_429: outs.iter().map(|o| o.responses_429).sum(),
        errors: outs.iter().map(|o| o.errors).sum(),
        body_bytes: outs.iter().map(|o| o.body_bytes).sum(),
        sockets_opened: outs.iter().map(|o| o.sockets).sum(),
        connections: opts.connections,
        offered_rps: opts.rate,
        elapsed_secs,
        latencies_micros: latencies,
        per_target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies: Vec<u64>) -> LoadgenReport {
        LoadgenReport {
            requests: latencies.len() as u64,
            responses: latencies.len() as u64,
            responses_200: latencies.len() as u64,
            responses_429: 0,
            errors: 0,
            body_bytes: 0,
            sockets_opened: 1,
            connections: 1,
            offered_rps: 100.0,
            elapsed_secs: 2.0,
            latencies_micros: latencies,
            per_target: Vec::new(),
        }
    }

    #[test]
    fn percentiles_read_the_sorted_tail() {
        let r = report_with((1..=100).collect());
        assert_eq!(r.percentile_micros(50.0), 50);
        assert_eq!(r.percentile_micros(99.0), 99);
        assert_eq!(r.max_micros(), 100);
        assert_eq!(r.achieved_rps(), 50.0);
        let empty = report_with(vec![]);
        assert_eq!(empty.percentile_micros(99.0), 0);
        assert_eq!(empty.max_micros(), 0);
    }

    #[test]
    fn histogram_buckets_double_and_cover_every_sample() {
        let r = report_with(vec![1, 2, 3, 700, 100_000]);
        let h = r.render_histogram();
        // Each occupied power-of-two bucket appears once; counts sum to
        // the sample count.
        let total: usize = h
            .lines()
            .filter(|l| l.starts_with("le "))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 5, "{h}");
        assert!(h.contains("le          1 us: 1"), "{h}");
        assert!(h.contains("le          2 us: 1"), "{h}");
    }

    #[test]
    fn rejects_nonsense_options() {
        let bad = LoadgenOptions { rate: 0.0, ..LoadgenOptions::default() };
        assert!(run_loadgen(&bad).is_err());
        let bad = LoadgenOptions {
            targets: vec!["gopher://x".to_string()],
            ..LoadgenOptions::default()
        };
        assert!(run_loadgen(&bad).is_err());
        let bad = LoadgenOptions { targets: Vec::new(), ..LoadgenOptions::default() };
        assert!(run_loadgen(&bad).is_err(), "no targets is a setup error");
    }

    /// The aggregate summary lines are byte-stable regardless of the
    /// target count (CI greps them); per-target split lines appear only
    /// with several targets.
    #[test]
    fn per_target_splits_render_only_for_multiple_targets() {
        let mut r = report_with(vec![10, 20, 30, 40]);
        let single = TargetStats {
            url: "http://a:1/x".to_string(),
            responses: 4,
            responses_200: 4,
            errors: 0,
            latencies_micros: vec![10, 20, 30, 40],
        };
        r.per_target = vec![single.clone()];
        let text = r.render_text();
        assert!(!text.contains("loadgen: target"), "{text}");
        assert!(text.contains("loadgen: 4 response(s) (4 x 200, 0 x 429), 0 error(s)"), "{text}");

        r.per_target = vec![
            TargetStats {
                url: "http://a:1/x".to_string(),
                responses: 2,
                responses_200: 2,
                errors: 0,
                latencies_micros: vec![10, 30],
            },
            TargetStats {
                url: "http://b:2/x".to_string(),
                responses: 2,
                responses_200: 1,
                errors: 1,
                latencies_micros: vec![20, 40],
            },
        ];
        let text = r.render_text();
        assert!(text.contains("loadgen: target http://a:1/x: 2 response(s) (2 x 200), 0 error(s)"), "{text}");
        assert!(text.contains("loadgen: target http://b:2/x: 2 response(s) (1 x 200), 1 error(s)"), "{text}");
        // The aggregate lines are unchanged by the splits.
        assert!(text.contains("loadgen: 4 response(s) (4 x 200, 0 x 429), 0 error(s)"), "{text}");
    }

    /// A two-target run splits arrivals deterministically (i % T) and
    /// keeps one keep-alive socket per (worker, target).
    #[test]
    fn loadgen_splits_arrivals_across_targets() {
        fn tiny_server(listener: std::net::TcpListener) -> std::thread::JoinHandle<u64> {
            std::thread::spawn(move || {
                let mut served = 0u64;
                // One connection per worker; serve until the socket
                // closes.
                let (mut stream, _) = listener.accept().unwrap();
                use std::io::{Read, Write};
                let mut buf = Vec::new();
                let mut byte = [0u8; 1];
                loop {
                    match stream.read(&mut byte) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => buf.push(byte[0]),
                    }
                    if buf.ends_with(b"\r\n\r\n") {
                        buf.clear();
                        let body = "ok\n";
                        let reply = format!(
                            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                            body.len()
                        );
                        stream.write_all(reply.as_bytes()).unwrap();
                        served += 1;
                    }
                }
                served
            })
        }
        let la = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let lb = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let urls = vec![
            format!("http://{}/x", la.local_addr().unwrap()),
            format!("http://{}/x", lb.local_addr().unwrap()),
        ];
        let ha = tiny_server(la);
        let hb = tiny_server(lb);
        let opts = LoadgenOptions {
            targets: urls.clone(),
            rate: 2_000.0,
            requests: 10,
            connections: 1,
            timeout: Duration::from_secs(5),
        };
        let report = run_loadgen(&opts).unwrap();
        assert_eq!(report.responses, 10);
        assert_eq!(report.errors, 0);
        assert_eq!(report.per_target.len(), 2);
        assert_eq!(report.per_target[0].responses, 5, "even split of 10 over 2");
        assert_eq!(report.per_target[1].responses, 5);
        assert_eq!(report.sockets_opened, 2, "one socket per (worker, target)");
        drop(report);
        assert_eq!(ha.join().unwrap(), 5);
        assert_eq!(hb.join().unwrap(), 5);
    }
}
