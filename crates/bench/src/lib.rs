//! # bench — regeneration harness and timing benchmarks
//!
//! The `regen` binary reprints every table and figure of the paper from
//! the simulation (see `cargo run -p bench --bin regen -- --help`); the
//! plain-`main` benches under `benches/` time the harness itself, one
//! group per paper artifact.
//!
//! The regeneration sweep itself is a library ([`run_regen`]) so the
//! integration tests can drive `--keep-going`, fault injection, and
//! `--resume` without spawning processes. The [`client`] module is the
//! other half of the serving story: a small HTTP client behind
//! `regen fetch`, for pulling renderings off a running `regend`.

pub mod campaign;
pub mod client;
pub mod loadgen;
pub mod uarch_bench;

use std::path::PathBuf;
use std::sync::Arc;

use cpu_models::CpuId;
use spectrebench::experiments as exp;
use spectrebench::obs::{metrics, trace};
use spectrebench::{
    atomic_write, default_jobs, EventBus, Executor, ExperimentError, FaultPlan, Harness,
    HarnessStats, Journal, RetryPolicy,
};

/// Every regenerable artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// Table 1: default mitigations.
    Table1,
    /// Table 2: CPU inventory.
    Table2,
    /// Figure 2: LEBench attribution.
    Figure2,
    /// Figure 3: Octane attribution.
    Figure3,
    /// Table 3: entry/exit primitives.
    Table3,
    /// Table 4: verw.
    Table4,
    /// Table 5: indirect branches.
    Table5,
    /// Table 6: IBPB.
    Table6,
    /// Table 7: RSB fill.
    Table7,
    /// Table 8: lfence.
    Table8,
    /// Figure 5: SSBD on PARSEC.
    Figure5,
    /// Table 9: speculation matrix, IBRS off.
    Table9,
    /// Table 10: speculation matrix, IBRS on.
    Table10,
    /// §4.4 VM workloads.
    VmWorkloads,
    /// §6.2.2 eIBRS bimodal entries.
    EibrsBimodal,
    /// The eBPF/kernel boundary (the paper's acknowledged gap).
    EbpfBoundary,
    /// §7 what-ifs + design ablations (beyond the paper's artifacts).
    Discussion,
    /// Targeted Spectre-V1 hardening vs the blanket policies, across the
    /// paper CPUs and the extended RISC-V catalog (beyond the paper).
    Targeted,
}

/// One regenerated artifact: its text plus whether any slice had to be
/// bridged over a permanently failed lattice cell.
#[derive(Debug, Clone)]
pub struct ArtifactOutput {
    /// The plain-text rendering.
    pub text: String,
    /// Whether the artifact is partial (degraded attribution slices).
    pub degraded: bool,
}

impl ArtifactOutput {
    fn clean(text: String) -> ArtifactOutput {
        ArtifactOutput { text, degraded: false }
    }
}

impl Artifact {
    /// All artifacts in paper order.
    pub const ALL: [Artifact; 18] = [
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Figure2,
        Artifact::Figure3,
        Artifact::Table3,
        Artifact::Table4,
        Artifact::Table5,
        Artifact::Table6,
        Artifact::Table7,
        Artifact::Table8,
        Artifact::Figure5,
        Artifact::Table9,
        Artifact::Table10,
        Artifact::VmWorkloads,
        Artifact::EibrsBimodal,
        Artifact::EbpfBoundary,
        Artifact::Discussion,
        Artifact::Targeted,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::Table1 => "table1",
            Artifact::Table2 => "table2",
            Artifact::Figure2 => "figure2",
            Artifact::Figure3 => "figure3",
            Artifact::Table3 => "table3",
            Artifact::Table4 => "table4",
            Artifact::Table5 => "table5",
            Artifact::Table6 => "table6",
            Artifact::Table7 => "table7",
            Artifact::Table8 => "table8",
            Artifact::Figure5 => "figure5",
            Artifact::Table9 => "table9",
            Artifact::Table10 => "table10",
            Artifact::VmWorkloads => "vm",
            Artifact::EibrsBimodal => "eibrs-bimodal",
            Artifact::EbpfBoundary => "ebpf",
            Artifact::Discussion => "discussion",
            Artifact::Targeted => "targeted",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Artifact> {
        Artifact::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// The closest valid artifact name by edit distance, for
    /// "did you mean" hints on unknown names. `None` when nothing is
    /// plausibly close.
    pub fn suggest(name: &str) -> Option<&'static str> {
        Artifact::ALL
            .iter()
            .map(|a| (edit_distance(name, a.name()), a.name()))
            .min()
            .filter(|(d, _)| *d <= 3 && *d < name.len())
            .map(|(_, n)| n)
    }

    /// Paper caption.
    pub fn caption(self) -> &'static str {
        match self {
            Artifact::Table1 => "Table 1: default mitigations used by Linux on each processor",
            Artifact::Table2 => "Table 2: evaluated CPUs",
            Artifact::Figure2 => "Figure 2: mitigation overhead on LEBench (geomean, attributed)",
            Artifact::Figure3 => "Figure 3: Octane slowdown from JS and OS mitigations",
            Artifact::Table3 => "Table 3: syscall/sysret/swap-cr3 cycles",
            Artifact::Table4 => "Table 4: verw buffer-clear cycles",
            Artifact::Table5 => "Table 5: indirect branch cycles per mitigation",
            Artifact::Table6 => "Table 6: IBPB cycles",
            Artifact::Table7 => "Table 7: RSB stuffing cycles",
            Artifact::Table8 => "Table 8: lfence cycles",
            Artifact::Figure5 => "Figure 5: SSBD slowdown on PARSEC",
            Artifact::Table9 => "Table 9: speculation matrix (IBRS disabled)",
            Artifact::Table10 => "Table 10: speculation matrix (IBRS enabled)",
            Artifact::VmWorkloads => "Section 4.4: VM workloads",
            Artifact::EibrsBimodal => "Section 6.2.2: eIBRS bimodal kernel-entry latency",
            Artifact::EbpfBoundary => {
                "Beyond the paper: the eBPF/kernel boundary (verifier masking cost)"
            }
            Artifact::Discussion => {
                "Beyond the paper: section 7 what-ifs and design ablations"
            }
            Artifact::Targeted => {
                "Beyond the paper: targeted Spectre V1 hardening vs blanket (incl. RISC-V)"
            }
        }
    }

    /// Regenerates the artifact through `exec` (worker pool, retry,
    /// watchdog, fault injection, cell cache, journaling) and returns
    /// its text rendering.
    ///
    /// `quick` trades workload size for speed where the driver supports
    /// it (used by tests; the full run is what EXPERIMENTS.md records).
    pub fn regenerate(
        self,
        quick: bool,
        exec: &Executor,
    ) -> Result<ArtifactOutput, ExperimentError> {
        let out = match self {
            Artifact::Table1 => {
                ArtifactOutput::clean(exp::table1::render(&exp::table1::run(exec)?))
            }
            Artifact::Table2 => ArtifactOutput::clean(exp::table2::render()),
            Artifact::Figure2 => {
                let fig = exp::figure2::run(exec, &CpuId::ALL, quick)?;
                ArtifactOutput {
                    text: exp::figure2::render(&fig),
                    degraded: !fig.failures().is_empty(),
                }
            }
            Artifact::Figure3 => ArtifactOutput::clean(exp::figure3::render(
                &exp::figure3::run(exec, &CpuId::ALL, quick)?,
            )),
            Artifact::Table3 => ArtifactOutput::clean(exp::tables3to8::render_table3(exec)?),
            Artifact::Table4 => ArtifactOutput::clean(exp::tables3to8::render_table4(exec)?),
            Artifact::Table5 => ArtifactOutput::clean(exp::tables3to8::render_table5(exec)?),
            Artifact::Table6 => ArtifactOutput::clean(exp::tables3to8::render_table6(exec)?),
            Artifact::Table7 => ArtifactOutput::clean(exp::tables3to8::render_table7(exec)?),
            Artifact::Table8 => ArtifactOutput::clean(exp::tables3to8::render_table8(exec)?),
            Artifact::Figure5 => ArtifactOutput::clean(exp::figure5::render(
                &exp::figure5::run(exec, &CpuId::ALL)?,
            )),
            Artifact::Table9 => ArtifactOutput::clean(exp::tables9and10::render(
                &exp::tables9and10::run(exec, false)?,
            )),
            Artifact::Table10 => ArtifactOutput::clean(exp::tables9and10::render(
                &exp::tables9and10::run(exec, true)?,
            )),
            Artifact::VmWorkloads => {
                let cpus: &[CpuId] = if quick {
                    &[CpuId::SkylakeClient, CpuId::CascadeLake]
                } else {
                    &CpuId::ALL
                };
                ArtifactOutput::clean(exp::vm::render(&exp::vm::run(exec, cpus)?))
            }
            Artifact::EibrsBimodal => {
                let mut s = String::new();
                for id in [CpuId::CascadeLake, CpuId::IceLakeClient, CpuId::IceLakeServer] {
                    s.push_str(&format!("{}:\n", id.microarch()));
                    s.push_str(&exp::eibrs_bimodal::render(&exp::eibrs_bimodal::run(
                        exec,
                        &id.model(),
                        128,
                    )?));
                }
                ArtifactOutput::clean(s)
            }
            Artifact::EbpfBoundary => {
                let cpus: &[CpuId] = if quick {
                    &[CpuId::Broadwell, CpuId::IceLakeServer]
                } else {
                    &CpuId::ALL
                };
                ArtifactOutput::clean(exp::ebpf::render(&exp::ebpf::run(exec, cpus)?))
            }
            Artifact::Discussion => {
                let cpus: &[CpuId] = if quick {
                    &[CpuId::SkylakeClient, CpuId::IceLakeServer]
                } else {
                    &CpuId::ALL
                };
                let mut s = String::new();
                s.push_str("Spectre V2 strategy (LEBench overhead, V2 isolated):\n");
                s.push_str(&exp::ablations::render_v2_strategies(exec, cpus)?);
                s.push_str("\nSection 7 what-ifs (suite-score gains):\n");
                s.push_str(&exp::ablations::render_discussion(exec, cpus)?);
                let a = exp::ablations::pcid_ablation(exec, CpuId::Broadwell)?;
                s.push_str(&format!(
                    "\nPCID ablation on Broadwell: PTI overhead {:.1}% with PCID, {:.1}% without\n",
                    a.with_pcid * 100.0,
                    a.without_pcid * 100.0
                ));
                s.push_str("\nMDS: verw vs disabling SMT (Table 1's '!'):\n");
                s.push_str(&exp::smt::render(&exp::smt::run(
                    exec,
                    &[CpuId::Broadwell, CpuId::SkylakeClient, CpuId::CascadeLake],
                )?));
                ArtifactOutput::clean(s)
            }
            Artifact::Targeted => ArtifactOutput::clean(exp::targeted::render(
                &exp::targeted::run(exec, quick)?,
            )),
        };
        Ok(out)
    }
}

/// Levenshtein edit distance (insert/delete/substitute, all cost 1);
/// powers [`Artifact::suggest`]. Both strings are short CLI names, so
/// the O(nm) two-row DP is plenty.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Options for one regeneration sweep.
#[derive(Debug, Clone, Default)]
pub struct RegenOptions {
    /// Artifacts to regenerate, in order. Empty means all of them.
    pub artifacts: Vec<Artifact>,
    /// Use the quick workload variants.
    pub quick: bool,
    /// Keep regenerating later artifacts after one fails.
    pub keep_going: bool,
    /// Override the retry limit (attempts per cell).
    pub retries: Option<u32>,
    /// Deterministic fault injection plan.
    pub inject: Option<FaultPlan>,
    /// Journal path: completed cells are recorded here, and cells
    /// already present (with a matching seed) are reused instead of
    /// re-measured.
    pub resume: Option<PathBuf>,
    /// Worker threads for the executor. `None` uses
    /// [`spectrebench::default_jobs`] (the `REGEN_JOBS` environment
    /// variable, falling back to the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Write a Chrome trace-event JSON file (one lane per worker;
    /// loadable in Perfetto or `chrome://tracing`) here after the sweep.
    pub trace_out: Option<PathBuf>,
    /// Write a Prometheus-style text metrics exposition here after the
    /// sweep.
    pub metrics_out: Option<PathBuf>,
    /// Write the concatenated artifact renderings here (atomically:
    /// tmp + fsync + rename) in addition to stdout. This is what the
    /// crash/resume proof byte-compares against the committed golden
    /// file — a killed run must leave either the old artifact or the
    /// complete new one, never a torn hybrid.
    pub out: Option<PathBuf>,
    /// Record events on this bus instead of a fresh one. Tests pass a
    /// bus over a virtual clock; when `None`, a bus is created only if
    /// `trace_out` or `metrics_out` asks for one.
    pub obs: Option<Arc<EventBus>>,
}

/// The outcome of one artifact within a sweep.
#[derive(Debug)]
pub struct ArtifactResult {
    /// Which artifact.
    pub artifact: Artifact,
    /// The rendering, or why it could not be produced.
    pub outcome: Result<ArtifactOutput, ExperimentError>,
    /// Cell-level counters for this artifact alone (cells simulated,
    /// served from the cache, served from the journal, ...).
    pub cells: HarnessStats,
}

/// The outcome of a regeneration sweep.
#[derive(Debug)]
pub struct RegenReport {
    /// Per-artifact outcomes, in the order attempted. With
    /// `keep_going` off this stops after the first failure.
    pub results: Vec<ArtifactResult>,
    /// Cell-level counters for the whole sweep (runs, cache hits,
    /// journal hits, retries, injected faults, failed cells, and the
    /// per-phase timing totals).
    pub stats: HarnessStats,
    /// The event bus the sweep recorded on, when observability was
    /// requested (via [`RegenOptions::obs`], `trace_out`, or
    /// `metrics_out`).
    pub obs: Option<Arc<EventBus>>,
}

impl RegenReport {
    /// The artifacts that could not be regenerated at all.
    pub fn failures(&self) -> Vec<(Artifact, &ExperimentError)> {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref().err().map(|e| (r.artifact, e)))
            .collect()
    }

    /// The artifacts that rendered but contain degraded slices.
    pub fn degraded(&self) -> Vec<Artifact> {
        self.results
            .iter()
            .filter_map(|r| match &r.outcome {
                Ok(out) if out.degraded => Some(r.artifact),
                _ => None,
            })
            .collect()
    }

    /// Whether the sweep was fully clean: no failures, no degradation,
    /// and every journal append reached the OS (a sweep whose resume
    /// state silently rotted is not clean even if every table printed).
    pub fn is_clean(&self) -> bool {
        self.failures().is_empty()
            && self.degraded().is_empty()
            && self.stats.journal_write_errors == 0
    }
}

/// Renders one artifact result exactly as the `regen` binary prints it
/// to stdout — the unit the golden-output test diffs.
pub fn render_artifact_block(r: &ArtifactResult) -> String {
    match &r.outcome {
        Ok(out) => format!("== {} ==\n{}\n", r.artifact.caption(), out.text),
        Err(_) => format!("== {} == FAILED\n\n", r.artifact.caption()),
    }
}

/// Renders a whole report as the `regen` binary's stdout: the
/// concatenation of every artifact block, in attempt order.
pub fn render_report(report: &RegenReport) -> String {
    report.results.iter().map(render_artifact_block).collect()
}

/// Runs a regeneration sweep. The only I/O error possible is opening
/// the resume journal; everything else is reported per-artifact.
pub fn run_regen(opts: &RegenOptions) -> std::io::Result<RegenReport> {
    let mut harness = Harness::new();
    if let Some(plan) = &opts.inject {
        harness = harness.with_plan(plan.clone());
    }
    if let Some(n) = opts.retries {
        let mut retry = RetryPolicy::standard();
        retry.max_attempts = n.max(1);
        harness = harness.with_retry(retry);
    }
    let obs = if opts.obs.is_some() || opts.trace_out.is_some() || opts.metrics_out.is_some() {
        Some(opts.obs.clone().unwrap_or_else(|| Arc::new(EventBus::new())))
    } else {
        None
    };
    let mut exec = Executor::new(harness).with_jobs(opts.jobs.unwrap_or_else(default_jobs));
    if let Some(bus) = &obs {
        exec = exec.with_obs(Arc::clone(bus));
    }
    if let Some(path) = &opts.resume {
        exec = exec.with_journal(Journal::open(path)?);
    }

    let selected: &[Artifact] =
        if opts.artifacts.is_empty() { &Artifact::ALL } else { &opts.artifacts };
    let mut results = Vec::new();
    for a in selected {
        let before = exec.stats();
        let outcome = a.regenerate(opts.quick, &exec);
        let failed = outcome.is_err();
        results.push(ArtifactResult {
            artifact: *a,
            outcome,
            cells: exec.stats().since(&before),
        });
        if failed && !opts.keep_going {
            break;
        }
    }
    let stats = exec.stats();
    if let Some(bus) = &obs {
        let events = bus.snapshot();
        if let Some(path) = &opts.trace_out {
            atomic_write(path, trace::chrome_trace_json(&events).as_bytes())?;
        }
        if let Some(path) = &opts.metrics_out {
            atomic_write(path, metrics::prometheus_text(&events, &stats).as_bytes())?;
        }
    }
    let report = RegenReport { results, stats, obs };
    if let Some(path) = &opts.out {
        atomic_write(path, render_report(&report).as_bytes())?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_round_trip() {
        for a in Artifact::ALL {
            assert_eq!(Artifact::parse(a.name()), Some(a));
        }
        assert_eq!(Artifact::parse("nope"), None);
    }

    #[test]
    fn suggestions_catch_typos_but_not_noise() {
        // Ties (figure2/3/5 are all one edit away) break toward the
        // lexicographically smallest candidate.
        assert_eq!(Artifact::suggest("figure4"), Some("figure2"));
        assert_eq!(Artifact::suggest("tabel1"), Some("table1"));
        assert_eq!(Artifact::suggest("dicussion"), Some("discussion"));
        assert_eq!(Artifact::suggest("vms"), Some("vm"));
        assert_eq!(Artifact::suggest("zzzzzzzzzz"), None);
        // An exact name suggests itself at distance zero (callers only
        // consult suggest() after parse() failed, so this is moot, but
        // pin it down).
        assert_eq!(Artifact::suggest("table1"), Some("table1"));
    }

    #[test]
    fn edit_distance_is_levenshtein() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("figure2", "figure3"), 1);
        assert_eq!(edit_distance("table", "tabel"), 2);
    }

    #[test]
    fn cheap_artifacts_regenerate() {
        let exec = Executor::default();
        for a in [Artifact::Table1, Artifact::Table2, Artifact::Table9, Artifact::Table10] {
            let s = a.regenerate(true, &exec).unwrap();
            assert!(!s.degraded);
            assert!(s.text.lines().count() >= 8, "{}:\n{}", a.name(), s.text);
        }
    }

    #[test]
    fn sweep_without_keep_going_stops_at_first_failure() {
        use spectrebench::FaultKind;
        // Kill a table1 column permanently: table1 fails, table2 is
        // never attempted without --keep-going...
        let plan =
            FaultPlan::new().fail_cell("table1/Broadwell", FaultKind::SimFault, None);
        let opts = RegenOptions {
            artifacts: vec![Artifact::Table1, Artifact::Table2],
            quick: true,
            inject: Some(plan.clone()),
            ..RegenOptions::default()
        };
        let report = run_regen(&opts).unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.failures().len(), 1);
        // ...and with it, the sweep carries on.
        let report = run_regen(&RegenOptions { keep_going: true, ..opts }).unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.failures().len(), 1);
        assert!(report.results[1].outcome.is_ok());
        assert!(report.stats.cells_failed >= 1);
    }
}
