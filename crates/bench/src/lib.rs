//! # bench — regeneration harness and Criterion benchmarks
//!
//! The `regen` binary reprints every table and figure of the paper from
//! the simulation (see `cargo run -p bench --bin regen -- --help`); the
//! Criterion benches under `benches/` time the harness itself, one group
//! per paper artifact.

use cpu_models::CpuId;
use spectrebench::experiments as exp;

/// Every regenerable artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// Table 1: default mitigations.
    Table1,
    /// Table 2: CPU inventory.
    Table2,
    /// Figure 2: LEBench attribution.
    Figure2,
    /// Figure 3: Octane attribution.
    Figure3,
    /// Table 3: entry/exit primitives.
    Table3,
    /// Table 4: verw.
    Table4,
    /// Table 5: indirect branches.
    Table5,
    /// Table 6: IBPB.
    Table6,
    /// Table 7: RSB fill.
    Table7,
    /// Table 8: lfence.
    Table8,
    /// Figure 5: SSBD on PARSEC.
    Figure5,
    /// Table 9: speculation matrix, IBRS off.
    Table9,
    /// Table 10: speculation matrix, IBRS on.
    Table10,
    /// §4.4 VM workloads.
    VmWorkloads,
    /// §6.2.2 eIBRS bimodal entries.
    EibrsBimodal,
    /// The eBPF/kernel boundary (the paper's acknowledged gap).
    EbpfBoundary,
    /// §7 what-ifs + design ablations (beyond the paper's artifacts).
    Discussion,
}

impl Artifact {
    /// All artifacts in paper order.
    pub const ALL: [Artifact; 17] = [
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Figure2,
        Artifact::Figure3,
        Artifact::Table3,
        Artifact::Table4,
        Artifact::Table5,
        Artifact::Table6,
        Artifact::Table7,
        Artifact::Table8,
        Artifact::Figure5,
        Artifact::Table9,
        Artifact::Table10,
        Artifact::VmWorkloads,
        Artifact::EibrsBimodal,
        Artifact::EbpfBoundary,
        Artifact::Discussion,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Artifact::Table1 => "table1",
            Artifact::Table2 => "table2",
            Artifact::Figure2 => "figure2",
            Artifact::Figure3 => "figure3",
            Artifact::Table3 => "table3",
            Artifact::Table4 => "table4",
            Artifact::Table5 => "table5",
            Artifact::Table6 => "table6",
            Artifact::Table7 => "table7",
            Artifact::Table8 => "table8",
            Artifact::Figure5 => "figure5",
            Artifact::Table9 => "table9",
            Artifact::Table10 => "table10",
            Artifact::VmWorkloads => "vm",
            Artifact::EibrsBimodal => "eibrs-bimodal",
            Artifact::EbpfBoundary => "ebpf",
            Artifact::Discussion => "discussion",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Artifact> {
        Artifact::ALL.iter().copied().find(|a| a.name() == name)
    }

    /// Paper caption.
    pub fn caption(self) -> &'static str {
        match self {
            Artifact::Table1 => "Table 1: default mitigations used by Linux on each processor",
            Artifact::Table2 => "Table 2: evaluated CPUs",
            Artifact::Figure2 => "Figure 2: mitigation overhead on LEBench (geomean, attributed)",
            Artifact::Figure3 => "Figure 3: Octane slowdown from JS and OS mitigations",
            Artifact::Table3 => "Table 3: syscall/sysret/swap-cr3 cycles",
            Artifact::Table4 => "Table 4: verw buffer-clear cycles",
            Artifact::Table5 => "Table 5: indirect branch cycles per mitigation",
            Artifact::Table6 => "Table 6: IBPB cycles",
            Artifact::Table7 => "Table 7: RSB stuffing cycles",
            Artifact::Table8 => "Table 8: lfence cycles",
            Artifact::Figure5 => "Figure 5: SSBD slowdown on PARSEC",
            Artifact::Table9 => "Table 9: speculation matrix (IBRS disabled)",
            Artifact::Table10 => "Table 10: speculation matrix (IBRS enabled)",
            Artifact::VmWorkloads => "Section 4.4: VM workloads",
            Artifact::EibrsBimodal => "Section 6.2.2: eIBRS bimodal kernel-entry latency",
            Artifact::EbpfBoundary => {
                "Beyond the paper: the eBPF/kernel boundary (verifier masking cost)"
            }
            Artifact::Discussion => {
                "Beyond the paper: section 7 what-ifs and design ablations"
            }
        }
    }

    /// Regenerates the artifact and returns its text rendering.
    ///
    /// `quick` trades workload size for speed where the driver supports
    /// it (used by tests; the full run is what EXPERIMENTS.md records).
    pub fn regenerate(self, quick: bool) -> String {
        match self {
            Artifact::Table1 => exp::table1::render(&exp::table1::run()),
            Artifact::Table2 => exp::table2::render(),
            Artifact::Figure2 => exp::figure2::render(&exp::figure2::run(&CpuId::ALL, quick)),
            Artifact::Figure3 => exp::figure3::render(&exp::figure3::run(&CpuId::ALL, quick)),
            Artifact::Table3 => exp::tables3to8::render_table3(),
            Artifact::Table4 => exp::tables3to8::render_table4(),
            Artifact::Table5 => exp::tables3to8::render_table5(),
            Artifact::Table6 => exp::tables3to8::render_table6(),
            Artifact::Table7 => exp::tables3to8::render_table7(),
            Artifact::Table8 => exp::tables3to8::render_table8(),
            Artifact::Figure5 => exp::figure5::render(&exp::figure5::run(&CpuId::ALL)),
            Artifact::Table9 => exp::tables9and10::render(&exp::tables9and10::run(false)),
            Artifact::Table10 => exp::tables9and10::render(&exp::tables9and10::run(true)),
            Artifact::VmWorkloads => {
                let cpus: &[CpuId] = if quick {
                    &[CpuId::SkylakeClient, CpuId::CascadeLake]
                } else {
                    &CpuId::ALL
                };
                exp::vm::render(&exp::vm::run(cpus))
            }
            Artifact::EibrsBimodal => {
                let mut s = String::new();
                for id in [CpuId::CascadeLake, CpuId::IceLakeClient, CpuId::IceLakeServer] {
                    s.push_str(&format!("{}:\n", id.microarch()));
                    s.push_str(&exp::eibrs_bimodal::render(&exp::eibrs_bimodal::run(
                        &id.model(),
                        128,
                    )));
                }
                s
            }
            Artifact::EbpfBoundary => {
                let cpus: &[CpuId] = if quick {
                    &[CpuId::Broadwell, CpuId::IceLakeServer]
                } else {
                    &CpuId::ALL
                };
                exp::ebpf::render(&exp::ebpf::run(cpus))
            }
            Artifact::Discussion => {
                let cpus: &[CpuId] = if quick {
                    &[CpuId::SkylakeClient, CpuId::IceLakeServer]
                } else {
                    &CpuId::ALL
                };
                let mut s = String::new();
                s.push_str("Spectre V2 strategy (LEBench overhead, V2 isolated):\n");
                s.push_str(&exp::ablations::render_v2_strategies(cpus));
                s.push_str("\nSection 7 what-ifs (suite-score gains):\n");
                s.push_str(&exp::ablations::render_discussion(cpus));
                let a = exp::ablations::pcid_ablation(&CpuId::Broadwell.model());
                s.push_str(&format!(
                    "\nPCID ablation on Broadwell: PTI overhead {:.1}% with PCID, {:.1}% without\n",
                    a.with_pcid * 100.0,
                    a.without_pcid * 100.0
                ));
                s.push_str("\nMDS: verw vs disabling SMT (Table 1's '!'):\n");
                s.push_str(&exp::smt::render(&exp::smt::run(&[
                    CpuId::Broadwell,
                    CpuId::SkylakeClient,
                    CpuId::CascadeLake,
                ])));
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_round_trip() {
        for a in Artifact::ALL {
            assert_eq!(Artifact::parse(a.name()), Some(a));
        }
        assert_eq!(Artifact::parse("nope"), None);
    }

    #[test]
    fn cheap_artifacts_regenerate() {
        for a in [Artifact::Table1, Artifact::Table2, Artifact::Table9, Artifact::Table10] {
            let s = a.regenerate(true);
            assert!(s.lines().count() >= 8, "{}:\n{s}", a.name());
        }
    }
}
