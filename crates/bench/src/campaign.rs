//! The `regen campaign` driver: runs the fault-space exploration the
//! core [`spectrebench::campaign`] module defines, over real artifact
//! sweeps.
//!
//! Phase 1 records a clean reference sweep (the cell census and golden
//! artifact bytes). Phase 2 enumerates every `(content-key, attempt,
//! fault-kind)` coordinate — or a seeded stratified sample — and runs
//! each one as an *independent* perturbed sweep: fresh executor, fresh
//! cache, its own scratch journal, the coordinate's [`FaultPlan`], and
//! the unchanged retry/breaker/fsck machinery. Phase 3 classifies each
//! outcome against the reference and reduces the results into the
//! survivability report.
//!
//! Every verdict streams to a crash-safe campaign journal as soon as it
//! is known, so a campaign killed at coordinate 800 of 1000 resumes
//! with `--resume` instead of starting over.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use spectrebench::campaign::{
    classify, enumerate_coordinates, scan_journal_text, stratified_sample, CampaignJournal,
    CampaignReport, CoordinateOutcome, SurvivalClass, SweepObservation,
};
use spectrebench::obs::EventKind;
use spectrebench::plan::CellValue;
use spectrebench::{
    atomic_write, default_jobs, EventBus, Executor, Harness, HarnessStats, Journal, RetryPolicy,
};

use crate::{render_artifact_block, Artifact, ArtifactResult};

/// Options for one fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Artifacts each sweep regenerates. Empty means all of them
    /// (expensive: every coordinate re-runs the whole set — prefer a
    /// small set or `--sample`).
    pub artifacts: Vec<Artifact>,
    /// Use the quick workload variants.
    pub quick: bool,
    /// Retry budget (attempts per cell) — also the attempt-axis depth
    /// of the coordinate space.
    pub retries: u32,
    /// Worker threads per sweep (`None` = [`default_jobs`]).
    pub jobs: Option<usize>,
    /// Explore only a seeded stratified sample of this size.
    pub sample: Option<usize>,
    /// Seed for the stratified sample.
    pub seed: u64,
    /// Scratch directory: holds the campaign journal and the
    /// per-coordinate cell journals (created if missing).
    pub dir: PathBuf,
    /// Resume from the campaign journal already in `dir` instead of
    /// starting fresh.
    pub resume: bool,
    /// Write the JSON survivability report here (atomically).
    pub report_out: Option<PathBuf>,
    /// Record campaign progress events on this bus.
    pub obs: Option<Arc<EventBus>>,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            artifacts: Vec::new(),
            quick: false,
            retries: RetryPolicy::default().max_attempts,
            jobs: None,
            sample: None,
            seed: 0,
            dir: PathBuf::from("campaign-scratch"),
            resume: false,
            report_out: None,
            obs: None,
        }
    }
}

/// The finished campaign: the report plus run-level accounting.
#[derive(Debug)]
pub struct CampaignRun {
    /// The survivability report (deterministic for fixed inputs).
    pub report: CampaignReport,
    /// Harness counters aggregated across the reference sweep and
    /// every perturbed sweep.
    pub stats: HarnessStats,
    /// Coordinates replayed from the campaign journal instead of
    /// re-executed.
    pub replayed: usize,
    /// Coordinates executed in this run.
    pub executed: usize,
}

/// Why a campaign could not produce a report.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem trouble (scratch dir, journals, report).
    Io(io::Error),
    /// The unperturbed reference sweep was not clean, so there is no
    /// baseline to classify against. Carries a rendering of what went
    /// wrong.
    ReferenceNotClean(String),
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> CampaignError {
        CampaignError::Io(e)
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign i/o error: {e}"),
            CampaignError::ReferenceNotClean(why) => {
                write!(f, "reference sweep is not clean, no baseline to classify against: {why}")
            }
        }
    }
}

/// What one (reference or perturbed) sweep produced.
struct SweepOutput {
    rendered: String,
    failed: Vec<String>,
    degraded: Vec<String>,
    stats: HarnessStats,
    census: Vec<((String, u64), CellValue)>,
}

/// Runs every selected artifact through a fresh executor with the
/// given fault plan, journaling to `journal`, always keep-going (a
/// campaign wants the blast radius of a fault, not the first crater).
fn run_sweep(
    opts: &CampaignOptions,
    plan: spectrebench::FaultPlan,
    journal: Journal,
) -> SweepOutput {
    let mut retry = RetryPolicy::standard();
    retry.max_attempts = opts.retries.max(1);
    let harness = Harness::new().with_plan(plan).with_retry(retry);
    let exec = Executor::new(harness)
        .with_jobs(opts.jobs.unwrap_or_else(default_jobs))
        .with_journal(journal);
    let selected: &[Artifact] =
        if opts.artifacts.is_empty() { &Artifact::ALL } else { &opts.artifacts };
    let mut rendered = String::new();
    let mut failed = Vec::new();
    let mut degraded = Vec::new();
    for a in selected {
        let outcome = a.regenerate(opts.quick, &exec);
        match &outcome {
            Ok(out) if out.degraded => degraded.push(a.name().to_string()),
            Ok(_) => {}
            Err(_) => failed.push(a.name().to_string()),
        }
        let result = ArtifactResult {
            artifact: *a,
            outcome,
            cells: HarnessStats::default(),
        };
        rendered.push_str(&render_artifact_block(&result));
    }
    let census = exec.journal().map(Journal::entries).unwrap_or_default();
    SweepOutput { rendered, failed, degraded, stats: exec.stats(), census }
}

/// Runs a whole campaign. See the module docs for the three phases.
pub fn run_campaign(opts: &CampaignOptions) -> Result<CampaignRun, CampaignError> {
    std::fs::create_dir_all(&opts.dir)?;
    let bus = opts.obs.clone();
    let emit = |cell: &str, kind: EventKind| {
        if let Some(b) = &bus {
            b.emit("campaign", cell, "", 0, kind);
        }
    };
    let mut stats = HarnessStats::default();

    // Phase 1: the clean reference sweep (in-memory journal — we only
    // need the cell census and the golden bytes, not a file).
    let reference = run_sweep(opts, spectrebench::FaultPlan::new(), Journal::in_memory());
    stats.absorb(&reference.stats);
    if !reference.failed.is_empty() || !reference.degraded.is_empty() {
        return Err(CampaignError::ReferenceNotClean(format!(
            "failed: [{}], degraded: [{}]",
            reference.failed.join(", "),
            reference.degraded.join(", ")
        )));
    }
    let reference_values: HashMap<(String, u64), CellValue> =
        reference.census.iter().cloned().collect();
    let cells: Vec<(String, u64)> =
        reference.census.iter().map(|(k, _)| k.clone()).collect();

    // Phase 2: enumerate (and maybe sample) the fault space.
    let space = enumerate_coordinates(&cells, opts.retries.max(1));
    let space_size = space.len();
    let selected = match opts.sample {
        Some(n) => stratified_sample(&space, n, opts.seed),
        None => space,
    };

    // The campaign journal: resume replays verdicts already on record;
    // a fresh campaign starts from an empty file.
    let journal_path = opts.dir.join("campaign.jsonl");
    if !opts.resume {
        match std::fs::remove_file(&journal_path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }
    let (campaign_journal, replayed_rows, _skipped) = CampaignJournal::open(&journal_path)?;
    let mut done: HashMap<String, CoordinateOutcome> =
        replayed_rows.into_iter().map(|o| (o.coord.id(), o)).collect();
    let replayed = selected.iter().filter(|c| done.contains_key(&c.id())).count();
    let todo = selected.len() - replayed;
    emit("", EventKind::CampaignStarted { coordinates: todo });

    // Execute every coordinate not already on record, streaming each
    // verdict to the campaign journal the moment it is known.
    let mut executed = 0usize;
    for coord in &selected {
        let id = coord.id();
        if done.contains_key(&id) {
            emit(&id, EventKind::CampaignReplayed);
            continue;
        }
        let scratch = opts.dir.join("coordinate.jsonl");
        match std::fs::remove_file(&scratch) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let sweep = run_sweep(opts, coord.fault_plan(), Journal::open(&scratch)?);
        stats.absorb(&sweep.stats);

        // Re-scan the scratch journal from disk: what would a resume
        // replay, and was any injected I/O damage actually detected?
        let journal_text = std::fs::read_to_string(&scratch)?;
        let (scan, survivors) = scan_journal_text(&journal_text);
        let journal_replay_mismatch = survivors.iter().any(|(key, value)| {
            reference_values.get(key).is_some_and(|reference| reference != value)
        });
        let obs = SweepObservation {
            rendered: sweep.rendered,
            failed_artifacts: sweep.failed,
            degraded_artifacts: sweep.degraded,
            retries: sweep.stats.retries,
            faults_injected: sweep.stats.faults_injected,
            journal_damage_detected: scan.corrupt + scan.truncated > 0,
            journal_replay_mismatch,
        };
        let class = classify(&reference.rendered, &obs);
        let detail = match class {
            SurvivalClass::SilentCorruption if obs.journal_replay_mismatch => {
                "resume journal would replay a wrong value".to_string()
            }
            SurvivalClass::SilentCorruption => {
                "output diverged from reference with clean accounting".to_string()
            }
            SurvivalClass::FailedLoud => {
                format!("failed: {}", obs.failed_artifacts.join(", "))
            }
            SurvivalClass::Degraded => {
                format!("degraded: {}", obs.degraded_artifacts.join(", "))
            }
            SurvivalClass::Absorbed if obs.journal_damage_detected => {
                format!(
                    "journal damage detected ({} corrupt, {} torn), cell re-ran",
                    scan.corrupt, scan.truncated
                )
            }
            SurvivalClass::Absorbed => String::new(),
        };
        let outcome = CoordinateOutcome {
            coord: coord.clone(),
            class,
            retries: obs.retries,
            faults_injected: obs.faults_injected,
            detail,
        };
        campaign_journal.record(&outcome)?;
        emit(&id, EventKind::CampaignCoordinate { fault: coord.kind, class });
        done.insert(id, outcome);
        executed += 1;
        let _ = std::fs::remove_file(&scratch);
    }
    campaign_journal.sync()?;

    // Phase 3: reduce, in enumeration order.
    let outcomes: Vec<CoordinateOutcome> = selected
        .iter()
        .filter_map(|c| done.remove(&c.id()))
        .collect();
    let report = CampaignReport {
        artifacts: if opts.artifacts.is_empty() {
            Artifact::ALL.iter().map(|a| a.name().to_string()).collect()
        } else {
            opts.artifacts.iter().map(|a| a.name().to_string()).collect()
        },
        quick: opts.quick,
        retries: opts.retries.max(1),
        seed: opts.seed,
        sample: opts.sample,
        cells: cells.len(),
        space: space_size,
        outcomes,
    };
    if let Some(path) = &opts.report_out {
        atomic_write(path, report.to_json().as_bytes())?;
    }
    emit("", EventKind::CampaignFinished);
    Ok(CampaignRun { report, stats, replayed, executed })
}
