//! Regenerates the paper's tables and figures from the simulation.
//!
//! ```text
//! cargo run --release -p bench --bin regen                  # everything
//! cargo run --release -p bench --bin regen -- figure2       # one artifact
//! cargo run --release -p bench --bin regen -- --quick       # fast variants
//! cargo run --release -p bench --bin regen -- --keep-going  # don't stop on failure
//! cargo run --release -p bench --bin regen -- --resume run.jsonl
//! cargo run --release -p bench --bin regen -- --jobs 8      # worker threads
//! cargo run --release -p bench --bin regen -- --inject 'cell=Broadwell:kind=sim:times=2'
//! cargo run --release -p bench --bin regen -- --trace-out trace.json --metrics-out metrics.prom
//! cargo run --release -p bench --bin regen -- --out results.txt
//! cargo run --release -p bench --bin regen -- fsck run.jsonl   # verify/repair a journal
//! cargo run --release -p bench --bin regen -- --list           # artifact inventory
//! cargo run --release -p bench --bin regen -- fetch http://127.0.0.1:7979 figure2
//! cargo run --release -p bench --bin regen -- campaign --quick table1  # fault-space sweep
//! cargo run --release -p bench --bin regen -- bench-uarch --out BENCH_uarch.json
//! cargo run --release -p bench --bin regen -- bench-uarch --check BENCH_uarch.json
//! cargo run --release -p bench --bin regen -- loadgen http://127.0.0.1:7979/artifact/table2
//! ```
//!
//! Exit codes: 0 clean; 1 at least one artifact failed or was degraded
//! (or a journal append was lost); 2 bad usage (unknown artifact or
//! malformed flag). `regen fsck` exits 0 when every line was valid, 1
//! when only recoverable crash artifacts (stale / torn tail) were
//! found, 2 on checksum or structural corruption. `regen campaign`
//! exits 0 when every explored coordinate was absorbed, degraded, or
//! failed loud; 1 when the reference sweep was not clean; 2 on any
//! silent-corruption classification (or bad usage).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use bench::campaign::{run_campaign, CampaignError, CampaignOptions};
use bench::{Artifact, RegenOptions, run_regen};
use spectrebench::campaign::SurvivalClass;
use spectrebench::{fsck_journal, jobs_from_env, FaultKind, FaultPlan};

fn usage(to_stdout: bool) {
    // The kind lists come from FaultKind::ALL so --help can never
    // drift from what parse_spec accepts.
    let compute_kinds = FaultKind::ALL
        .iter()
        .filter(|k| !k.is_io())
        .map(|k| k.name())
        .collect::<Vec<_>>()
        .join("|");
    let io_kinds = FaultKind::ALL
        .iter()
        .filter(|k| k.is_io())
        .map(|k| k.name())
        .collect::<Vec<_>>()
        .join("|");
    let mut text = format!(
        "usage: regen [options] [artifact ...]\n\
         \x20      regen fsck <journal>\n\
         \x20      regen fetch <base-url> <artifact|results>\n\
         \x20      regen loadgen [loadgen-options] <url>\n\
         \x20      regen campaign [campaign-options] [artifact ...]\n\
         \n\
         subcommands:\n\
         \x20 fsck <journal>    verify the journal's per-line checksums,\n\
         \x20                   quarantine damaged lines to <journal>.quarantine,\n\
         \x20                   and atomically rewrite a compacted valid journal.\n\
         \x20                   Exits 0 (clean), 1 (recoverable crash artifacts),\n\
         \x20                   or 2 (corruption found / unreadable)\n\
         \x20 fetch <url> <a>   pull one artifact rendering (or 'results' for\n\
         \x20                   all of them) off a running regend and print it;\n\
         \x20                   retries politely on 429 + Retry-After, and with\n\
         \x20                   seeded backoff on refused/timed-out connections\n\
         \x20 bench-uarch       benchmark the uarch interpreter itself: a pinned\n\
         \x20                   4-workload mix (branch/loadstore/syscall/transient)\n\
         \x20                   run through both the decoded dispatch loop and the\n\
         \x20                   reference stepper. Options: --out <f> (JSON report,\n\
         \x20                   atomic), --check <f> (re-run at the file's scale and\n\
         \x20                   fail on any retired-count drift; timings never\n\
         \x20                   gate), --scale <n>, --quick. Exits 1 on drift or\n\
         \x20                   if the decoded path is slower than the reference\n\
         \x20 loadgen <url>     open-loop HTTP load generator against a running\n\
         \x20                   regend: arrivals on a fixed-rate clock, latency\n\
         \x20                   measured from each scheduled arrival (no\n\
         \x20                   coordinated omission), keep-alive connection\n\
         \x20                   reuse, p50/p90/p99/max + achieved throughput.\n\
         \x20                   Options: --rate <req/s> (default 200),\n\
         \x20                   --requests <n> (default 1000), --connections <n>\n\
         \x20                   (default 8), --timeout-ms <n>, --histogram <f>\n\
         \x20                   (write the latency histogram to <f>),\n\
         \x20                   --target <url> (repeatable; arrivals rotate over\n\
         \x20                   all targets and the summary adds per-target\n\
         \x20                   latency splits).\n\
         \x20                   Exits 1 when any request errored\n\
         \x20 campaign          explore the whole (cell x attempt x fault-kind)\n\
         \x20                   space: reference sweep, one perturbed sweep per\n\
         \x20                   coordinate (all of {compute_kinds},\n\
         \x20                   {io_kinds}), survivability report.\n\
         \x20                   Campaign options: --sample <n> (seeded stratified\n\
         \x20                   sample), --seed <n>, --dir <d> (scratch + campaign\n\
         \x20                   journal), --resume (continue an interrupted\n\
         \x20                   campaign), --report <f> (JSON report, atomic),\n\
         \x20                   plus --quick/--retries/--jobs as below.\n\
         \x20                   Exits 2 on any silent-corruption verdict\n\
         \n\
         options:\n\
         \x20 --list            list the artifacts and exit\n\
         \x20 --quick           fast workload variants\n\
         \x20 --keep-going      continue past failed artifacts\n\
         \x20 --retries <n>     attempts per measurement cell (default 3)\n\
         \x20 --jobs <n>        worker threads for measurement cells (default:\n\
         \x20                   the REGEN_JOBS environment variable, else the\n\
         \x20                   machine's available parallelism); the rendered\n\
         \x20                   output is byte-identical for any value\n\
         \x20 --resume <log>    reuse cells journaled in <log>; append new ones\n\
         \x20 --inject <spec>   deterministic fault plan, e.g.\n\
         \x20                   'cell=<substr>:kind=<kind>:times=<n|forever>'\n\
         \x20                   or 'seed=<n>:prob=<p>'. Compute kinds\n\
         \x20                   {compute_kinds} fail attempts; I/O kinds\n\
         \x20                   {io_kinds} damage the cell's\n\
         \x20                   journal line instead (the value still renders)\n\
         \x20 --trace-out <f>   write a Chrome trace-event JSON timeline of the\n\
         \x20                   sweep (one lane per worker; open in Perfetto or\n\
         \x20                   chrome://tracing)\n\
         \x20 --metrics-out <f> write a Prometheus-style text metrics dump\n\
         \x20                   (cell counters, retry/fault totals, latency\n\
         \x20                   histograms)\n\
         \x20 --out <f>         also write the artifact renderings to <f>,\n\
         \x20                   atomically (tmp + fsync + rename): a killed run\n\
         \x20                   leaves the old file or the complete new one\n\
         \n\
         artifacts:\n",
    );
    for a in Artifact::ALL {
        text.push_str(&format!("  {:14} {}\n", a.name(), a.caption()));
    }
    // The policy list comes from V1Policy::ALL — the same slice the
    // kernel's spectre_v1= parser accepts — so the help can never name
    // a policy the boot parameter rejects, or vice versa.
    let policies = sim_kernel::V1Policy::ALL
        .iter()
        .map(|p| p.name())
        .collect::<Vec<_>>()
        .join("|");
    text.push_str(&format!(
        "\nThe 'targeted' artifact measures every spectre_v1= boot policy\n\
         ({policies}) over the paper CPUs plus the extended RISC-V catalog.\n"
    ));
    if to_stdout {
        print!("{text}");
    } else {
        eprint!("{text}");
    }
}

fn parse_args(args: &[String]) -> Result<RegenOptions, String> {
    let mut opts = RegenOptions::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--keep-going" => opts.keep_going = true,
            "--retries" => {
                let v = value("--retries")?;
                opts.retries =
                    Some(v.parse().map_err(|_| format!("bad --retries value: {v}"))?);
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value: {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = Some(n);
            }
            "--resume" => opts.resume = Some(PathBuf::from(value("--resume")?)),
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--metrics-out" => opts.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--inject" => {
                let spec = value("--inject")?;
                opts.inject =
                    Some(FaultPlan::parse_spec(&spec).map_err(|e| format!("bad --inject: {e}"))?);
            }
            name if !name.starts_with("--") => match Artifact::parse(name) {
                Some(a) => opts.artifacts.push(a),
                None => return Err(unknown_artifact(name)),
            },
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// "unknown artifact" with a nearest-name hint when one is close.
fn unknown_artifact(name: &str) -> String {
    match Artifact::suggest(name) {
        Some(s) => format!("unknown artifact: {name} (did you mean: {s}?)"),
        None => format!("unknown artifact: {name} (see --list)"),
    }
}

/// `regen fetch <base-url> <artifact|results>`: pull a rendering off a
/// running regend and print it to stdout, exactly as `regen <artifact>`
/// would have (the server's bytes are golden-pinned to the same
/// renderer).
fn run_fetch(base: &str, what: &str) -> ExitCode {
    let path = match what {
        "results" => "/results".to_string(),
        name => match Artifact::parse(name) {
            Some(a) => format!("/artifact/{}", a.name()),
            None => {
                eprintln!("regen: {}", unknown_artifact(name));
                return ExitCode::from(2);
            }
        },
    };
    let base = base.strip_suffix('/').unwrap_or(base);
    let url = format!("{base}{path}");
    match bench::client::http_get_retrying(&url, Duration::from_secs(120), 5) {
        Ok(r) if r.status == 200 => {
            if r.header("x-regend-degraded").is_some() {
                eprintln!("regen: warning: {what} is DEGRADED (bridged over failed cells)");
            }
            if r.header("x-regend-quick").is_some() {
                eprintln!("regen: note: the server rendered the quick variant");
            }
            print!("{}", r.text());
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!("regen: fetch {url} failed: HTTP {}", r.status);
            for line in r.text().lines() {
                eprintln!("regen:   {line}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("regen: fetch {url} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `regen campaign` arguments (everything after the subcommand
/// word).
fn parse_campaign_args(args: &[String]) -> Result<CampaignOptions, String> {
    let mut opts = CampaignOptions::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--retries" => {
                let v = value("--retries")?;
                let n: u32 = v.parse().map_err(|_| format!("bad --retries value: {v}"))?;
                if n == 0 {
                    return Err("--retries must be at least 1".to_string());
                }
                opts.retries = n;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value: {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                opts.jobs = Some(n);
            }
            "--sample" => {
                let v = value("--sample")?;
                let n: usize = v.parse().map_err(|_| format!("bad --sample value: {v}"))?;
                if n == 0 {
                    return Err("--sample must be at least 1".to_string());
                }
                opts.sample = Some(n);
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value: {v}"))?;
            }
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--resume" => opts.resume = true,
            "--report" => opts.report_out = Some(PathBuf::from(value("--report")?)),
            name if !name.starts_with("--") => match Artifact::parse(name) {
                Some(a) => opts.artifacts.push(a),
                None => return Err(unknown_artifact(name)),
            },
            other => return Err(format!("unknown campaign flag: {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// `regen campaign`: the three-phase fault-space exploration. Prints
/// the survivability matrix to stdout; exit 2 on any silent-corruption
/// verdict, exit 1 when the reference sweep could not baseline.
fn run_campaign_cmd(args: &[String]) -> ExitCode {
    let mut opts = match parse_campaign_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("regen campaign: {msg}");
            eprintln!();
            usage(false);
            return ExitCode::from(2);
        }
    };
    if opts.jobs.is_none() {
        match jobs_from_env() {
            Ok(n) => opts.jobs = n,
            Err(msg) => {
                eprintln!("regen: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    let run = match run_campaign(&opts) {
        Ok(run) => run,
        Err(e @ CampaignError::ReferenceNotClean(_)) => {
            eprintln!("regen campaign: {e}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("regen campaign: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", run.report.render_matrix());
    eprintln!(
        "regen campaign: {} coordinate(s) explored ({} executed now, {} replayed from {}), \
         space {} over {} cell(s)",
        run.report.outcomes.len(),
        run.executed,
        run.replayed,
        opts.dir.join("campaign.jsonl").display(),
        run.report.space,
        run.report.cells
    );
    let s = &run.stats;
    eprintln!(
        "regen campaign: {} cells run, {} retries, {} faults injected, {} cells failed, {} panic(s) caught",
        s.cells_run, s.retries, s.faults_injected, s.cells_failed, s.panics_caught
    );
    if let Some(path) = &opts.report_out {
        eprintln!("regen campaign: report written to {}", path.display());
    }
    let silent = run.report.silent_corruptions();
    if silent.is_empty() {
        ExitCode::SUCCESS
    } else {
        for o in &silent {
            eprintln!("regen campaign: SILENT CORRUPTION at {} ({})", o.coord.id(), o.detail);
        }
        // Reserve exit 2 for the one verdict that is always a bug.
        debug_assert!(silent.iter().all(|o| o.class == SurvivalClass::SilentCorruption));
        ExitCode::from(2)
    }
}

/// Parses `regen bench-uarch` arguments.
struct BenchUarchArgs {
    opts: bench::uarch_bench::UarchBenchOptions,
    scale_overridden: bool,
    out: Option<PathBuf>,
    check: Option<PathBuf>,
}

fn parse_bench_uarch_args(args: &[String]) -> Result<BenchUarchArgs, String> {
    let mut parsed = BenchUarchArgs {
        opts: bench::uarch_bench::UarchBenchOptions::default(),
        scale_overridden: false,
        out: None,
        check: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => {
                parsed.opts = bench::uarch_bench::UarchBenchOptions::quick();
                parsed.scale_overridden = true;
            }
            "--scale" => {
                let v = value("--scale")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --scale value: {v}"))?;
                if n == 0 {
                    return Err("--scale must be at least 1".to_string());
                }
                parsed.opts.scale = n;
                parsed.scale_overridden = true;
            }
            "--out" => parsed.out = Some(PathBuf::from(value("--out")?)),
            "--check" => parsed.check = Some(PathBuf::from(value("--check")?)),
            other => return Err(format!("unknown bench-uarch flag: {other}")),
        }
        i += 1;
    }
    Ok(parsed)
}

/// `regen bench-uarch`: benchmark the interpreter. In `--check` mode the
/// run is pinned to the committed report's scale and any retired-work
/// drift fails the command; timings are reported but only gate in the
/// one way that is always a bug — the decoded path being slower than the
/// reference interpreter it replaced.
fn run_bench_uarch_cmd(args: &[String]) -> ExitCode {
    use bench::uarch_bench;
    let mut parsed = match parse_bench_uarch_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("regen bench-uarch: {msg}");
            eprintln!();
            usage(false);
            return ExitCode::from(2);
        }
    };
    let pinned = match &parsed.check {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                match uarch_bench::pinned_scale(&text) {
                    Ok(scale) if !parsed.scale_overridden => parsed.opts.scale = scale,
                    Ok(_) => {}
                    Err(msg) => {
                        eprintln!("regen bench-uarch: {}: {msg}", path.display());
                        return ExitCode::from(2);
                    }
                }
                Some(text)
            }
            Err(e) => {
                eprintln!("regen bench-uarch: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let report = match uarch_bench::run_bench_uarch(&parsed.opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("regen bench-uarch: {msg}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = &parsed.out {
        if let Err(e) = spectrebench::atomic_write(path, report.render_json().as_bytes()) {
            eprintln!("regen bench-uarch: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("regen bench-uarch: report written to {}", path.display());
    }
    let mut failed = false;
    if let Some(pinned) = pinned {
        match uarch_bench::check_report(&pinned, &report) {
            Ok(drifts) if drifts.is_empty() => {
                eprintln!("regen bench-uarch: retired-work counts match the pinned report");
            }
            Ok(drifts) => {
                for d in &drifts {
                    eprintln!("regen bench-uarch: DRIFT: {d}");
                }
                failed = true;
            }
            Err(msg) => {
                eprintln!("regen bench-uarch: {msg}");
                failed = true;
            }
        }
        if report.total_speedup() < 1.0 {
            eprintln!(
                "regen bench-uarch: decoded dispatch is SLOWER than the reference stepper ({:.2}x)",
                report.total_speedup()
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses `regen loadgen` arguments (everything after the subcommand
/// word; the first bare argument is the URL).
fn parse_loadgen_args(args: &[String]) -> Result<(bench::loadgen::LoadgenOptions, Option<PathBuf>), String> {
    let mut opts = bench::loadgen::LoadgenOptions::default();
    let mut histogram = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--rate" => {
                let v = value("--rate")?;
                let r: f64 = v.parse().map_err(|_| format!("bad --rate value: {v}"))?;
                if !r.is_finite() || r <= 0.0 {
                    return Err("--rate must be positive".to_string());
                }
                opts.rate = r;
            }
            "--requests" => {
                let v = value("--requests")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --requests value: {v}"))?;
                if n == 0 {
                    return Err("--requests must be at least 1".to_string());
                }
                opts.requests = n;
            }
            "--connections" => {
                let v = value("--connections")?;
                let n: usize = v.parse().map_err(|_| format!("bad --connections value: {v}"))?;
                if n == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
                opts.connections = n;
            }
            "--timeout-ms" => {
                let v = value("--timeout-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --timeout-ms value: {v}"))?;
                opts.timeout = Duration::from_millis(ms.max(1));
            }
            "--histogram" => histogram = Some(PathBuf::from(value("--histogram")?)),
            "--target" => opts.targets.push(value("--target")?),
            url if !url.starts_with("--") => opts.targets.push(url.to_string()),
            other => return Err(format!("unknown loadgen flag: {other}")),
        }
        i += 1;
    }
    if opts.targets.is_empty() {
        return Err("loadgen needs a target URL (bare or --target)".to_string());
    }
    Ok((opts, histogram))
}

/// `regen loadgen <url>`: open-loop load against a running regend.
/// Exit 1 when any request failed outright (429s are responses, not
/// errors: they are the server keeping its overload contract).
fn run_loadgen_cmd(args: &[String]) -> ExitCode {
    let (opts, histogram) = match parse_loadgen_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("regen loadgen: {msg}");
            eprintln!();
            usage(false);
            return ExitCode::from(2);
        }
    };
    let report = match bench::loadgen::run_loadgen(&opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("regen loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = &histogram {
        if let Err(e) = spectrebench::atomic_write(path, report.render_histogram().as_bytes()) {
            eprintln!("regen loadgen: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("regen loadgen: histogram written to {}", path.display());
    }
    if report.errors > 0 {
        eprintln!("regen loadgen: {} request(s) failed", report.errors);
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `regen fsck <journal>`: verify, quarantine, compact. Severity maps
/// directly to the exit code; an unreadable journal is severity 2.
fn run_fsck(path: &Path) -> ExitCode {
    match fsck_journal(path) {
        Ok(report) => {
            let s = &report.scan;
            eprintln!(
                "regen fsck: {}: {} valid line(s) -> {} entr{} compacted; {} stale, {} truncated, {} corrupt skipped",
                path.display(),
                s.valid,
                report.entries,
                if report.entries == 1 { "y" } else { "ies" },
                s.stale,
                s.truncated,
                s.corrupt
            );
            if let Some(q) = &report.quarantine {
                eprintln!("regen fsck: damaged lines quarantined to {}", q.display());
            }
            ExitCode::from(report.severity())
        }
        Err(e) => {
            eprintln!("regen fsck: cannot read {}: {e}", path.display());
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(true);
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for a in Artifact::ALL {
            println!("{:14} {}", a.name(), a.caption());
        }
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("fetch") {
        return match (args.get(1), args.get(2)) {
            (Some(base), Some(what)) if args.len() == 3 => run_fetch(base, what),
            _ => {
                eprintln!("regen: fetch takes exactly two arguments: <base-url> <artifact|results>");
                eprintln!();
                usage(false);
                ExitCode::from(2)
            }
        };
    }
    if args.first().map(String::as_str) == Some("campaign") {
        return run_campaign_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench-uarch") {
        return run_bench_uarch_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("loadgen") {
        return run_loadgen_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fsck") {
        return match args.get(1) {
            Some(path) if args.len() == 2 => run_fsck(Path::new(path)),
            _ => {
                eprintln!("regen: fsck takes exactly one argument: the journal path");
                eprintln!();
                usage(false);
                ExitCode::from(2)
            }
        };
    }
    let mut opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("regen: {msg}");
            eprintln!();
            usage(false);
            return ExitCode::from(2);
        }
    };
    // Validate REGEN_JOBS up front: a malformed value is a usage error
    // (exit 2), not a silent fallback to machine parallelism.
    if opts.jobs.is_none() {
        match jobs_from_env() {
            Ok(n) => opts.jobs = n,
            Err(msg) => {
                eprintln!("regen: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match run_regen(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("regen: cannot open resume journal: {e}");
            return ExitCode::from(2);
        }
    };

    for r in &report.results {
        print!("{}", bench::render_artifact_block(r));
        let c = &r.cells;
        eprintln!(
            "regen: {}: {} cells simulated, {} from cache, {} from journal ({:.2}s simulating, {:.2}s in plans)",
            r.artifact.name(),
            c.cells_run,
            c.cells_from_cache,
            c.cells_from_journal,
            c.sim_time.as_secs_f64(),
            c.plan_time.as_secs_f64()
        );
    }

    let s = &report.stats;
    eprintln!(
        "regen: {} cells run, {} from cache, {} from journal, {} retries, {} faults injected, {} cells failed",
        s.cells_run,
        s.cells_from_cache,
        s.cells_from_journal,
        s.retries,
        s.faults_injected,
        s.cells_failed
    );
    eprintln!(
        "regen: timing: {:.2}s simulating cells, {:.2}s inside plan execution",
        s.sim_time.as_secs_f64(),
        s.plan_time.as_secs_f64()
    );
    if s.panics_caught > 0 || s.breaker_skipped > 0 {
        eprintln!(
            "regen: {} compute panic(s) caught; {} cell(s) degraded by the panic circuit breaker",
            s.panics_caught, s.breaker_skipped
        );
    }
    if s.journal_stale > 0 || s.journal_corrupt > 0 || s.journal_truncated > 0 {
        eprintln!(
            "regen: resume journal damage skipped: {} stale, {} corrupt, {} truncated line(s) (run `regen fsck` to quarantine and compact)",
            s.journal_stale, s.journal_corrupt, s.journal_truncated
        );
    }
    if s.journal_write_errors > 0 {
        eprintln!(
            "regen: {} journal write error(s): affected cells will re-run on resume",
            s.journal_write_errors
        );
    }
    if let Some(path) = &opts.trace_out {
        eprintln!("regen: trace written to {}", path.display());
    }
    if let Some(path) = &opts.metrics_out {
        eprintln!("regen: metrics written to {}", path.display());
    }
    if let Some(path) = &opts.out {
        eprintln!("regen: artifacts written to {}", path.display());
    }
    let failures = report.failures();
    for (a, e) in &failures {
        eprintln!("regen: {} FAILED: {e}", a.name());
    }
    for a in report.degraded() {
        eprintln!("regen: {} is DEGRADED (bridged over failed cells)", a.name());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
