//! Regenerates the paper's tables and figures from the simulation.
//!
//! ```text
//! cargo run --release -p bench --bin regen            # everything
//! cargo run --release -p bench --bin regen -- figure2 # one artifact
//! cargo run --release -p bench --bin regen -- --quick # fast variants
//! ```

use bench::Artifact;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if args.iter().any(|a| a == "--help") {
        eprintln!("usage: regen [--quick] [artifact ...]");
        eprintln!("artifacts:");
        for a in Artifact::ALL {
            eprintln!("  {:14} {}", a.name(), a.caption());
        }
        return;
    }
    let selected: Vec<Artifact> = if names.is_empty() {
        Artifact::ALL.to_vec()
    } else {
        names
            .iter()
            .map(|n| Artifact::parse(n).unwrap_or_else(|| panic!("unknown artifact: {n}")))
            .collect()
    };
    for a in selected {
        println!("== {} ==", a.caption());
        println!("{}", a.regenerate(quick));
    }
}
