//! A tiny HTTP/1.1 client for `regen fetch`.
//!
//! Just enough to talk to `regend`: one `GET` per connection,
//! `Connection: close`, fixed-length bodies. Mirrors the server's
//! hand-rolled wire layer (the dependency policy cuts both ways).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Splits `http://host:port/path` into authority and path.
fn split_url(url: &str) -> Result<(&str, &str), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported URL {url:?}: only http:// is spoken"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if authority.is_empty() {
        return Err(format!("bad URL {url:?}: empty host"));
    }
    Ok((authority, path))
}

/// Whether an I/O failure is worth retrying: the peer was not there
/// yet (connection refused — a daemon still binding its socket) or
/// stopped answering within the timeout (a daemon still warming up).
/// Anything else — unresolvable host, protocol garbage — is permanent.
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::TimedOut
            // Unix reports a read/write timeout on a nonblocking-style
            // deadline as WouldBlock.
            | std::io::ErrorKind::WouldBlock
    )
}

/// A `GET` attempt that remembers whether its failure was transient.
fn http_get_classified(url: &str, timeout: Duration) -> Result<HttpResponse, (bool, String)> {
    let (authority, path) = split_url(url).map_err(|e| (false, e))?;
    let addr = first_addr(authority)
        .map_err(|e| (false, format!("cannot resolve {authority:?}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| (is_transient(&e), format!("cannot connect to {authority}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| (false, e.to_string()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| (false, e.to_string()))?;
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| (is_transient(&e), format!("write failed: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| (is_transient(&e), format!("read failed: {e}")))?;
    parse_response(&raw).map_err(|e| (false, e))
}

/// Performs one `GET` and reads the whole response. `timeout` bounds
/// connect, each read, and each write independently.
pub fn http_get(url: &str, timeout: Duration) -> Result<HttpResponse, String> {
    http_get_classified(url, timeout).map_err(|(_, e)| e)
}

/// Bounded exponential backoff with deterministic jitter for transient
/// failures: 50ms base doubling to a 1s cap, plus a jitter of up to
/// half the step derived from an FNV hash of `(url, attempt)` — seeded,
/// so two clients hammering the same slow daemon from different URLs
/// de-synchronize, and a given invocation is reproducible.
fn backoff_delay(url: &str, attempt: u32) -> Duration {
    let base_ms = 50u64.saturating_mul(1 << attempt.min(5)).min(1_000);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in url.bytes().chain(attempt.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Duration::from_millis(base_ms + h % (base_ms / 2).max(1))
}

/// Parses a full wire response (head + body).
pub fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "truncated response: no header terminator".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "non-UTF-8 response head".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let rest = &raw[head_end + 4..];
    let body = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(len) if len <= rest.len() => rest[..len].to_vec(),
        Some(len) => {
            return Err(format!("truncated body: {} of {len} byte(s)", rest.len()));
        }
        None => rest.to_vec(),
    };
    Ok(HttpResponse { status, headers, body })
}

/// `GET` with bounded retry on the failures a healthy deployment still
/// produces:
///
/// * **429** — sleeps the server's `Retry-After` (default one second);
///   the client half of the admission-control contract;
/// * **connection refused / read-timeout** — sleeps a capped
///   exponential backoff with seeded jitter ([`backoff_delay`]), so
///   `regen fetch` survives the race against a daemon that is still
///   binding its socket or warming its caches.
///
/// Permanent failures (unresolvable host, protocol errors, any other
/// HTTP status) return immediately.
pub fn http_get_retrying(
    url: &str,
    timeout: Duration,
    max_attempts: u32,
) -> Result<HttpResponse, String> {
    let max_attempts = max_attempts.max(1);
    let mut last = String::new();
    for attempt in 0..max_attempts {
        match http_get_classified(url, timeout) {
            Ok(r) if r.status == 429 => {
                let secs =
                    r.header("retry-after").and_then(|v| v.parse::<u64>().ok()).unwrap_or(1);
                last = format!("server busy (429, Retry-After: {secs})");
                if attempt + 1 < max_attempts {
                    std::thread::sleep(Duration::from_secs(secs));
                }
            }
            Err((true, e)) => {
                last = e;
                if attempt + 1 < max_attempts {
                    std::thread::sleep(backoff_delay(url, attempt));
                }
            }
            Err((false, e)) => return Err(e),
            Ok(r) => return Ok(r),
        }
    }
    Err(format!("gave up after {max_attempts} attempt(s): {last}"))
}

fn first_addr(authority: &str) -> std::io::Result<std::net::SocketAddr> {
    use std::net::ToSocketAddrs;
    authority.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::NotFound, "no address for host")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_urls() {
        assert_eq!(split_url("http://127.0.0.1:7979/artifact/table1").unwrap(),
                   ("127.0.0.1:7979", "/artifact/table1"));
        assert_eq!(split_url("http://localhost:80").unwrap(), ("localhost:80", "/"));
        assert!(split_url("https://x/").is_err());
        assert!(split_url("http:///x").is_err());
    }

    #[test]
    fn backoff_is_seeded_bounded_and_growing() {
        let url = "http://127.0.0.1:7979/results";
        // Deterministic for a fixed (url, attempt)...
        assert_eq!(backoff_delay(url, 0), backoff_delay(url, 0));
        // ...different across urls (jitter de-synchronizes clients)...
        assert_ne!(
            backoff_delay("http://127.0.0.1:7979/a", 3),
            backoff_delay("http://127.0.0.1:7979/b", 3)
        );
        // ...never below the base step, capped with jitter at 1.5s.
        for attempt in 0..40 {
            let d = backoff_delay(url, attempt);
            assert!(d >= Duration::from_millis(50), "attempt {attempt}: {d:?}");
            assert!(d <= Duration::from_millis(1_500), "attempt {attempt}: {d:?}");
        }
        // The schedule grows: a late attempt waits at least the cap's
        // base where an early one may wait only the first step.
        assert!(backoff_delay(url, 10) >= Duration::from_millis(1_000));
    }

    #[test]
    fn connection_refused_is_retried_then_reported() {
        // Bind-then-drop guarantees a port nobody is listening on.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let url = format!("http://127.0.0.1:{port}/results");
        let start = std::time::Instant::now();
        let err = http_get_retrying(&url, Duration::from_secs(1), 3).unwrap_err();
        assert!(err.starts_with("gave up after 3 attempt(s)"), "{err}");
        assert!(err.contains("cannot connect"), "{err}");
        // Two backoff sleeps happened (attempts 0 and 1): at least the
        // first two base steps.
        assert!(start.elapsed() >= Duration::from_millis(150), "{:?}", start.elapsed());
    }

    #[test]
    fn permanent_failures_do_not_retry() {
        // An unsupported scheme fails before any socket is opened; the
        // error comes straight back without the give-up wrapper.
        let err =
            http_get_retrying("https://example.invalid/", Duration::from_secs(1), 5).unwrap_err();
        assert!(err.contains("only http:// is spoken"), "{err}");
        assert!(!err.contains("gave up"), "{err}");
    }

    #[test]
    fn transient_classification_is_by_error_kind() {
        use std::io::{Error, ErrorKind};
        assert!(is_transient(&Error::from(ErrorKind::ConnectionRefused)));
        assert!(is_transient(&Error::from(ErrorKind::TimedOut)));
        assert!(is_transient(&Error::from(ErrorKind::WouldBlock)));
        assert!(!is_transient(&Error::from(ErrorKind::NotFound)));
        assert!(!is_transient(&Error::from(ErrorKind::PermissionDenied)));
    }

    #[test]
    fn parses_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nhi\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.text(), "hi\n");
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nhi").is_err());
        assert!(parse_response(b"garbage").is_err());
    }
}
