//! A tiny HTTP/1.1 client for `regen fetch` and `regen loadgen`.
//!
//! Two wire disciplines, mirroring the two server front ends:
//!
//! * [`http_get`] — one `GET` per connection, `Connection: close`,
//!   read-to-EOF framing. This is the PR 5 client, kept verbatim: the
//!   determinism suite uses it as the close-per-request wire pin.
//! * [`Connection`] — a persistent HTTP/1.1 keep-alive connection:
//!   many `GET`s per socket, `Content-Length` framing, optional
//!   pipelining. `regen loadgen` and the keep-alive determinism tests
//!   ride on this.
//!
//! Mirrors the server's hand-rolled wire layer (the dependency policy
//! cuts both ways).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Splits `http://host:port/path` into authority and path.
pub(crate) fn split_url(url: &str) -> Result<(&str, &str), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported URL {url:?}: only http:// is spoken"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if authority.is_empty() {
        return Err(format!("bad URL {url:?}: empty host"));
    }
    Ok((authority, path))
}

/// Whether an I/O failure is worth retrying: the peer was not there
/// yet (connection refused — a daemon still binding its socket) or
/// stopped answering within the timeout (a daemon still warming up).
/// Anything else — unresolvable host, protocol garbage — is permanent.
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::TimedOut
            // Unix reports a read/write timeout on a nonblocking-style
            // deadline as WouldBlock.
            | std::io::ErrorKind::WouldBlock
    )
}

/// A `GET` attempt that remembers whether its failure was transient.
fn http_get_classified(url: &str, timeout: Duration) -> Result<HttpResponse, (bool, String)> {
    let (authority, path) = split_url(url).map_err(|e| (false, e))?;
    let addr = first_addr(authority)
        .map_err(|e| (false, format!("cannot resolve {authority:?}: {e}")))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| (is_transient(&e), format!("cannot connect to {authority}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| (false, e.to_string()))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| (false, e.to_string()))?;
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| (is_transient(&e), format!("write failed: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| (is_transient(&e), format!("read failed: {e}")))?;
    parse_response(&raw).map_err(|e| (false, e))
}

/// Performs one `GET` and reads the whole response. `timeout` bounds
/// connect, each read, and each write independently.
pub fn http_get(url: &str, timeout: Duration) -> Result<HttpResponse, String> {
    http_get_classified(url, timeout).map_err(|(_, e)| e)
}

/// Bounded exponential backoff with deterministic jitter for transient
/// failures: 50ms base doubling to a 1s cap, plus a jitter of up to
/// half the step derived from an FNV hash of `(url, attempt)` — seeded,
/// so two clients hammering the same slow daemon from different URLs
/// de-synchronize, and a given invocation is reproducible. Public
/// because the cluster proxy reuses the same schedule for its
/// shard-fetch retries.
pub fn backoff_delay(url: &str, attempt: u32) -> Duration {
    let base_ms = 50u64.saturating_mul(1 << attempt.min(5)).min(1_000);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in url.bytes().chain(attempt.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Duration::from_millis(base_ms + h % (base_ms / 2).max(1))
}

/// Parses a full wire response (head + body).
pub fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "truncated response: no header terminator".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "non-UTF-8 response head".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let rest = &raw[head_end + 4..];
    let body = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(len) if len <= rest.len() => rest[..len].to_vec(),
        Some(len) => {
            return Err(format!("truncated body: {} of {len} byte(s)", rest.len()));
        }
        None => rest.to_vec(),
    };
    Ok(HttpResponse { status, headers, body })
}

/// A persistent HTTP/1.1 keep-alive connection to one authority.
///
/// Connects lazily on the first request and transparently reconnects
/// when the socket has been poisoned. The reuse discipline (pinned by
/// unit tests) is:
///
/// * a **fully read response** — any status, 429 included — leaves the
///   connection clean, and the next request reuses the same socket;
/// * any failure **after request bytes may have been written** (partial
///   write, read error, truncated response) poisons the socket: the
///   server's framing state is unknowable, so the next request must
///   reconnect;
/// * a failure **before the request was written** (connect error) never
///   had a socket to poison; the next attempt simply connects again.
///
/// `regend` answers every response with `Content-Length`, which is what
/// keep-alive framing needs; a response without one falls back to
/// read-to-EOF and poisons the connection (the server chose close
/// framing).
#[derive(Debug)]
pub struct Connection {
    authority: String,
    timeout: Duration,
    stream: Option<TcpStream>,
    /// Bytes read past the end of the previous response (pipelining).
    carry: Vec<u8>,
    /// Sockets opened over this connection's lifetime.
    opened: u64,
    /// Responses completed on the *current* socket.
    on_socket: u64,
}

impl Connection {
    /// A connection to `authority` (`host:port`). No socket is opened
    /// until the first request.
    pub fn new(authority: &str, timeout: Duration) -> Connection {
        Connection {
            authority: authority.to_string(),
            timeout,
            stream: None,
            carry: Vec::new(),
            opened: 0,
            on_socket: 0,
        }
    }

    /// A connection to the authority of `url` (the path part is
    /// ignored; pass paths to [`Connection::get`]).
    pub fn to_url(url: &str, timeout: Duration) -> Result<Connection, String> {
        let (authority, _) = split_url(url)?;
        Ok(Connection::new(authority, timeout))
    }

    /// How many TCP sockets this connection has opened so far. A
    /// keep-alive client doing N requests should report 1 here; every
    /// extra count is a reconnect.
    pub fn sockets_opened(&self) -> u64 {
        self.opened
    }

    /// Whether a live socket is currently held.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Drops the current socket (if any); the next request reconnects.
    pub fn poison(&mut self) {
        self.stream = None;
        self.carry.clear();
        self.on_socket = 0;
    }

    fn ensure_connected(&mut self) -> Result<(), (bool, String)> {
        if self.stream.is_some() {
            return Ok(());
        }
        let addr = first_addr(&self.authority)
            .map_err(|e| (false, format!("cannot resolve {:?}: {e}", self.authority)))?;
        let stream = TcpStream::connect_timeout(&addr, self.timeout)
            .map_err(|e| (is_transient(&e), format!("cannot connect to {}: {e}", self.authority)))?;
        stream.set_read_timeout(Some(self.timeout)).map_err(|e| (false, e.to_string()))?;
        stream.set_write_timeout(Some(self.timeout)).map_err(|e| (false, e.to_string()))?;
        let _ = stream.set_nodelay(true);
        self.stream = Some(stream);
        self.opened += 1;
        self.on_socket = 0;
        Ok(())
    }

    /// One keep-alive `GET`. On error the bool reports whether the
    /// failure is transient (worth retrying).
    pub fn get_classified(&mut self, path: &str) -> Result<HttpResponse, (bool, String)> {
        self.ensure_connected()?;
        let request = format!("GET {path} HTTP/1.1\r\nHost: {}\r\n\r\n", self.authority);
        if let Err(e) = self.stream.as_mut().expect("connected").write_all(request.as_bytes()) {
            let transient = is_transient(&e);
            self.poison();
            return Err((transient, format!("write failed: {e}")));
        }
        self.read_response()
    }

    /// One keep-alive `GET` (errors as plain strings).
    pub fn get(&mut self, path: &str) -> Result<HttpResponse, String> {
        self.get_classified(path).map_err(|(_, e)| e)
    }

    /// Writes every request back-to-back, then reads the responses in
    /// order — a fully pipelined burst on one socket.
    pub fn pipeline(&mut self, paths: &[&str]) -> Result<Vec<HttpResponse>, String> {
        self.ensure_connected().map_err(|(_, e)| e)?;
        let mut burst = String::new();
        for path in paths {
            burst.push_str(&format!("GET {path} HTTP/1.1\r\nHost: {}\r\n\r\n", self.authority));
        }
        if let Err(e) = self.stream.as_mut().expect("connected").write_all(burst.as_bytes()) {
            self.poison();
            return Err(format!("write failed: {e}"));
        }
        let mut responses = Vec::with_capacity(paths.len());
        for path in paths {
            let r = self.read_response().map_err(|(_, e)| format!("GET {path}: {e}"))?;
            responses.push(r);
        }
        Ok(responses)
    }

    /// Reads one `Content-Length`-framed response off the socket,
    /// leaving any bytes past it (pipelined follow-ups) buffered.
    fn read_response(&mut self) -> Result<HttpResponse, (bool, String)> {
        // 1. Buffer until the head terminator is in `carry`.
        let head_end = loop {
            if let Some(i) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            match self.read_more() {
                Ok(0) => {
                    // Clean EOF. On a reused socket with no response
                    // bytes this is the classic stale keep-alive race
                    // (the server idle-closed between requests):
                    // transient, retry on a fresh socket. Anything else
                    // is a truncated response.
                    let stale = self.on_socket > 0 && self.carry.is_empty();
                    self.poison();
                    return Err((
                        stale,
                        if stale {
                            "stale keep-alive connection: closed between requests".to_string()
                        } else {
                            "truncated response: no header terminator".to_string()
                        },
                    ));
                }
                Ok(_) => {}
                Err(e) => {
                    let transient = is_transient(&e);
                    self.poison();
                    return Err((transient, format!("read failed: {e}")));
                }
            }
        };
        let head = match std::str::from_utf8(&self.carry[..head_end]) {
            Ok(h) => h.to_string(),
            Err(_) => {
                self.poison();
                return Err((false, "non-UTF-8 response head".to_string()));
            }
        };
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = match status_line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()) {
            Some(s) => s,
            None => {
                self.poison();
                return Err((false, format!("bad status line: {status_line:?}")));
            }
        };
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());

        // 2. Buffer until the declared body is complete.
        let body = match content_length {
            Some(len) => {
                while self.carry.len() < head_end + 4 + len {
                    match self.read_more() {
                        Ok(0) => {
                            let got = self.carry.len() - head_end - 4;
                            self.poison();
                            return Err((false, format!("truncated body: {got} of {len} byte(s)")));
                        }
                        Ok(_) => {}
                        Err(e) => {
                            let transient = is_transient(&e);
                            self.poison();
                            return Err((transient, format!("read failed: {e}")));
                        }
                    }
                }
                let body = self.carry[head_end + 4..head_end + 4 + len].to_vec();
                self.carry.drain(..head_end + 4 + len);
                body
            }
            None => {
                // No length: the server is using close framing. Read to
                // EOF; this socket cannot carry another request.
                loop {
                    match self.read_more() {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(e) => {
                            let transient = is_transient(&e);
                            self.poison();
                            return Err((transient, format!("read failed: {e}")));
                        }
                    }
                }
                let body = self.carry[head_end + 4..].to_vec();
                self.poison();
                body
            }
        };
        if self.stream.is_some() {
            self.on_socket += 1;
            let close = headers
                .iter()
                .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
            if close {
                self.poison();
            }
        }
        Ok(HttpResponse { status, headers, body })
    }

    fn read_more(&mut self) -> std::io::Result<usize> {
        let mut buf = [0u8; 16 * 1024];
        let n = self.stream.as_mut().expect("connected").read(&mut buf)?;
        self.carry.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

/// `GET` with bounded retry on the failures a healthy deployment still
/// produces:
///
/// * **429 / 503** — sleeps the server's `Retry-After` (default one
///   second); the client half of the admission-control and
///   degraded-mode contracts (a draining or shard-degraded `regend`
///   sheds load with 503 + `Retry-After`);
/// * **connection refused / read-timeout** — sleeps a capped
///   exponential backoff with seeded jitter ([`backoff_delay`]), so
///   `regen fetch` survives the race against a daemon that is still
///   binding its socket or warming its caches.
///
/// Permanent failures (unresolvable host, protocol errors, any other
/// HTTP status) return immediately.
///
/// Retries ride one [`Connection`]: a fully read 429 leaves the socket
/// clean, so the polite retry reuses it; a failure after the request
/// was (possibly) written poisons the socket and the retry reconnects;
/// a connect failure just connects again. The unit tests pin both
/// paths by counting server-side accepts.
pub fn http_get_retrying(
    url: &str,
    timeout: Duration,
    max_attempts: u32,
) -> Result<HttpResponse, String> {
    http_get_failover(std::slice::from_ref(&url.to_string()), timeout, max_attempts)
}

/// [`http_get_retrying`] across a list of candidate base URLs: every
/// retryable failure (429/503 pushback, transient connection error)
/// rotates to the next candidate, so a client pointed at a cluster
/// keeps working while any member is up. Each candidate keeps its own
/// keep-alive [`Connection`]; the backoff between attempts uses the
/// same seeded jitter schedule as the single-URL path, keyed by the
/// URL being abandoned so clients de-synchronize. All URLs must share
/// one path (candidates are replicas, not alternatives).
pub fn http_get_failover(
    urls: &[String],
    timeout: Duration,
    max_attempts: u32,
) -> Result<HttpResponse, String> {
    if urls.is_empty() {
        return Err("no candidate URLs".to_string());
    }
    let mut conns = Vec::with_capacity(urls.len());
    let mut path0: Option<String> = None;
    for url in urls {
        let (authority, path) = split_url(url)?;
        match &path0 {
            None => path0 = Some(path.to_string()),
            Some(p) if p != path => {
                return Err(format!(
                    "candidate URLs disagree on the path: {p:?} vs {path:?}"
                ));
            }
            Some(_) => {}
        }
        conns.push(Connection::new(authority, timeout));
    }
    let path = path0.unwrap_or_else(|| "/".to_string());
    let max_attempts = max_attempts.max(1);
    let mut last = String::new();
    for attempt in 0..max_attempts {
        let which = attempt as usize % conns.len();
        let url = &urls[which];
        match conns[which].get_classified(&path) {
            Ok(r) if r.status == 429 || r.status == 503 => {
                let secs =
                    r.header("retry-after").and_then(|v| v.parse::<u64>().ok()).unwrap_or(1);
                last = format!("server busy ({}, Retry-After: {secs})", r.status);
                if attempt + 1 < max_attempts {
                    // With several candidates the rotation is the
                    // backoff: trying the next replica immediately
                    // beats sleeping on a busy one.
                    if conns.len() == 1 {
                        std::thread::sleep(Duration::from_secs(secs));
                    } else {
                        std::thread::sleep(backoff_delay(url, attempt / conns.len() as u32));
                    }
                }
            }
            Err((true, e)) => {
                last = e;
                if attempt + 1 < max_attempts {
                    let delay = if conns.len() == 1 {
                        backoff_delay(url, attempt)
                    } else {
                        backoff_delay(url, attempt / conns.len() as u32)
                    };
                    std::thread::sleep(delay);
                }
            }
            Err((false, e)) => return Err(e),
            Ok(r) => return Ok(r),
        }
    }
    Err(format!("gave up after {max_attempts} attempt(s): {last}"))
}

fn first_addr(authority: &str) -> std::io::Result<std::net::SocketAddr> {
    use std::net::ToSocketAddrs;
    authority.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::NotFound, "no address for host")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_urls() {
        assert_eq!(split_url("http://127.0.0.1:7979/artifact/table1").unwrap(),
                   ("127.0.0.1:7979", "/artifact/table1"));
        assert_eq!(split_url("http://localhost:80").unwrap(), ("localhost:80", "/"));
        assert!(split_url("https://x/").is_err());
        assert!(split_url("http:///x").is_err());
    }

    #[test]
    fn backoff_is_seeded_bounded_and_growing() {
        let url = "http://127.0.0.1:7979/results";
        // Deterministic for a fixed (url, attempt)...
        assert_eq!(backoff_delay(url, 0), backoff_delay(url, 0));
        // ...different across urls (jitter de-synchronizes clients)...
        assert_ne!(
            backoff_delay("http://127.0.0.1:7979/a", 3),
            backoff_delay("http://127.0.0.1:7979/b", 3)
        );
        // ...never below the base step, capped with jitter at 1.5s.
        for attempt in 0..40 {
            let d = backoff_delay(url, attempt);
            assert!(d >= Duration::from_millis(50), "attempt {attempt}: {d:?}");
            assert!(d <= Duration::from_millis(1_500), "attempt {attempt}: {d:?}");
        }
        // The schedule grows: a late attempt waits at least the cap's
        // base where an early one may wait only the first step.
        assert!(backoff_delay(url, 10) >= Duration::from_millis(1_000));
    }

    #[test]
    fn connection_refused_is_retried_then_reported() {
        // Bind-then-drop guarantees a port nobody is listening on.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let url = format!("http://127.0.0.1:{port}/results");
        let start = std::time::Instant::now();
        let err = http_get_retrying(&url, Duration::from_secs(1), 3).unwrap_err();
        assert!(err.starts_with("gave up after 3 attempt(s)"), "{err}");
        assert!(err.contains("cannot connect"), "{err}");
        // Two backoff sleeps happened (attempts 0 and 1): at least the
        // first two base steps.
        assert!(start.elapsed() >= Duration::from_millis(150), "{:?}", start.elapsed());
    }

    #[test]
    fn permanent_failures_do_not_retry() {
        // An unsupported scheme fails before any socket is opened; the
        // error comes straight back without the give-up wrapper.
        let err =
            http_get_retrying("https://example.invalid/", Duration::from_secs(1), 5).unwrap_err();
        assert!(err.contains("only http:// is spoken"), "{err}");
        assert!(!err.contains("gave up"), "{err}");
    }

    #[test]
    fn transient_classification_is_by_error_kind() {
        use std::io::{Error, ErrorKind};
        assert!(is_transient(&Error::from(ErrorKind::ConnectionRefused)));
        assert!(is_transient(&Error::from(ErrorKind::TimedOut)));
        assert!(is_transient(&Error::from(ErrorKind::WouldBlock)));
        assert!(!is_transient(&Error::from(ErrorKind::NotFound)));
        assert!(!is_transient(&Error::from(ErrorKind::PermissionDenied)));
    }

    /// Reads one request head off a test-server socket (requests here
    /// carry no body).
    fn read_request(stream: &mut TcpStream) -> bool {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => return false,
                Ok(_) => buf.push(byte[0]),
            }
            if buf.ends_with(b"\r\n\r\n") {
                return true;
            }
        }
    }

    fn keepalive_reply(stream: &mut TcpStream, status: &str, extra: &str, body: &str) {
        let reply = format!(
            "HTTP/1.1 {status}\r\nContent-Length: {}\r\n{extra}\r\n{body}",
            body.len()
        );
        stream.write_all(reply.as_bytes()).unwrap();
    }

    /// The reuse path: a fully read 429 leaves the keep-alive socket
    /// clean, so the polite retry rides the same connection — the
    /// server sees exactly one accept for three requests.
    #[test]
    fn retrying_reuses_the_connection_across_fully_read_429s() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let url = format!("http://{}/artifact/table1", listener.local_addr().unwrap());
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut requests = 0;
            for status in ["429 Too Many Requests", "429 Too Many Requests", "200 OK"] {
                assert!(read_request(&mut stream), "request {requests} arrived");
                let extra =
                    if status.starts_with("429") { "Retry-After: 0\r\n" } else { "" };
                keepalive_reply(&mut stream, status, extra, "ok\n");
                requests += 1;
            }
            // One accepted socket carried every attempt; a second
            // accept would hang the test (and fail read_request above
            // with EOF when the client gave up).
            requests
        });
        let r = http_get_retrying(&url, Duration::from_secs(5), 5).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.text(), "ok\n");
        assert_eq!(server.join().unwrap(), 3);
    }

    /// The reconnect path: an attempt that failed *after* the request
    /// was written (server went silent; read timed out) poisons the
    /// socket — the retry must arrive on a fresh connection.
    #[test]
    fn retrying_reconnects_after_a_mid_response_failure() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let url = format!("http://{}/artifact/table1", listener.local_addr().unwrap());
        let server = std::thread::spawn(move || {
            // First connection: swallow the request, answer nothing,
            // and keep the socket open so the client sees a timeout
            // rather than an EOF.
            let (mut first, _) = listener.accept().unwrap();
            assert!(read_request(&mut first));
            // Second connection: the retry. Answer it properly.
            let (mut second, _) = listener.accept().unwrap();
            assert!(read_request(&mut second));
            keepalive_reply(&mut second, "200 OK", "", "ok\n");
            drop(first);
            2u32
        });
        let r = http_get_retrying(&url, Duration::from_millis(300), 5).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.text(), "ok\n");
        assert_eq!(server.join().unwrap(), 2, "the retry opened a second connection");
    }

    /// A stale keep-alive socket (server closed between requests) is a
    /// transparent reconnect, not an error.
    #[test]
    fn connection_survives_a_server_side_idle_close() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let authority = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First socket: answer one request, then close it.
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream));
            keepalive_reply(&mut stream, "200 OK", "", "a\n");
            drop(stream);
            // Second socket: the client noticed the stale conn.
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream));
            keepalive_reply(&mut stream, "200 OK", "", "b\n");
        });
        let mut conn = Connection::new(&authority, Duration::from_secs(5));
        assert_eq!(conn.get("/x").unwrap().text(), "a\n");
        // The server closed; the bare get() reports the stale socket...
        let (transient, msg) = conn.get_classified("/y").unwrap_err();
        assert!(transient, "stale keep-alive close is transient: {msg}");
        assert!(msg.contains("stale keep-alive"), "{msg}");
        // ...and the follow-up attempt reconnects and succeeds.
        assert_eq!(conn.get("/y").unwrap().text(), "b\n");
        assert_eq!(conn.sockets_opened(), 2);
        server.join().unwrap();
    }

    /// Pipelined bursts write every request up front and read the
    /// responses back in order off one socket.
    #[test]
    fn pipeline_reads_responses_in_order_from_one_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let authority = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for i in 0..3 {
                assert!(read_request(&mut stream));
                keepalive_reply(&mut stream, "200 OK", "", &format!("body{i}\n"));
            }
        });
        let mut conn = Connection::new(&authority, Duration::from_secs(5));
        let responses = conn.pipeline(&["/a", "/b", "/c"]).unwrap();
        assert_eq!(responses.len(), 3);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(r.status, 200);
            assert_eq!(r.text(), format!("body{i}\n"));
        }
        assert_eq!(conn.sockets_opened(), 1);
        server.join().unwrap();
    }

    /// 503 + `Retry-After` is the degraded-mode sibling of 429: the
    /// client honors the hint and retries on the same socket.
    #[test]
    fn retrying_honors_retry_after_on_503() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let url = format!("http://{}/results", listener.local_addr().unwrap());
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut requests = 0;
            for status in ["503 Service Unavailable", "200 OK"] {
                assert!(read_request(&mut stream), "request {requests} arrived");
                let extra =
                    if status.starts_with("503") { "Retry-After: 0\r\n" } else { "" };
                keepalive_reply(&mut stream, status, extra, "ok\n");
                requests += 1;
            }
            requests
        });
        let r = http_get_retrying(&url, Duration::from_secs(5), 5).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(server.join().unwrap(), 2, "503 retried on the same socket");
    }

    /// Failover rotates to the next candidate on pushback instead of
    /// sleeping on the busy one: the second server answers while the
    /// first keeps shedding.
    #[test]
    fn failover_rotates_across_candidates_on_pushback() {
        let busy = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let ready = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let urls = vec![
            format!("http://{}/results", busy.local_addr().unwrap()),
            format!("http://{}/results", ready.local_addr().unwrap()),
        ];
        let busy_server = std::thread::spawn(move || {
            let (mut stream, _) = busy.accept().unwrap();
            assert!(read_request(&mut stream));
            keepalive_reply(&mut stream, "503 Service Unavailable", "Retry-After: 30\r\n", "");
        });
        let ready_server = std::thread::spawn(move || {
            let (mut stream, _) = ready.accept().unwrap();
            assert!(read_request(&mut stream));
            keepalive_reply(&mut stream, "200 OK", "", "ok\n");
        });
        let start = std::time::Instant::now();
        let r = http_get_failover(&urls, Duration::from_secs(5), 4).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.text(), "ok\n");
        // The 30-second Retry-After was NOT slept: rotation beat it.
        assert!(start.elapsed() < Duration::from_secs(10), "{:?}", start.elapsed());
        busy_server.join().unwrap();
        ready_server.join().unwrap();
    }

    /// A dead candidate (nobody listening) is skipped by the rotation.
    #[test]
    fn failover_skips_a_dead_candidate() {
        let dead_port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let ready = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let urls = vec![
            format!("http://127.0.0.1:{dead_port}/a"),
            format!("http://{}/a", ready.local_addr().unwrap()),
        ];
        let server = std::thread::spawn(move || {
            let (mut stream, _) = ready.accept().unwrap();
            assert!(read_request(&mut stream));
            keepalive_reply(&mut stream, "200 OK", "", "ok\n");
        });
        let r = http_get_failover(&urls, Duration::from_secs(5), 4).unwrap();
        assert_eq!(r.status, 200);
        server.join().unwrap();
        // Mismatched candidate paths are rejected up front.
        let err = http_get_failover(
            &["http://h:1/a".to_string(), "http://h:2/b".to_string()],
            Duration::from_secs(1),
            1,
        )
        .unwrap_err();
        assert!(err.contains("disagree on the path"), "{err}");
        assert!(http_get_failover(&[], Duration::from_secs(1), 1).is_err());
    }

    #[test]
    fn parses_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nhi\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.text(), "hi\n");
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nhi").is_err());
        assert!(parse_response(b"garbage").is_err());
    }
}
