//! A tiny HTTP/1.1 client for `regen fetch`.
//!
//! Just enough to talk to `regend`: one `GET` per connection,
//! `Connection: close`, fixed-length bodies. Mirrors the server's
//! hand-rolled wire layer (the dependency policy cuts both ways).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(lowercased-name, value)` pairs, in order.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Splits `http://host:port/path` into authority and path.
fn split_url(url: &str) -> Result<(&str, &str), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported URL {url:?}: only http:// is spoken"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    if authority.is_empty() {
        return Err(format!("bad URL {url:?}: empty host"));
    }
    Ok((authority, path))
}

/// Performs one `GET` and reads the whole response. `timeout` bounds
/// connect, each read, and each write independently.
pub fn http_get(url: &str, timeout: Duration) -> Result<HttpResponse, String> {
    let (authority, path) = split_url(url)?;
    let addr = first_addr(authority).map_err(|e| format!("cannot resolve {authority:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| format!("cannot connect to {authority}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream.set_write_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let request =
        format!("GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("write failed: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read failed: {e}"))?;
    parse_response(&raw)
}

/// Parses a full wire response (head + body).
pub fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "truncated response: no header terminator".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "non-UTF-8 response head".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let rest = &raw[head_end + 4..];
    let body = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(len) if len <= rest.len() => rest[..len].to_vec(),
        Some(len) => {
            return Err(format!("truncated body: {} of {len} byte(s)", rest.len()));
        }
        None => rest.to_vec(),
    };
    Ok(HttpResponse { status, headers, body })
}

/// `GET` with bounded retry on 429: sleeps the server's `Retry-After`
/// (default one second) between attempts — the client half of the
/// admission-control contract.
pub fn http_get_retrying(
    url: &str,
    timeout: Duration,
    max_attempts: u32,
) -> Result<HttpResponse, String> {
    let mut last = String::new();
    for _ in 0..max_attempts.max(1) {
        match http_get(url, timeout) {
            Ok(r) if r.status == 429 => {
                let secs =
                    r.header("retry-after").and_then(|v| v.parse::<u64>().ok()).unwrap_or(1);
                last = format!("server busy (429, Retry-After: {secs})");
                std::thread::sleep(Duration::from_secs(secs));
            }
            other => return other,
        }
    }
    Err(format!("gave up after {max_attempts} attempt(s): {last}"))
}

fn first_addr(authority: &str) -> std::io::Result<std::net::SocketAddr> {
    use std::net::ToSocketAddrs;
    authority.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::NotFound, "no address for host")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_urls() {
        assert_eq!(split_url("http://127.0.0.1:7979/artifact/table1").unwrap(),
                   ("127.0.0.1:7979", "/artifact/table1"));
        assert_eq!(split_url("http://localhost:80").unwrap(), ("localhost:80", "/"));
        assert!(split_url("https://x/").is_err());
        assert!(split_url("http:///x").is_err());
    }

    #[test]
    fn parses_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\n\r\nhi\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("content-type"), Some("text/plain"));
        assert_eq!(r.text(), "hi\n");
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nhi").is_err());
        assert!(parse_response(b"garbage").is_err());
    }
}
