//! `regen bench-uarch`: the interpreter's own benchmark.
//!
//! Every artifact regeneration is ultimately bounded by how fast
//! [`uarch::Machine`] retires instructions, so this module measures the
//! interpreter itself: a pinned, deterministic four-workload mix —
//! branch-heavy, load/store-heavy, syscall-heavy, and transient-window —
//! executed twice per workload, once through the pre-decoded dispatch
//! loop ([`Machine::run`]) and once through the preserved reference
//! interpreter ([`Machine::run_reference`], the pre-refactor stepper).
//!
//! Two kinds of numbers come out:
//!
//! * **Retired-work counts** (instructions, cycles, transient windows)
//!   are *deterministic*: same binary, same counts, on any machine. CI
//!   pins them with `--check BENCH_uarch.json` — drift means the
//!   interpreter's semantics changed, which must never happen silently.
//! * **Instructions/sec and the decoded/reference speedup** are
//!   *measurements*: they vary with the host and are reported but never
//!   gated on exactly; `--check` only requires the decoded path not to
//!   be slower than the reference path.
//!
//! The workloads run on the Skylake Client model (vulnerable to the full
//! attack menu, so mispredicted branches really open transient windows)
//! and every run double-checks that both steppers retire identical
//! instruction and cycle counts — the benchmark is also an equivalence
//! test.

use std::fmt::Write as _;
use std::time::Instant;

use cpu_models::CpuId;
use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::program::ProgramBuilder;
use uarch::{Cond, Inst, PrivMode, Reg, Width};

/// Base address of the user/benchmark code segment.
const CODE_BASE: u64 = 0x40_0000;
/// Base address of the kernel stub (syscall workload).
const KERNEL_BASE: u64 = 0x80_0000;
/// Base of the mapped data area.
const DATA_BASE: u64 = 0x1_0000;
/// Mapped data pages.
const DATA_PAGES: u64 = 16;

/// Timed repetitions per (workload, stepper); the fastest is reported.
const REPS: usize = 3;

/// The four pinned workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Data-dependent branches off an xorshift stream: dispatch + branch
    /// predictor pressure.
    BranchHeavy,
    /// Store/load pairs marching through the mapped pages: MMU, store
    /// buffer, and cache pressure.
    LoadStoreHeavy,
    /// A user-mode syscall loop bouncing through the kernel stub: mode
    /// switches and kernel-entry mitigation costs.
    SyscallHeavy,
    /// Alternating-direction branches the predictor keeps missing:
    /// every mispredict executes a wrong-path transient window.
    TransientWindow,
}

impl Workload {
    /// All workloads, report order.
    pub const ALL: [Workload; 4] =
        [Workload::BranchHeavy, Workload::LoadStoreHeavy, Workload::SyscallHeavy, Workload::TransientWindow];

    /// Stable snake_case name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Workload::BranchHeavy => "branch_heavy",
            Workload::LoadStoreHeavy => "loadstore_heavy",
            Workload::SyscallHeavy => "syscall_heavy",
            Workload::TransientWindow => "transient_window",
        }
    }

    /// Loop iterations for this workload at a given scale. Syscalls are
    /// far more expensive per iteration (kernel-entry side effects), so
    /// that loop is shorter.
    fn iterations(self, scale: u64) -> u64 {
        match self {
            Workload::SyscallHeavy => scale / 4,
            _ => scale,
        }
    }
}

/// Options for [`run_bench_uarch`].
#[derive(Debug, Clone)]
pub struct UarchBenchOptions {
    /// Loop iterations per workload (before per-workload adjustment).
    pub scale: u64,
}

impl Default for UarchBenchOptions {
    fn default() -> UarchBenchOptions {
        UarchBenchOptions { scale: 300_000 }
    }
}

impl UarchBenchOptions {
    /// The reduced scale used by `--quick` (and CI).
    pub fn quick() -> UarchBenchOptions {
        UarchBenchOptions { scale: 30_000 }
    }
}

/// Per-workload result: pinned retired-work counts plus host-dependent
/// timings.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (snake_case, stable).
    pub name: &'static str,
    /// Committed instructions retired (deterministic).
    pub retired: u64,
    /// Simulated cycles consumed (deterministic).
    pub cycles: u64,
    /// Transient windows opened (deterministic).
    pub transient_windows: u64,
    /// Transient (squashed) instructions executed (deterministic).
    pub transient_insts: u64,
    /// Best-of-[`REPS`] wall seconds for the decoded dispatch loop.
    pub decoded_secs: f64,
    /// Best-of-[`REPS`] wall seconds for the reference interpreter.
    pub reference_secs: f64,
}

impl WorkloadResult {
    /// Decoded-path retirement rate, instructions per second.
    pub fn decoded_ips(&self) -> f64 {
        self.retired as f64 / self.decoded_secs
    }

    /// Reference-path retirement rate, instructions per second.
    pub fn reference_ips(&self) -> f64 {
        self.retired as f64 / self.reference_secs
    }

    /// Decoded-over-reference speedup.
    pub fn speedup(&self) -> f64 {
        self.reference_secs / self.decoded_secs
    }
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct UarchBenchReport {
    /// One entry per workload, [`Workload::ALL`] order.
    pub workloads: Vec<WorkloadResult>,
    /// Scale the workloads ran at (for the JSON header).
    pub scale: u64,
    /// Delta of `uarch::pmc::global` instruction counter across the
    /// decoded runs — proves the process-wide counters see this work.
    pub global_instructions_delta: u64,
}

impl UarchBenchReport {
    /// Total retired instructions across workloads (decoded path).
    pub fn total_retired(&self) -> u64 {
        self.workloads.iter().map(|w| w.retired).sum()
    }

    /// Aggregate decoded instructions/sec (total work over total time).
    pub fn total_decoded_ips(&self) -> f64 {
        let secs: f64 = self.workloads.iter().map(|w| w.decoded_secs).sum();
        self.total_retired() as f64 / secs
    }

    /// Aggregate reference instructions/sec.
    pub fn total_reference_ips(&self) -> f64 {
        let secs: f64 = self.workloads.iter().map(|w| w.reference_secs).sum();
        self.total_retired() as f64 / secs
    }

    /// Aggregate decoded-over-reference speedup.
    pub fn total_speedup(&self) -> f64 {
        let d: f64 = self.workloads.iter().map(|w| w.decoded_secs).sum();
        let r: f64 = self.workloads.iter().map(|w| w.reference_secs).sum();
        r / d
    }

    /// Renders the JSON report (`BENCH_uarch.json`). Deterministic
    /// fields (`retired`, `cycles`, `transient_windows`,
    /// `transient_insts`) come first in each object; everything after
    /// them is a host-dependent measurement.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"bench-uarch/v1\",\n");
        let _ = writeln!(s, "  \"scale\": {},", self.scale);
        s.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"name\": \"{}\", \"retired\": {}, \"cycles\": {}, \"transient_windows\": {}, \"transient_insts\": {}, \"decoded_ips\": {:.0}, \"reference_ips\": {:.0}, \"speedup\": {:.2}}}",
                w.name,
                w.retired,
                w.cycles,
                w.transient_windows,
                w.transient_insts,
                w.decoded_ips(),
                w.reference_ips(),
                w.speedup()
            );
            s.push_str(if i + 1 < self.workloads.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        let _ = writeln!(
            s,
            "  \"total\": {{\"retired\": {}, \"decoded_ips\": {:.0}, \"reference_ips\": {:.0}, \"speedup\": {:.2}}},",
            self.total_retired(),
            self.total_decoded_ips(),
            self.total_reference_ips(),
            self.total_speedup()
        );
        let _ = writeln!(s, "  \"global_instructions_delta\": {}", self.global_instructions_delta);
        s.push_str("}\n");
        s
    }

    /// Renders the human-readable table printed to stdout.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:>12} {:>12} {:>9} {:>14} {:>14} {:>8}",
            "workload", "retired", "cycles", "windows", "decoded i/s", "reference i/s", "speedup"
        );
        for w in &self.workloads {
            let _ = writeln!(
                s,
                "{:<18} {:>12} {:>12} {:>9} {:>14.0} {:>14.0} {:>7.2}x",
                w.name,
                w.retired,
                w.cycles,
                w.transient_windows,
                w.decoded_ips(),
                w.reference_ips(),
                w.speedup()
            );
        }
        let _ = writeln!(
            s,
            "{:<18} {:>12} {:>12} {:>9} {:>14.0} {:>14.0} {:>7.2}x",
            "total",
            self.total_retired(),
            "",
            "",
            self.total_decoded_ips(),
            self.total_reference_ips(),
            self.total_speedup()
        );
        s
    }
}

/// Builds a fresh, fully set-up machine for one workload.
fn build_machine(w: Workload, scale: u64) -> Machine {
    let n = w.iterations(scale);
    let mut m = Machine::new(CpuId::SkylakeClient.model());
    let mut pt = PageTable::new();
    pt.map_range(DATA_BASE, 0x100, DATA_PAGES, Pte::user(0));
    let id = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(id, 0, false)));
    m.set_reg(Reg::SP, DATA_BASE + DATA_PAGES * 4096 - 0x100);

    let mut b = ProgramBuilder::new();
    match w {
        Workload::BranchHeavy => {
            // xorshift in R1; branch on bit 0 of the stream. The branch
            // direction is effectively random, so the conditional
            // predictor takes sustained misses.
            b.mov_imm(Reg::R0, n);
            b.mov_imm(Reg::R1, 0x9e37_79b9_7f4a_7c15);
            b.mov_imm(Reg::R3, 1);
            let top = b.here();
            let skip = b.new_label();
            b.push(Inst::Mov(Reg::R2, Reg::R1));
            b.push(Inst::Shl(Reg::R2, 13));
            b.push(Inst::Xor(Reg::R1, Reg::R2));
            b.push(Inst::Mov(Reg::R2, Reg::R1));
            b.push(Inst::Shr(Reg::R2, 7));
            b.push(Inst::Xor(Reg::R1, Reg::R2));
            b.push(Inst::Test(Reg::R1, Reg::R3));
            b.jcc(Cond::Ne, skip);
            b.add_imm(Reg::R4, 1);
            b.bind(skip);
            b.sub_imm(Reg::R0, 1);
            b.cmp_imm(Reg::R0, 0);
            b.jcc(Cond::Ne, top);
            b.push(Inst::Halt);
        }
        Workload::LoadStoreHeavy => {
            // Store then reload a marching pointer: store-to-load
            // forwarding, TLB, and both cache levels stay busy.
            b.mov_imm(Reg::R0, n);
            b.mov_imm(Reg::R8, DATA_BASE);
            b.mov_imm(Reg::R9, 0);
            b.mov_imm(Reg::R1, 0xdead_beef);
            let top = b.here();
            b.push(Inst::Mov(Reg::R7, Reg::R8));
            b.push(Inst::Add(Reg::R7, Reg::R9));
            b.push(Inst::Store { src: Reg::R1, base: Reg::R7, offset: 0, width: Width::B8 });
            b.push(Inst::Load { dst: Reg::R2, base: Reg::R7, offset: 0, width: Width::B8 });
            b.push(Inst::Load { dst: Reg::R3, base: Reg::R7, offset: 8, width: Width::B4 });
            b.push(Inst::Add(Reg::R1, Reg::R2));
            b.add_imm(Reg::R9, 64);
            b.push(Inst::AndImm(Reg::R9, (DATA_PAGES * 4096 - 64) & !63));
            b.sub_imm(Reg::R0, 1);
            b.cmp_imm(Reg::R0, 0);
            b.jcc(Cond::Ne, top);
            b.push(Inst::Halt);
        }
        Workload::SyscallHeavy => {
            // User loop; the kernel stub below sysrets straight back.
            b.mov_imm(Reg::R0, n);
            let top = b.here();
            b.push(Inst::Syscall);
            b.sub_imm(Reg::R0, 1);
            b.cmp_imm(Reg::R0, 0);
            b.jcc(Cond::Ne, top);
            b.push(Inst::Halt);

            let mut k = ProgramBuilder::new();
            k.push(Inst::Swapgs);
            k.push(Inst::Swapgs);
            k.push(Inst::Sysret);
            m.load_program(k.link(KERNEL_BASE));
            m.syscall_entry = Some(KERNEL_BASE);
            m.mode = PrivMode::User;
        }
        Workload::TransientWindow => {
            // The branch direction follows an xorshift bit stream — no
            // history length learns it — and each arm loads from a
            // different line, so roughly every other iteration opens a
            // wrong-path window with real microarchitectural effects.
            b.mov_imm(Reg::R0, n);
            b.mov_imm(Reg::R8, DATA_BASE);
            b.mov_imm(Reg::R1, 0x2545_f491_4f6c_dd1d);
            let top = b.here();
            let even = b.new_label();
            let join = b.new_label();
            b.push(Inst::Mov(Reg::R2, Reg::R1));
            b.push(Inst::Shl(Reg::R2, 13));
            b.push(Inst::Xor(Reg::R1, Reg::R2));
            b.push(Inst::Mov(Reg::R2, Reg::R1));
            b.push(Inst::Shr(Reg::R2, 7));
            b.push(Inst::Xor(Reg::R1, Reg::R2));
            b.push(Inst::Mov(Reg::R2, Reg::R1));
            b.push(Inst::AndImm(Reg::R2, 1));
            b.cmp_imm(Reg::R2, 0);
            b.jcc(Cond::Eq, even);
            b.push(Inst::Load { dst: Reg::R2, base: Reg::R8, offset: 0, width: Width::B8 });
            b.push(Inst::Add(Reg::R3, Reg::R2));
            b.jmp(join);
            b.bind(even);
            b.push(Inst::Load { dst: Reg::R2, base: Reg::R8, offset: 64, width: Width::B8 });
            b.push(Inst::Add(Reg::R3, Reg::R2));
            b.bind(join);
            b.sub_imm(Reg::R0, 1);
            b.cmp_imm(Reg::R0, 0);
            b.jcc(Cond::Ne, top);
            b.push(Inst::Halt);
        }
    }
    m.load_program(b.link(CODE_BASE));
    m.pc = CODE_BASE;
    m
}

/// Runs one workload through one stepper, returning (seconds, machine).
fn time_one(w: Workload, scale: u64, reference: bool) -> Result<(f64, Machine), String> {
    let mut m = build_machine(w, scale);
    let start = Instant::now();
    let result = if reference {
        m.run_reference(&mut NoEnv, u64::MAX)
    } else {
        m.run(&mut NoEnv, u64::MAX)
    };
    let secs = start.elapsed().as_secs_f64();
    match result {
        Ok(_) => Ok((secs, m)),
        Err(e) => Err(format!("{} ({} path) failed: {e}", w.name(), if reference { "reference" } else { "decoded" })),
    }
}

/// Runs the whole benchmark: every workload, both steppers, best of
/// [`REPS`] repetitions, with a cross-stepper equivalence check on the
/// deterministic counters.
pub fn run_bench_uarch(opts: &UarchBenchOptions) -> Result<UarchBenchReport, String> {
    let (global_before, _, _) = uarch::pmc::global::snapshot();
    let mut workloads = Vec::new();
    for w in Workload::ALL {
        // Warmup (untimed) — faults in page frames, touches the code.
        let (_, decoded_m) = time_one(w, opts.scale, false)?;
        let mut decoded_secs = f64::INFINITY;
        for _ in 0..REPS {
            let (secs, m) = time_one(w, opts.scale, false)?;
            decoded_secs = decoded_secs.min(secs);
            if m.inst_count() != decoded_m.inst_count() || m.cycles() != decoded_m.cycles() {
                return Err(format!("{}: decoded path is not deterministic across runs", w.name()));
            }
        }
        let mut reference_secs = f64::INFINITY;
        let mut reference_m = None;
        for _ in 0..REPS {
            let (secs, m) = time_one(w, opts.scale, true)?;
            reference_secs = reference_secs.min(secs);
            reference_m = Some(m);
        }
        let rm = reference_m.ok_or("no reference run")?;
        // The benchmark doubles as an equivalence test: both steppers
        // must retire identical work.
        if rm.inst_count() != decoded_m.inst_count() || rm.cycles() != decoded_m.cycles() {
            return Err(format!(
                "{}: decoded and reference steppers diverged (retired {} vs {}, cycles {} vs {})",
                w.name(),
                decoded_m.inst_count(),
                rm.inst_count(),
                decoded_m.cycles(),
                rm.cycles()
            ));
        }
        workloads.push(WorkloadResult {
            name: w.name(),
            retired: decoded_m.inst_count(),
            cycles: decoded_m.cycles(),
            transient_windows: decoded_m.transient_window_count(),
            transient_insts: decoded_m.transient_inst_count(),
            decoded_secs,
            reference_secs,
        });
    }
    let (global_after, _, _) = uarch::pmc::global::snapshot();
    Ok(UarchBenchReport {
        workloads,
        scale: opts.scale,
        global_instructions_delta: global_after - global_before,
    })
}

/// Extracts `"key": <digits>` following `from` in `text`.
fn scan_u64(text: &str, from: usize, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = text[from..].find(&needle)? + from + needle.len();
    let digits: String = text[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// A drift found by [`check_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Workload name.
    pub workload: String,
    /// Which counter drifted.
    pub field: &'static str,
    /// Value in the committed file.
    pub pinned: u64,
    /// Value measured now.
    pub measured: u64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}: pinned {} but measured {}",
            self.workload, self.field, self.pinned, self.measured
        )
    }
}

/// Compares a fresh report's deterministic counters against a committed
/// `BENCH_uarch.json`. Timings are never compared — only retired work.
/// The committed file's `scale` decides the scale the fresh run must
/// use, so callers parse that first with [`pinned_scale`].
pub fn check_report(pinned: &str, fresh: &UarchBenchReport) -> Result<Vec<Drift>, String> {
    let mut drifts = Vec::new();
    for w in &fresh.workloads {
        let name_at = pinned
            .find(&format!("\"name\": \"{}\"", w.name))
            .ok_or_else(|| format!("pinned report lacks workload {}", w.name))?;
        for (field, measured) in [
            ("retired", w.retired),
            ("cycles", w.cycles),
            ("transient_windows", w.transient_windows),
            ("transient_insts", w.transient_insts),
        ] {
            let pinned_v = scan_u64(pinned, name_at, field)
                .ok_or_else(|| format!("pinned report lacks {}.{field}", w.name))?;
            if pinned_v != measured {
                drifts.push(Drift {
                    workload: w.name.to_string(),
                    field,
                    pinned: pinned_v,
                    measured,
                });
            }
        }
    }
    Ok(drifts)
}

/// Reads the `scale` header from a committed report.
pub fn pinned_scale(pinned: &str) -> Result<u64, String> {
    scan_u64(pinned, 0, "scale").ok_or_else(|| "pinned report lacks a scale field".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UarchBenchOptions {
        UarchBenchOptions { scale: 2_000 }
    }

    #[test]
    fn bench_runs_and_workloads_do_real_work() {
        let report = run_bench_uarch(&tiny()).unwrap();
        assert_eq!(report.workloads.len(), 4);
        for w in &report.workloads {
            assert!(w.retired > 1_000, "{}: retired {}", w.name, w.retired);
            assert!(w.cycles > w.retired, "{}: cycles {}", w.name, w.cycles);
        }
        let tw = &report.workloads[3];
        assert_eq!(tw.name, "transient_window");
        assert!(tw.transient_windows > 100, "mispredict loop opened {} windows", tw.transient_windows);
        assert!(report.global_instructions_delta >= report.total_retired());
    }

    #[test]
    fn check_passes_against_own_render_and_catches_drift() {
        let report = run_bench_uarch(&tiny()).unwrap();
        let json = report.render_json();
        assert_eq!(pinned_scale(&json).unwrap(), 2_000);
        assert!(check_report(&json, &report).unwrap().is_empty());

        let mut tampered = report.clone();
        tampered.workloads[0].retired += 1;
        let drifts = check_report(&json, &tampered).unwrap();
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].field, "retired");
    }

    #[test]
    fn scan_handles_missing_fields() {
        assert_eq!(scan_u64("{}", 0, "retired"), None);
        assert!(pinned_scale("{}").is_err());
    }
}
