//! Criterion benchmarks for the speculation probe (Tables 9/10) and the
//! eIBRS bimodal experiment (§6.2.2).

use criterion::{criterion_group, criterion_main, Criterion};
use cpu_models::{cascade_lake, CpuId};
use spectrebench::experiments::{eibrs_bimodal, tables9and10};
use spectrebench::probe::{self, ProbeConfig};
use uarch::PrivMode;

fn bench_probe(c: &mut Criterion) {
    eprintln!(
        "== Table 9 ==\n{}",
        tables9and10::render(&tables9and10::run(false))
    );
    eprintln!(
        "== Table 10 ==\n{}",
        tables9and10::render(&tables9and10::run(true))
    );
    eprintln!(
        "== eIBRS bimodal (Cascade Lake) ==\n{}",
        eibrs_bimodal::render(&eibrs_bimodal::run(&cascade_lake(), 128))
    );

    let mut g = c.benchmark_group("probe");
    g.sample_size(10);
    g.bench_function("single_cell_user_to_kernel", |b| {
        let model = CpuId::Broadwell.model();
        let cfg = ProbeConfig {
            train: PrivMode::User,
            victim: PrivMode::Kernel,
            intervening_syscall: true,
            ibrs: false,
        };
        b.iter(|| probe::run(&model, cfg))
    });
    g.bench_function("full_table9_matrix", |b| b.iter(|| tables9and10::run(false)));
    g.bench_function("eibrs_bimodal_histogram", |b| {
        let m = cascade_lake();
        b.iter(|| eibrs_bimodal::run(&m, 128))
    });
    g.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
