//! Timing benchmarks for the speculation probe (Tables 9/10) and the
//! eIBRS bimodal experiment (§6.2.2). Plain `main` harness.

use std::time::Instant;

use cpu_models::{cascade_lake, CpuId};
use spectrebench::experiments::{eibrs_bimodal, tables9and10};
use spectrebench::probe::{self, ProbeConfig};
use spectrebench::Executor;
use uarch::PrivMode;

fn time(name: &str, iters: u32, mut f: impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("probe/{name:32} {per:>12.2?}/iter ({iters} iters)");
}

fn main() {
    let exec = Executor::default();
    match tables9and10::run(&exec, false) {
        Ok(m) => eprintln!("== Table 9 ==\n{}", tables9and10::render(&m)),
        Err(e) => eprintln!("== Table 9 == FAILED: {e}"),
    }
    match tables9and10::run(&exec, true) {
        Ok(m) => eprintln!("== Table 10 ==\n{}", tables9and10::render(&m)),
        Err(e) => eprintln!("== Table 10 == FAILED: {e}"),
    }
    match eibrs_bimodal::run(&exec, &cascade_lake(), 128) {
        Ok(b) => eprintln!("== eIBRS bimodal (Cascade Lake) ==\n{}", eibrs_bimodal::render(&b)),
        Err(e) => eprintln!("== eIBRS bimodal == FAILED: {e}"),
    }

    time("single_cell_user_to_kernel", 10, || {
        let model = CpuId::Broadwell.model();
        let cfg = ProbeConfig {
            train: PrivMode::User,
            victim: PrivMode::Kernel,
            intervening_syscall: true,
            ibrs: false,
        };
        let _ = probe::run(&model, cfg);
    });
    time("full_table9_matrix", 10, || {
        let _ = tables9and10::run(&Executor::default(), false);
    });
    time("eibrs_bimodal_histogram", 10, || {
        let _ = eibrs_bimodal::run(&Executor::default(), &cascade_lake(), 128);
    });
}
