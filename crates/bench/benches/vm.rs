//! Criterion benchmarks for the §4.4 virtual-machine workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use cpu_models::CpuId;
use spectrebench::experiments::vm;

fn bench_vm(c: &mut Criterion) {
    eprintln!(
        "== VM workloads (subset) ==\n{}",
        vm::render(&vm::run(&[CpuId::SkylakeClient, CpuId::CascadeLake]))
    );

    let mut g = c.benchmark_group("vm");
    g.sample_size(10);
    g.bench_function("lfs_smallfile_in_guest", |b| {
        b.iter(|| vm::run(&[CpuId::CascadeLake]))
    });
    g.finish();
}

criterion_group!(benches, bench_vm);
criterion_main!(benches);
