//! Timing benchmarks for the §4.4 virtual-machine workloads. Plain
//! `main` harness.

use std::time::Instant;

use cpu_models::CpuId;
use spectrebench::experiments::vm;
use spectrebench::Executor;

fn main() {
    let exec = Executor::default();
    match vm::run(&exec, &[CpuId::SkylakeClient, CpuId::CascadeLake]) {
        Ok(rows) => eprintln!("== VM workloads (subset) ==\n{}", vm::render(&rows)),
        Err(e) => eprintln!("== VM workloads == FAILED: {e}"),
    }

    let iters = 10;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = vm::run(&Executor::default(), &[CpuId::CascadeLake]);
    }
    let per = t0.elapsed() / iters;
    println!("vm/lfs_smallfile_in_guest {per:>12.2?}/iter ({iters} iters)");
}
