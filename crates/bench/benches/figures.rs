//! Timing benchmarks for the paper's *figures* (end-to-end workload
//! sweeps). Figures are expensive; the timed variants use the quick
//! drivers while the printed output covers a representative CPU subset.
//! Plain `main` harness.

use std::time::Instant;

use cpu_models::CpuId;
use spectrebench::experiments::{figure2, figure3, figure5};
use spectrebench::Executor;

fn time(name: &str, iters: u32, mut f: impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("figures/{name:36} {per:>12.2?}/iter ({iters} iters)");
}

fn main() {
    let exec = Executor::default();
    // Representative regeneration printout (old Intel, new Intel, new AMD).
    let cpus = [CpuId::Broadwell, CpuId::IceLakeServer, CpuId::Zen3];
    match figure2::run(&exec, &cpus, false) {
        Ok(f) => eprintln!("== Figure 2 (subset) ==\n{}", figure2::render(&f)),
        Err(e) => eprintln!("== Figure 2 == FAILED: {e}"),
    }
    match figure3::run(&exec, &cpus, false) {
        Ok(f) => eprintln!("== Figure 3 (subset) ==\n{}", figure3::render(&f)),
        Err(e) => eprintln!("== Figure 3 == FAILED: {e}"),
    }
    match figure5::run(&exec, &cpus) {
        Ok(f) => eprintln!("== Figure 5 (subset) ==\n{}", figure5::render(&f)),
        Err(e) => eprintln!("== Figure 5 == FAILED: {e}"),
    }

    // Fresh executor per iteration: the cell cache would otherwise turn
    // every iteration after the first into a hashmap lookup.
    time("figure2_lebench_attribution_quick", 10, || {
        let _ = figure2::run(&Executor::default(), &[CpuId::Broadwell], true);
    });
    time("figure3_octane_attribution_quick", 10, || {
        let _ = figure3::run(&Executor::default(), &[CpuId::SkylakeClient], true);
    });
    time("figure5_ssbd_parsec", 10, || {
        let _ = figure5::run(&Executor::default(), &[CpuId::Zen3]);
    });
}
