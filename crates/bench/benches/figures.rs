//! Criterion benchmarks for the paper's *figures* (end-to-end workload
//! sweeps). Figures are expensive; the timed variants use the quick
//! drivers while the printed output covers a representative CPU subset.

use criterion::{criterion_group, criterion_main, Criterion};
use cpu_models::CpuId;
use spectrebench::experiments::{figure2, figure3, figure5};

fn bench_figures(c: &mut Criterion) {
    // Representative regeneration printout (old Intel, new Intel, new AMD).
    let cpus = [CpuId::Broadwell, CpuId::IceLakeServer, CpuId::Zen3];
    eprintln!(
        "== Figure 2 (subset) ==\n{}",
        figure2::render(&figure2::run(&cpus, false))
    );
    eprintln!(
        "== Figure 3 (subset) ==\n{}",
        figure3::render(&figure3::run(&cpus, false))
    );
    eprintln!("== Figure 5 (subset) ==\n{}", figure5::render(&figure5::run(&cpus)));

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("figure2_lebench_attribution_quick", |b| {
        b.iter(|| figure2::run(&[CpuId::Broadwell], true))
    });
    g.bench_function("figure3_octane_attribution_quick", |b| {
        b.iter(|| figure3::run(&[CpuId::SkylakeClient], true))
    });
    g.bench_function("figure5_ssbd_parsec", |b| {
        b.iter(|| figure5::run(&[CpuId::Zen3]))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
