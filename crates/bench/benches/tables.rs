//! Criterion benchmarks: one group per paper *table*, timing the harness
//! that regenerates it (and printing the regenerated rows once).

use bench::Artifact;
use criterion::{criterion_group, criterion_main, Criterion};
use cpu_models::{broadwell, ice_lake_server, zen3};
use spectrebench::micro;

fn bench_tables(c: &mut Criterion) {
    // Print each table once so `cargo bench` output doubles as the
    // regeneration record.
    for a in [
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Table3,
        Artifact::Table4,
        Artifact::Table5,
        Artifact::Table6,
        Artifact::Table7,
        Artifact::Table8,
    ] {
        eprintln!("== {} ==\n{}", a.caption(), a.regenerate(true));
    }

    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_matrix", |b| {
        b.iter(|| Artifact::Table1.regenerate(true))
    });
    g.bench_function("table3_entry_primitives", |b| {
        let m = broadwell();
        b.iter(|| {
            (
                micro::syscall_cycles(&m),
                micro::sysret_cycles(&m),
                micro::swap_cr3_cycles(&m),
            )
        })
    });
    g.bench_function("table4_verw", |b| {
        let m = broadwell();
        b.iter(|| micro::verw_cycles(&m))
    });
    g.bench_function("table5_indirect_branches", |b| {
        let m = ice_lake_server();
        b.iter(|| micro::indirect_call_cycles(&m, micro::Dispatch::RetpolineGeneric))
    });
    g.bench_function("table6_ibpb", |b| {
        let m = zen3();
        b.iter(|| micro::ibpb_cycles(&m))
    });
    g.bench_function("table8_lfence", |b| {
        let m = zen3();
        b.iter(|| micro::lfence_cycles(&m))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
