//! Timing benchmarks: one group per paper *table*, timing the harness
//! that regenerates it (and printing the regenerated rows once).
//!
//! Plain `main` harness: each closure is timed over a fixed number of
//! iterations with `std::time::Instant` (no external bench framework).

use std::time::Instant;

use bench::Artifact;
use cpu_models::{broadwell, ice_lake_server, zen3};
use spectrebench::{micro, Executor};

fn time(name: &str, iters: u32, mut f: impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("tables/{name:32} {per:>12.2?}/iter ({iters} iters)");
}

fn main() {
    let exec = Executor::default();
    // Print each table once so the bench output doubles as the
    // regeneration record.
    for a in [
        Artifact::Table1,
        Artifact::Table2,
        Artifact::Table3,
        Artifact::Table4,
        Artifact::Table5,
        Artifact::Table6,
        Artifact::Table7,
        Artifact::Table8,
    ] {
        match a.regenerate(true, &exec) {
            Ok(out) => eprintln!("== {} ==\n{}", a.caption(), out.text),
            Err(e) => eprintln!("== {} == FAILED: {e}", a.caption()),
        }
    }

    time("table1_matrix", 10, || {
        let _ = Artifact::Table1.regenerate(true, &Executor::default());
    });
    time("table3_entry_primitives", 10, || {
        let m = broadwell();
        let _ = (
            micro::syscall_cycles(&m),
            micro::sysret_cycles(&m),
            micro::swap_cr3_cycles(&m),
        );
    });
    time("table4_verw", 10, || {
        let _ = micro::verw_cycles(&broadwell());
    });
    time("table5_indirect_branches", 10, || {
        let _ = micro::indirect_call_cycles(&ice_lake_server(), micro::Dispatch::RetpolineGeneric);
    });
    time("table6_ibpb", 10, || {
        let _ = micro::ibpb_cycles(&zen3());
    });
    time("table8_lfence", 10, || {
        let _ = micro::lfence_cycles(&zen3());
    });
}
