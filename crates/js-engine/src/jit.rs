//! The baseline JIT: lowers bytecode to simulator instructions, weaving
//! in the sandbox mitigations the paper measures (§4.3, §5.4).
//!
//! * **Index masking**: a conditional move zeroes the index when the
//!   bounds check fails, before every array element access. On the
//!   committed path it is a no-op (the bounds check already branched);
//!   on the speculative path it pins the access in bounds.
//! * **Object guards**: after the shape check, a conditional move
//!   redirects the object pointer to a harmless "poison" page when the
//!   check fails, so a mis-speculated type cannot expose out-of-bounds
//!   fields.
//! * **Other JS mitigations** (the paper's "other JavaScript" slice):
//!   heap references are stored poisoned (XORed with a key) and
//!   unpoisoned at each use, so leaked pointer bits are useless; this is
//!   WebKit/SpiderMonkey-style pointer poisoning.
//!
//! Register conventions: `R14` = operand stack pointer (grows up),
//! `R10` = locals frame base, `R1`–`R6` scratch, `R0` return value.

use uarch::isa::{Cond, FReg, Inst, Reg, Width};
use uarch::program::Label;
use uarch::ProgramBuilder;

use crate::bytecode::{BcLabel, Function, Op};
use crate::engine::Engine;
use crate::JsMitigations;

/// Offsets within the process data arena.
pub mod layout {
    /// Where the main function's result is stored.
    pub const RESULT_OFF: u64 = 0x10;
    /// The heap bump-pointer cell.
    pub const HEAP_CELL_OFF: u64 = 0x20;
    /// Poison page for object-guard redirection (mapped, zero-filled).
    pub const POISON_OFF: u64 = 0x1000;
    /// Operand stack base.
    pub const OPSTACK_OFF: u64 = 0x4000;
    /// Locals frame area base.
    pub const FRAMES_OFF: u64 = 0x30000;
    /// Heap base.
    pub const HEAP_OFF: u64 = 0x60000;
    /// Pointer-poisoning key (flips high address bits).
    pub const POISON_KEY: u64 = 0x5a5a_0000_0000_0000;
}

/// The JIT compiler for one engine instance.
pub struct Jit<'e> {
    engine: &'e Engine,
    mits: JsMitigations,
    /// Virtual address of the data arena.
    data_base: u64,
    b: ProgramBuilder,
    func_labels: Vec<Label>,
}

impl<'e> Jit<'e> {
    /// Creates a JIT for `engine` with the given mitigation set, placing
    /// runtime structures relative to `data_base`.
    pub fn new(engine: &'e Engine, mits: JsMitigations, data_base: u64) -> Jit<'e> {
        Jit { engine, mits, data_base, b: ProgramBuilder::new(), func_labels: Vec::new() }
    }

    /// Compiles the whole engine into a program builder. The emitted code
    /// starts with a prologue that initializes the runtime, calls main,
    /// stores its result at `RESULT_OFF`, and then runs `epilogue`.
    pub fn compile(mut self, epilogue: impl FnOnce(&mut ProgramBuilder)) -> ProgramBuilder {
        for _ in 0..self.engine.function_count() {
            let l = self.b.new_label();
            self.func_labels.push(l);
        }

        // Prologue.
        self.b.mov_imm(Reg::R14, self.data_base + layout::OPSTACK_OFF);
        self.b.mov_imm(Reg::R10, self.data_base + layout::FRAMES_OFF);
        self.b.mov_imm(Reg::R1, self.data_base + layout::HEAP_CELL_OFF);
        self.b.mov_imm(Reg::R2, self.data_base + layout::HEAP_OFF);
        self.b.push(Inst::Store { src: Reg::R2, base: Reg::R1, offset: 0, width: Width::B8 });
        let main = self.func_labels[self.engine.main_id()];
        self.b.call(main);
        self.b.mov_imm(Reg::R1, self.data_base + layout::RESULT_OFF);
        self.b.push(Inst::Store { src: Reg::R0, base: Reg::R1, offset: 0, width: Width::B8 });
        epilogue(&mut self.b);

        // Function bodies.
        for fid in 0..self.engine.function_count() {
            let label = self.func_labels[fid];
            self.b.bind(label);
            let func = self.engine.function(fid).clone();
            self.compile_function(&func);
        }
        self.b
    }

    fn compile_function(&mut self, func: &Function) {
        // Zero the non-argument locals (stale data from earlier frames).
        if func.n_locals > func.n_args {
            self.b.mov_imm(Reg::R1, 0);
            for i in func.n_args..func.n_locals {
                self.b.push(Inst::Store {
                    src: Reg::R1,
                    base: Reg::R10,
                    offset: i as i64 * 8,
                    width: Width::B8,
                });
            }
        }

        // Map bytecode labels to machine labels.
        let mut bc_labels: std::collections::HashMap<BcLabel, Label> =
            std::collections::HashMap::new();
        for l in func.labels.keys() {
            bc_labels.insert(*l, self.b.new_label());
        }
        // Positions where labels bind (bytecode index -> labels bound there).
        let mut binds: std::collections::HashMap<usize, Vec<BcLabel>> =
            std::collections::HashMap::new();
        for (l, idx) in &func.labels {
            binds.entry(*idx).or_default().push(*l);
        }

        let mut idx = 0;
        while idx < func.code.len() {
            if let Some(ls) = binds.get(&idx) {
                for l in ls {
                    let ml = bc_labels[l];
                    self.b.bind(ml);
                }
            }
            // Peephole: fuse a value-producing op with its consumer to
            // avoid a push/pop round trip through the operand stack —
            // the standard baseline-JIT "top of stack in a register"
            // optimization. Never fuse across a jump target.
            let next_is_target = binds.contains_key(&(idx + 1));
            if !next_is_target && idx + 1 < func.code.len() {
                if let Some(consumed) =
                    self.try_fuse(func.code[idx], func.code[idx + 1])
                {
                    idx += consumed;
                    continue;
                }
            }
            self.compile_op(func, func.code[idx], &bc_labels);
            idx += 1;
        }
        if let Some(ls) = binds.get(&func.code.len()) {
            for l in ls {
                let ml = bc_labels[l];
                self.b.bind(ml);
            }
        }
        // Implicit return 0 when control falls off the end.
        self.b.mov_imm(Reg::R0, 0);
        self.b.push(Inst::Ret);
    }

    /// Attempts to fuse `first` (a value producer) with `second` (its
    /// consumer). Returns `Some(2)` when both ops were compiled fused.
    fn try_fuse(&mut self, first: Op, second: Op) -> Option<usize> {
        // Producer: materialize the value into R2 without touching the
        // operand stack.
        enum Src {
            Imm(u64),
            Local(u8),
        }
        let src = match first {
            Op::Const(v) => Src::Imm(v as u64),
            Op::FConst(v) => Src::Imm(v.to_bits()),
            Op::GetLocal(n) => Src::Local(n),
            _ => return None,
        };
        let load_src = |jit: &mut Jit<'_>, reg: Reg| match src {
            Src::Imm(v) => {
                jit.b.mov_imm(reg, v);
            }
            Src::Local(n) => {
                jit.b.push(Inst::Load {
                    dst: reg,
                    base: Reg::R10,
                    offset: n as i64 * 8,
                    width: Width::B8,
                });
            }
        };
        match second {
            // value; SetLocal -> a straight register/immediate store.
            Op::SetLocal(n) => {
                load_src(self, Reg::R1);
                self.b.push(Inst::Store {
                    src: Reg::R1,
                    base: Reg::R10,
                    offset: n as i64 * 8,
                    width: Width::B8,
                });
                Some(2)
            }
            // a on stack; value; binop -> pop a, combine, push.
            Op::Add | Op::Sub | Op::Mul | Op::And | Op::Or | Op::Xor => {
                self.pop_reg(Reg::R1);
                load_src(self, Reg::R2);
                let inst = match second {
                    Op::Add => Inst::Add(Reg::R1, Reg::R2),
                    Op::Sub => Inst::Sub(Reg::R1, Reg::R2),
                    Op::Mul => Inst::Mul(Reg::R1, Reg::R2),
                    Op::And => Inst::And(Reg::R1, Reg::R2),
                    Op::Or => Inst::Or(Reg::R1, Reg::R2),
                    _ => Inst::Xor(Reg::R1, Reg::R2),
                };
                self.b.push(inst);
                self.push_reg(Reg::R1);
                Some(2)
            }
            // a on stack; value; compare -> pop a, compare, push 0/1.
            Op::Lt | Op::Le | Op::EqCmp | Op::Gt => {
                self.pop_reg(Reg::R1);
                load_src(self, Reg::R2);
                self.b.push(Inst::Cmp(Reg::R1, Reg::R2));
                self.b.mov_imm(Reg::R3, 0);
                let cond = match second {
                    Op::Lt => Cond::Lt,
                    Op::Le => Cond::Le,
                    Op::EqCmp => Cond::Eq,
                    _ => Cond::Gt,
                };
                self.b.push(Inst::CmovImm(cond, Reg::R3, 1));
                self.push_reg(Reg::R3);
                Some(2)
            }
            _ => None,
        }
    }

    fn push_reg(&mut self, r: Reg) {
        self.b.push(Inst::Store { src: r, base: Reg::R14, offset: 0, width: Width::B8 });
        self.b.push(Inst::AddImm(Reg::R14, 8));
    }

    fn pop_reg(&mut self, r: Reg) {
        self.b.push(Inst::SubImm(Reg::R14, 8));
        self.b.push(Inst::Load { dst: r, base: Reg::R14, offset: 0, width: Width::B8 });
    }

    /// Unpoisons a heap reference in `r` (pointer-poisoning mitigation).
    fn unpoison(&mut self, r: Reg) {
        if self.mits.other_js {
            self.b.push(Inst::XorImm(r, layout::POISON_KEY));
        }
    }

    /// Poisons a heap reference in `r` before it goes to memory/stack.
    fn poison(&mut self, r: Reg) {
        if self.mits.other_js {
            self.b.push(Inst::XorImm(r, layout::POISON_KEY));
        }
    }

    /// Emits a bump allocation of `words` 64-bit words; leaves the raw
    /// (unpoisoned) reference in `R3`.
    fn emit_alloc(&mut self, words: u64) {
        self.b.mov_imm(Reg::R1, self.data_base + layout::HEAP_CELL_OFF);
        self.b.push(Inst::Load { dst: Reg::R2, base: Reg::R1, offset: 0, width: Width::B8 });
        self.b.push(Inst::Mov(Reg::R3, Reg::R2));
        self.b.push(Inst::AddImm(Reg::R2, words * 8));
        self.b.push(Inst::Store { src: Reg::R2, base: Reg::R1, offset: 0, width: Width::B8 });
    }

    fn compile_op(
        &mut self,
        func: &Function,
        op: Op,
        bc_labels: &std::collections::HashMap<BcLabel, Label>,
    ) {
        match op {
            Op::Const(v) => {
                self.b.mov_imm(Reg::R1, v as u64);
                self.push_reg(Reg::R1);
            }
            Op::FConst(v) => {
                self.b.mov_imm(Reg::R1, v.to_bits());
                self.push_reg(Reg::R1);
            }
            Op::GetLocal(n) => {
                self.b.push(Inst::Load {
                    dst: Reg::R1,
                    base: Reg::R10,
                    offset: n as i64 * 8,
                    width: Width::B8,
                });
                self.push_reg(Reg::R1);
            }
            Op::SetLocal(n) => {
                self.pop_reg(Reg::R1);
                self.b.push(Inst::Store {
                    src: Reg::R1,
                    base: Reg::R10,
                    offset: n as i64 * 8,
                    width: Width::B8,
                });
            }
            Op::Dup => {
                self.b.push(Inst::Load {
                    dst: Reg::R1,
                    base: Reg::R14,
                    offset: -8,
                    width: Width::B8,
                });
                self.push_reg(Reg::R1);
            }
            Op::Drop => {
                self.b.push(Inst::SubImm(Reg::R14, 8));
            }

            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::And | Op::Or | Op::Xor => {
                self.pop_reg(Reg::R2);
                self.pop_reg(Reg::R1);
                let inst = match op {
                    Op::Add => Inst::Add(Reg::R1, Reg::R2),
                    Op::Sub => Inst::Sub(Reg::R1, Reg::R2),
                    Op::Mul => Inst::Mul(Reg::R1, Reg::R2),
                    Op::Div => Inst::Div(Reg::R1, Reg::R2),
                    Op::And => Inst::And(Reg::R1, Reg::R2),
                    Op::Or => Inst::Or(Reg::R1, Reg::R2),
                    _ => Inst::Xor(Reg::R1, Reg::R2),
                };
                self.b.push(inst);
                self.push_reg(Reg::R1);
            }
            Op::Shl(k) => {
                self.pop_reg(Reg::R1);
                self.b.push(Inst::Shl(Reg::R1, k));
                self.push_reg(Reg::R1);
            }
            Op::Shr(k) => {
                self.pop_reg(Reg::R1);
                self.b.push(Inst::Shr(Reg::R1, k));
                self.push_reg(Reg::R1);
            }

            Op::FAdd | Op::FSub | Op::FMul => {
                self.b.push(Inst::SubImm(Reg::R14, 8));
                self.b.push(Inst::Fload { dst: FReg::F1, base: Reg::R14, offset: 0 });
                self.b.push(Inst::SubImm(Reg::R14, 8));
                self.b.push(Inst::Fload { dst: FReg::F0, base: Reg::R14, offset: 0 });
                let inst = match op {
                    Op::FAdd => Inst::Fadd(FReg::F0, FReg::F1),
                    Op::FSub => Inst::Fsub(FReg::F0, FReg::F1),
                    _ => Inst::Fmul(FReg::F0, FReg::F1),
                };
                self.b.push(inst);
                self.b.push(Inst::Fstore { src: FReg::F0, base: Reg::R14, offset: 0 });
                self.b.push(Inst::AddImm(Reg::R14, 8));
            }

            Op::Lt | Op::Le | Op::EqCmp | Op::Gt => {
                self.pop_reg(Reg::R2);
                self.pop_reg(Reg::R1);
                self.b.push(Inst::Cmp(Reg::R1, Reg::R2));
                self.b.mov_imm(Reg::R3, 0);
                let cond = match op {
                    Op::Lt => Cond::Lt,
                    Op::Le => Cond::Le,
                    Op::EqCmp => Cond::Eq,
                    _ => Cond::Gt,
                };
                self.b.push(Inst::CmovImm(cond, Reg::R3, 1));
                self.push_reg(Reg::R3);
            }

            Op::Jump(l) => {
                let ml = bc_labels[&l];
                self.b.jmp(ml);
            }
            Op::JumpIfFalse(l) => {
                self.pop_reg(Reg::R1);
                self.b.cmp_imm(Reg::R1, 0);
                let ml = bc_labels[&l];
                self.b.jcc(Cond::Eq, ml);
            }

            Op::NewArray(len) => {
                self.emit_alloc(1 + len as u64);
                self.b.mov_imm(Reg::R4, len as u64);
                self.b.push(Inst::Store { src: Reg::R4, base: Reg::R3, offset: 0, width: Width::B8 });
                self.poison(Reg::R3);
                self.push_reg(Reg::R3);
            }
            Op::ArrayLen => {
                self.pop_reg(Reg::R1);
                self.unpoison(Reg::R1);
                self.b.push(Inst::Load { dst: Reg::R2, base: Reg::R1, offset: 0, width: Width::B8 });
                self.push_reg(Reg::R2);
            }
            Op::ArrayGet => {
                let oob = self.b.new_label();
                let done = self.b.new_label();
                self.pop_reg(Reg::R2); // index
                self.pop_reg(Reg::R1); // array
                self.unpoison(Reg::R1);
                self.b.push(Inst::Load { dst: Reg::R3, base: Reg::R1, offset: 0, width: Width::B8 });
                self.b.push(Inst::Cmp(Reg::R2, Reg::R3));
                self.b.jcc(Cond::AboveEq, oob);
                if self.mits.index_masking {
                    // Zero the index when out of bounds: blocks the
                    // speculative out-of-bounds access (Spectre V1).
                    self.b.push(Inst::CmovImm(Cond::AboveEq, Reg::R2, 0));
                }
                self.b.push(Inst::Shl(Reg::R2, 3));
                self.b.push(Inst::Add(Reg::R2, Reg::R1));
                self.b.push(Inst::Load { dst: Reg::R4, base: Reg::R2, offset: 8, width: Width::B8 });
                self.push_reg(Reg::R4);
                self.b.jmp(done);
                self.b.bind(oob);
                self.b.mov_imm(Reg::R4, 0);
                self.push_reg(Reg::R4);
                self.b.bind(done);
            }
            Op::ArraySet => {
                let skip = self.b.new_label();
                self.pop_reg(Reg::R3); // value
                self.pop_reg(Reg::R2); // index
                self.pop_reg(Reg::R1); // array
                self.unpoison(Reg::R1);
                self.b.push(Inst::Load { dst: Reg::R4, base: Reg::R1, offset: 0, width: Width::B8 });
                self.b.push(Inst::Cmp(Reg::R2, Reg::R4));
                self.b.jcc(Cond::AboveEq, skip);
                if self.mits.index_masking {
                    self.b.push(Inst::CmovImm(Cond::AboveEq, Reg::R2, 0));
                }
                self.b.push(Inst::Shl(Reg::R2, 3));
                self.b.push(Inst::Add(Reg::R2, Reg::R1));
                self.b.push(Inst::Store { src: Reg::R3, base: Reg::R2, offset: 8, width: Width::B8 });
                self.b.bind(skip);
            }

            Op::NewObject(shape) => {
                let slots = self.engine.shape_slots(shape);
                self.emit_alloc(1 + slots as u64);
                self.b.mov_imm(Reg::R4, shape);
                self.b.push(Inst::Store { src: Reg::R4, base: Reg::R3, offset: 0, width: Width::B8 });
                self.poison(Reg::R3);
                self.push_reg(Reg::R3);
            }
            Op::GetProp(shape, slot) => {
                let bail = self.b.new_label();
                let done = self.b.new_label();
                self.pop_reg(Reg::R1);
                self.unpoison(Reg::R1);
                self.b.push(Inst::Load { dst: Reg::R2, base: Reg::R1, offset: 0, width: Width::B8 });
                self.b.cmp_imm(Reg::R2, shape);
                self.b.jcc(Cond::Ne, bail);
                if self.mits.object_guards {
                    // Shape-check poisoning: if the guard failed, the
                    // speculative path dereferences the harmless poison
                    // page instead of a type-confused object.
                    self.b.push(Inst::CmovImm(
                        Cond::Ne,
                        Reg::R1,
                        self.data_base + layout::POISON_OFF,
                    ));
                }
                self.b.push(Inst::Load {
                    dst: Reg::R3,
                    base: Reg::R1,
                    offset: 8 + slot as i64 * 8,
                    width: Width::B8,
                });
                self.push_reg(Reg::R3);
                self.b.jmp(done);
                self.b.bind(bail);
                self.b.mov_imm(Reg::R3, 0);
                self.push_reg(Reg::R3);
                self.b.bind(done);
            }
            Op::SetProp(shape, slot) => {
                let skip = self.b.new_label();
                self.pop_reg(Reg::R2); // value
                self.pop_reg(Reg::R1); // object
                self.unpoison(Reg::R1);
                self.b.push(Inst::Load { dst: Reg::R3, base: Reg::R1, offset: 0, width: Width::B8 });
                self.b.cmp_imm(Reg::R3, shape);
                self.b.jcc(Cond::Ne, skip);
                if self.mits.object_guards {
                    self.b.push(Inst::CmovImm(
                        Cond::Ne,
                        Reg::R1,
                        self.data_base + layout::POISON_OFF,
                    ));
                }
                self.b.push(Inst::Store {
                    src: Reg::R2,
                    base: Reg::R1,
                    offset: 8 + slot as i64 * 8,
                    width: Width::B8,
                });
                self.b.bind(skip);
            }

            Op::Call(fid, nargs) => {
                // Move stack arguments into the callee's locals, which sit
                // just past the caller's frame.
                let frame = func.n_locals as i64 * 8;
                for i in (0..nargs as i64).rev() {
                    self.pop_reg(Reg::R1);
                    self.b.push(Inst::Store {
                        src: Reg::R1,
                        base: Reg::R10,
                        offset: frame + i * 8,
                        width: Width::B8,
                    });
                }
                self.b.push(Inst::AddImm(Reg::R10, frame as u64));
                let fl = self.func_labels[fid];
                self.b.call(fl);
                self.b.push(Inst::SubImm(Reg::R10, frame as u64));
                self.push_reg(Reg::R0);
            }
            Op::Return => {
                self.pop_reg(Reg::R0);
                self.b.push(Inst::Ret);
            }
            Op::ReadTimer => {
                self.b.push(Inst::Rdtsc(Reg::R1));
                if self.mits.other_js {
                    // Timer-precision reduction: round down to a coarse
                    // granularity so cache-hit/miss differences vanish
                    // from the sandbox's view.
                    self.b.push(Inst::AndImm(Reg::R1, !0x7ff));
                }
                self.push_reg(Reg::R1);
            }
        }
    }
}
