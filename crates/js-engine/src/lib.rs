//! # js-engine — a miniature JavaScript-like engine with Spectre sandbox
//! mitigations
//!
//! Production JS engines defend their sandbox boundary with extra
//! instructions woven into JIT output (paper §4.3, §5.4): **index
//! masking** before array accesses, **object guards** after shape checks,
//! and assorted pointer-poisoning / timer-coarsening measures. This crate
//! reproduces that mechanism literally: a stack-bytecode engine with a
//! reference interpreter and a baseline JIT that lowers to `uarch`
//! instructions, inserting exactly those guard sequences when enabled.
//!
//! The Octane-2-like benchmark suite (module [`octane`]) provides the
//! workload for the paper's Figure 3: each benchmark is validated against
//! the interpreter *and* an independent Rust reference, so the mitigation
//! overhead measurements run on provably correct code.
//!
//! The engine runs as a *sandboxed process* on the simulated kernel: it
//! enters seccomp at startup like Firefox's content processes — which is
//! what opted browsers into SSBD under pre-5.16 kernels (§4.3, §7).

pub mod bytecode;
pub mod engine;
pub mod interp;
pub mod jit;
pub mod octane;

pub use bytecode::{FuncId, Function, FunctionBuilder, Op, ShapeId};
pub use engine::{Engine, RunOutcome, Shape};

/// Which JS-level mitigations the JIT weaves into its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsMitigations {
    /// Index masking before array element accesses (Spectre V1).
    pub index_masking: bool,
    /// Object-pointer poisoning after failed shape checks (Spectre V1
    /// type-confusion variants).
    pub object_guards: bool,
    /// The paper's "other JavaScript" slice: heap-reference poisoning
    /// (and, in real engines, timer coarsening).
    pub other_js: bool,
}

impl JsMitigations {
    /// Everything on (the production default).
    pub fn full() -> JsMitigations {
        JsMitigations { index_masking: true, object_guards: true, other_js: true }
    }

    /// Everything off.
    pub fn none() -> JsMitigations {
        JsMitigations { index_masking: false, object_guards: false, other_js: false }
    }
}
