//! `navier-stokes` — a float-stencil analogue.
//!
//! Octane's NavierStokes solves a fluid grid with floating-point stencil
//! sweeps over typed arrays. This analogue runs a 1-D diffusion stencil
//! over a float array: the same array-read/float-math/array-write inner
//! loop, where index masking sits on every element access.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "navier-stokes";

/// Grid cells.
const CELLS: i64 = 128;
/// Diffusion sweeps.
const SWEEPS: i64 = 60;
/// Stencil weight.
const WEIGHT: f64 = 0.3330078125; // exactly representable

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();

    // Locals: 0=grid, 1=i, 2=sweep, 3=sum(bits).
    let mut f = FunctionBuilder::new("main", 0, 4);

    // grid[i] = (i % 7) as float — build via integer i, float conversion
    // is emulated by pushing precomputed f64 constants cannot depend on i,
    // so initialize with a simple arithmetic float recurrence instead:
    // v = 0.0; for i: grid[i] = v; v = v * 0.5 + 1.25.
    f.op(Op::NewArray(CELLS as u32));
    f.op(Op::SetLocal(0));
    f.op(Op::FConst(0.0));
    f.op(Op::SetLocal(3)); // reuse 3 as the float seed v
    f.op(Op::Const(0));
    f.op(Op::SetLocal(1));
    {
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(CELLS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(3));
        f.op(Op::ArraySet);
        // v = v * 0.5 + 1.25
        f.op(Op::GetLocal(3));
        f.op(Op::FConst(0.5));
        f.op(Op::FMul);
        f.op(Op::FConst(1.25));
        f.op(Op::FAdd);
        f.op(Op::SetLocal(3));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    }

    // Sweeps: for i in 1..CELLS-1: g[i] = (g[i-1] + g[i] + g[i+1]) * W.
    f.counted_loop(2, SWEEPS, |f| {
        f.op(Op::Const(1));
        f.op(Op::SetLocal(1));
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(CELLS - 1));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        // g[i] = (g[i-1] + g[i] + g[i+1]) * W
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        // compute value first: push g[i-1]
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Sub);
        f.op(Op::ArrayGet);
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::ArrayGet);
        f.op(Op::FAdd);
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::ArrayGet);
        f.op(Op::FAdd);
        f.op(Op::FConst(WEIGHT));
        f.op(Op::FMul);
        f.op(Op::ArraySet);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    });

    // Checksum: XOR of all cell bit patterns.
    f.op(Op::Const(0));
    f.op(Op::SetLocal(3));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(1));
    {
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(CELLS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::ArrayGet);
        f.op(Op::Xor);
        f.op(Op::SetLocal(3));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    }
    f.op(Op::GetLocal(3));
    f.op(Op::Return);

    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation (bit-identical IEEE order).
pub fn reference() -> u64 {
    let mut grid = vec![0f64; CELLS as usize];
    let mut v = 0f64;
    for cell in grid.iter_mut() {
        *cell = v;
        v = v * 0.5 + 1.25;
    }
    for _ in 0..SWEEPS {
        for i in 1..(CELLS - 1) as usize {
            grid[i] = (grid[i - 1] + grid[i] + grid[i + 1]) * WEIGHT;
        }
    }
    let mut acc = 0u64;
    for cell in &grid {
        acc ^= cell.to_bits();
    }
    acc
}
