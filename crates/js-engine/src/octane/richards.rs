//! `richards` — an OS-scheduler simulation analogue.
//!
//! Octane's richards simulates task dispatching; this analogue keeps the
//! operation mix (object property reads/writes + branches in a hot loop)
//! with a bank of task objects whose states evolve round-robin.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "richards";

/// Task count.
const TASKS: i64 = 6;
/// Scheduler rounds.
const ROUNDS: i64 = 400;

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();
    let task = e.add_shape(vec!["state", "work"]);

    // Locals: 0=tasks array, 1=i, 2=round counter, 3=t, 4=acc, 5=s.
    let mut f = FunctionBuilder::new("main", 0, 6);

    // tasks = new Array(TASKS); for i in 0..TASKS: tasks[i] = Task(i+1, 0)
    f.op(Op::NewArray(TASKS as u32));
    f.op(Op::SetLocal(0));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(1));
    {
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(TASKS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        // t = new Task; t.state = i + 1; t.work = 0 (fresh heap is zero).
        f.op(Op::NewObject(task));
        f.op(Op::SetLocal(3));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetProp(task, 0));
        // tasks[i] = t
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(3));
        f.op(Op::ArraySet);
        // i += 1
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    }

    // Scheduler rounds.
    f.counted_loop(2, ROUNDS, |f| {
        f.op(Op::Const(0));
        f.op(Op::SetLocal(1));
        let top = f.new_label();
        let done = f.new_label();
        let skip = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(TASKS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        // t = tasks[i]; s = t.state
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::ArrayGet);
        f.op(Op::SetLocal(3));
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(task, 0));
        f.op(Op::SetLocal(5));
        // if s != 0 { t.work += s; t.state = (s*5+3) & 7 }
        f.op(Op::GetLocal(5));
        f.op(Op::JumpIfFalse(skip));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(task, 1));
        f.op(Op::GetLocal(5));
        f.op(Op::Add);
        f.op(Op::SetProp(task, 1));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(5));
        f.op(Op::Const(5));
        f.op(Op::Mul);
        f.op(Op::Const(3));
        f.op(Op::Add);
        f.op(Op::Const(7));
        f.op(Op::And);
        f.op(Op::SetProp(task, 0));
        f.bind(skip);
        // i += 1
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    });

    // acc = sum(t.work * 3 + t.state)
    f.op(Op::Const(0));
    f.op(Op::SetLocal(4));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(1));
    {
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(TASKS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::ArrayGet);
        f.op(Op::SetLocal(3));
        f.op(Op::GetLocal(4));
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(task, 1));
        f.op(Op::Const(3));
        f.op(Op::Mul);
        f.op(Op::Add);
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(task, 0));
        f.op(Op::Add);
        f.op(Op::SetLocal(4));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    }
    f.op(Op::GetLocal(4));
    f.op(Op::Return);

    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation of the same computation.
pub fn reference() -> u64 {
    let mut state: Vec<u64> = (1..=TASKS as u64).collect();
    let mut work = vec![0u64; TASKS as usize];
    for _ in 0..ROUNDS {
        for i in 0..TASKS as usize {
            let s = state[i];
            if s != 0 {
                work[i] = work[i].wrapping_add(s);
                state[i] = (s.wrapping_mul(5).wrapping_add(3)) & 7;
            }
        }
    }
    let mut acc = 0u64;
    for i in 0..TASKS as usize {
        acc = acc.wrapping_add(work[i].wrapping_mul(3)).wrapping_add(state[i]);
    }
    acc
}
