//! `raytrace` — a vector-math and allocation analogue.
//!
//! Octane's raytrace allocates vector/colour objects at a furious rate
//! and does float math on their fields. This analogue keeps the profile:
//! per-iteration allocation of vec3 objects, dot products across their
//! slots, and an accumulating float result.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "raytrace";

/// Rays traced.
const RAYS: i64 = 700;

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();
    let vec3 = e.add_shape(vec!["x", "y", "z"]);

    // dot(a, b) -> f64 bits. Locals: 0=a, 1=b.
    let dot = {
        let mut f = FunctionBuilder::new("dot", 2, 2);
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(vec3, 0));
        f.op(Op::GetLocal(1));
        f.op(Op::GetProp(vec3, 0));
        f.op(Op::FMul);
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(vec3, 1));
        f.op(Op::GetLocal(1));
        f.op(Op::GetProp(vec3, 1));
        f.op(Op::FMul);
        f.op(Op::FAdd);
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(vec3, 2));
        f.op(Op::GetLocal(1));
        f.op(Op::GetProp(vec3, 2));
        f.op(Op::FMul);
        f.op(Op::FAdd);
        f.op(Op::Return);
        e.add_function(f.build())
    };

    // main. Locals: 0=ray, 1=normal, 2=ctr, 3=acc bits, 4=t bits.
    let mut f = FunctionBuilder::new("main", 0, 5);
    f.op(Op::FConst(0.0));
    f.op(Op::SetLocal(3));
    f.op(Op::FConst(0.125));
    f.op(Op::SetLocal(4)); // evolving component seed
    f.counted_loop(2, RAYS, |f| {
        // ray = vec3(t, t*2, 1.5); normal = vec3(0.5, t, t+0.25)
        f.op(Op::NewObject(vec3));
        f.op(Op::SetLocal(0));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(4));
        f.op(Op::SetProp(vec3, 0));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(4));
        f.op(Op::FConst(2.0));
        f.op(Op::FMul);
        f.op(Op::SetProp(vec3, 1));
        f.op(Op::GetLocal(0));
        f.op(Op::FConst(1.5));
        f.op(Op::SetProp(vec3, 2));

        f.op(Op::NewObject(vec3));
        f.op(Op::SetLocal(1));
        f.op(Op::GetLocal(1));
        f.op(Op::FConst(0.5));
        f.op(Op::SetProp(vec3, 0));
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(4));
        f.op(Op::SetProp(vec3, 1));
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(4));
        f.op(Op::FConst(0.25));
        f.op(Op::FAdd);
        f.op(Op::SetProp(vec3, 2));

        // acc += dot(ray, normal)
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::Call(dot, 2));
        f.op(Op::FAdd);
        f.op(Op::SetLocal(3));

        // t = t * 0.75 + 0.0625
        f.op(Op::GetLocal(4));
        f.op(Op::FConst(0.75));
        f.op(Op::FMul);
        f.op(Op::FConst(0.0625));
        f.op(Op::FAdd);
        f.op(Op::SetLocal(4));
    });
    f.op(Op::GetLocal(3));
    f.op(Op::Return);
    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation (bit-identical IEEE order).
pub fn reference() -> u64 {
    let mut acc = 0f64;
    let mut t = 0.125f64;
    for _ in 0..RAYS {
        let ray = (t, t * 2.0, 1.5f64);
        let normal = (0.5f64, t, t + 0.25);
        let dot = ray.0 * normal.0 + ray.1 * normal.1 + ray.2 * normal.2;
        acc += dot;
        t = t * 0.75 + 0.0625;
    }
    acc.to_bits()
}
