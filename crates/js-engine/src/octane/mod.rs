//! Octane-2-like benchmark suite (paper §4.3, Figure 3).
//!
//! Eight benchmarks mirroring the operation mixes of their Octane
//! namesakes. Every benchmark has an independent Rust reference
//! implementation; the test suite checks reference == interpreter ==
//! JIT-on-simulator under every mitigation combination, so the overhead
//! numbers in Figure 3 are measured on verifiably correct code.

pub mod crypto;
pub mod deltablue;
pub mod earley;
pub mod navier_stokes;
pub mod raytrace;
pub mod regexp;
pub mod richards;
pub mod splay;

use sim_kernel::BootParams;
use uarch::model::CpuModel;

use crate::engine::{Engine, RunOutcome};
use crate::JsMitigations;

/// One benchmark of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OctaneBench {
    /// Scheduler simulation (objects + branches).
    Richards,
    /// Constraint propagation (pointer chasing).
    DeltaBlue,
    /// Big-integer arithmetic (int arrays).
    Crypto,
    /// Tree workload (allocation + branchy lookups).
    Splay,
    /// Float stencil (float arrays).
    NavierStokes,
    /// Vector math (allocation + float objects).
    RayTrace,
    /// Pattern scanning (branchy byte arrays).
    RegExp,
    /// List processing (cons-cell allocation + pointer chasing).
    Earley,
}

impl OctaneBench {
    /// The whole suite.
    pub const ALL: [OctaneBench; 8] = [
        OctaneBench::Richards,
        OctaneBench::DeltaBlue,
        OctaneBench::Crypto,
        OctaneBench::Splay,
        OctaneBench::NavierStokes,
        OctaneBench::RayTrace,
        OctaneBench::RegExp,
        OctaneBench::Earley,
    ];

    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            OctaneBench::Richards => richards::NAME,
            OctaneBench::DeltaBlue => deltablue::NAME,
            OctaneBench::Crypto => crypto::NAME,
            OctaneBench::Splay => splay::NAME,
            OctaneBench::NavierStokes => navier_stokes::NAME,
            OctaneBench::RayTrace => raytrace::NAME,
            OctaneBench::RegExp => regexp::NAME,
            OctaneBench::Earley => earley::NAME,
        }
    }

    /// Builds the engine program.
    pub fn build(self) -> Engine {
        match self {
            OctaneBench::Richards => richards::build(),
            OctaneBench::DeltaBlue => deltablue::build(),
            OctaneBench::Crypto => crypto::build(),
            OctaneBench::Splay => splay::build(),
            OctaneBench::NavierStokes => navier_stokes::build(),
            OctaneBench::RayTrace => raytrace::build(),
            OctaneBench::RegExp => regexp::build(),
            OctaneBench::Earley => earley::build(),
        }
    }

    /// The independent Rust reference result.
    pub fn reference(self) -> u64 {
        match self {
            OctaneBench::Richards => richards::reference(),
            OctaneBench::DeltaBlue => deltablue::reference(),
            OctaneBench::Crypto => crypto::reference(),
            OctaneBench::Splay => splay::reference(),
            OctaneBench::NavierStokes => navier_stokes::reference(),
            OctaneBench::RayTrace => raytrace::reference(),
            OctaneBench::RegExp => regexp::reference(),
            OctaneBench::Earley => earley::reference(),
        }
    }
}

/// Runs one benchmark under the given CPU/kernel/JS configuration,
/// asserting the result is correct.
///
/// # Panics
///
/// Panics if the JIT result disagrees with the Rust reference.
pub fn run_bench(
    bench: OctaneBench,
    model: &CpuModel,
    params: &BootParams,
    mits: JsMitigations,
) -> RunOutcome {
    let engine = bench.build();
    let out = engine.run_jit(model, params, mits);
    assert_eq!(
        out.result,
        bench.reference(),
        "{} must compute the reference result",
        bench.name()
    );
    out
}

/// Geometric-mean suite score: higher is faster; the absolute scale is
/// arbitrary, as in Octane.
pub fn suite_score(cycles: &[u64]) -> f64 {
    let log_sum: f64 = cycles.iter().map(|c| (1e9 / *c as f64).ln()).sum();
    (log_sum / cycles.len() as f64).exp()
}

/// Runs the whole suite; returns (per-bench cycles, suite score).
pub fn run_suite(
    model: &CpuModel,
    params: &BootParams,
    mits: JsMitigations,
) -> (Vec<(OctaneBench, u64)>, f64) {
    let mut cycles = Vec::new();
    for bench in OctaneBench::ALL {
        let out = run_bench(bench, model, params, mits);
        cycles.push((bench, out.cycles));
    }
    let score = suite_score(&cycles.iter().map(|(_, c)| *c).collect::<Vec<_>>());
    (cycles, score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::{ice_lake_server, skylake_client};

    #[test]
    fn every_benchmark_matches_its_reference_in_the_interpreter() {
        for bench in OctaneBench::ALL {
            let engine = bench.build();
            assert_eq!(
                engine.interpret().unwrap(),
                bench.reference(),
                "{} interpreter vs reference",
                bench.name()
            );
        }
    }

    #[test]
    fn every_benchmark_is_correct_under_full_and_no_mitigations() {
        let model = ice_lake_server();
        for bench in OctaneBench::ALL {
            for mits in [JsMitigations::none(), JsMitigations::full()] {
                // run_bench asserts correctness internally.
                let out = run_bench(bench, &model, &BootParams::default(), mits);
                assert!(out.cycles > 10_000, "{} too small to measure", bench.name());
            }
        }
    }

    #[test]
    fn index_masking_costs_single_digit_percentages() {
        // Figure 3: index masking ≈ 4% on most systems.
        let model = skylake_client();
        let params = BootParams::default();
        let baseline: u64 = OctaneBench::ALL
            .iter()
            .map(|b| run_bench(*b, &model, &params, JsMitigations::none()).cycles)
            .sum();
        let masked: u64 = OctaneBench::ALL
            .iter()
            .map(|b| {
                run_bench(
                    *b,
                    &model,
                    &params,
                    JsMitigations { index_masking: true, object_guards: false, other_js: false },
                )
                .cycles
            })
            .sum();
        let overhead = masked as f64 / baseline as f64 - 1.0;
        assert!(
            overhead > 0.005 && overhead < 0.15,
            "index masking should cost a few percent, got {:.2}%",
            overhead * 100.0
        );
    }
}
