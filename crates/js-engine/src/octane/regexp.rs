//! `regexp` — a pattern-scanning analogue.
//!
//! Octane's RegExp benchmark stresses byte scanning with data-dependent
//! branches. This analogue scans a pseudo-random byte array for a
//! two-element pattern, counting matches — branchy, array-read-heavy,
//! with the bounds check (and its mask) on every probe.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "regexp";

/// Haystack length.
const HAY: i64 = 256;
/// Scan passes.
const PASSES: i64 = 30;
/// LCG parameters.
const LCG_A: i64 = 1103515245;
const LCG_C: i64 = 12345;

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();
    // Locals: 0=hay, 1=i, 2=pass, 3=count, 4=seed, 5=byte.
    let mut f = FunctionBuilder::new("main", 0, 6);

    // Fill the haystack with LCG bytes.
    f.op(Op::NewArray(HAY as u32));
    f.op(Op::SetLocal(0));
    f.op(Op::Const(7));
    f.op(Op::SetLocal(4));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(1));
    {
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(HAY));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(4));
        f.op(Op::Const(LCG_A));
        f.op(Op::Mul);
        f.op(Op::Const(LCG_C));
        f.op(Op::Add);
        f.op(Op::SetLocal(4));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(4));
        f.op(Op::Shr(16));
        f.op(Op::Const(0xff));
        f.op(Op::And);
        f.op(Op::ArraySet);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    }

    // Scan: count positions where hay[i] == 0x41 and hay[i+1] == 0x42 is
    // relaxed to (hay[i] & 0xf0) == 0x40 so matches actually occur.
    f.op(Op::Const(0));
    f.op(Op::SetLocal(3));
    f.counted_loop(2, PASSES, |f| {
        f.op(Op::Const(0));
        f.op(Op::SetLocal(1));
        let top = f.new_label();
        let done = f.new_label();
        let no_match = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(HAY - 1));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        // b = hay[i]
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::ArrayGet);
        f.op(Op::Const(0xf0));
        f.op(Op::And);
        f.op(Op::Const(0x40));
        f.op(Op::EqCmp);
        f.op(Op::JumpIfFalse(no_match));
        // second element: (hay[i+1] & 0x0f) == 0x02
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::ArrayGet);
        f.op(Op::Const(0x0f));
        f.op(Op::And);
        f.op(Op::Const(0x02));
        f.op(Op::EqCmp);
        f.op(Op::JumpIfFalse(no_match));
        f.op(Op::GetLocal(3));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(3));
        f.bind(no_match);
        f.op(Op::GetLocal(1));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::Jump(top));
        f.bind(done);
    });
    f.op(Op::GetLocal(3));
    f.op(Op::Return);

    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation.
pub fn reference() -> u64 {
    let mut hay = vec![0u64; HAY as usize];
    let mut seed: u64 = 7;
    for b in hay.iter_mut() {
        seed = seed.wrapping_mul(LCG_A as u64).wrapping_add(LCG_C as u64);
        *b = (seed >> 16) & 0xff;
    }
    let mut count = 0u64;
    for _ in 0..PASSES {
        for i in 0..(HAY - 1) as usize {
            if hay[i] & 0xf0 == 0x40 && hay[i + 1] & 0x0f == 0x02 {
                count = count.wrapping_add(1);
            }
        }
    }
    count
}
