//! `deltablue` — a constraint-propagation analogue.
//!
//! Octane's deltablue propagates values through a constraint graph; this
//! analogue keeps the defining behaviour — pointer chasing through a
//! chain of heap objects with per-node arithmetic — using a linked chain
//! of constraint nodes propagated repeatedly.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "deltablue";

/// Chain length.
const NODES: i64 = 24;
/// Propagation passes.
const PASSES: i64 = 120;

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();
    // value, strength, next (reference; 0 terminates).
    let node = e.add_shape(vec!["value", "strength", "next"]);

    // Locals: 0=head, 1=i, 2=pass ctr, 3=cur, 4=prev_value, 5=tmp.
    let mut f = FunctionBuilder::new("main", 0, 6);

    // Build the chain back to front: head = Node(0, i*7+1, head).
    f.op(Op::Const(0));
    f.op(Op::SetLocal(0));
    f.counted_loop(1, NODES, |f| {
        f.op(Op::NewObject(node));
        f.op(Op::SetLocal(3));
        // strength = ctr * 7 + 1 (ctr counts down NODES..1).
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(1));
        f.op(Op::Const(7));
        f.op(Op::Mul);
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetProp(node, 1));
        // next = head; head = cur.
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(0));
        f.op(Op::SetProp(node, 2));
        f.op(Op::GetLocal(3));
        f.op(Op::SetLocal(0));
    });

    // Propagate: for each pass, walk the chain accumulating
    // cur.value = prev_value + cur.strength.
    f.counted_loop(2, PASSES, |f| {
        f.op(Op::GetLocal(0));
        f.op(Op::SetLocal(3)); // cur = head
        f.op(Op::Const(1));
        f.op(Op::SetLocal(4)); // prev = 1
        let walk = f.new_label();
        let done = f.new_label();
        f.bind(walk);
        f.op(Op::GetLocal(3));
        f.op(Op::JumpIfFalse(done));
        // value = prev + strength (mask to keep it bounded)
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(4));
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(node, 1));
        f.op(Op::Add);
        f.op(Op::Const(0xffff));
        f.op(Op::And);
        f.op(Op::SetProp(node, 0));
        // prev = cur.value; cur = cur.next
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(node, 0));
        f.op(Op::SetLocal(4));
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(node, 2));
        f.op(Op::SetLocal(3));
        f.op(Op::Jump(walk));
        f.bind(done);
    });

    // Checksum: walk once summing value * 3 + strength.
    f.op(Op::GetLocal(0));
    f.op(Op::SetLocal(3));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(5));
    {
        let walk = f.new_label();
        let done = f.new_label();
        f.bind(walk);
        f.op(Op::GetLocal(3));
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(5));
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(node, 0));
        f.op(Op::Const(3));
        f.op(Op::Mul);
        f.op(Op::Add);
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(node, 1));
        f.op(Op::Add);
        f.op(Op::SetLocal(5));
        f.op(Op::GetLocal(3));
        f.op(Op::GetProp(node, 2));
        f.op(Op::SetLocal(3));
        f.op(Op::Jump(walk));
        f.bind(done);
    }
    f.op(Op::GetLocal(5));
    f.op(Op::Return);

    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation.
pub fn reference() -> u64 {
    // Chain built back to front with ctr = NODES..=1: the head has
    // strength NODES*7+1... careful: counted_loop counts down, and each
    // new node becomes head, so the final head was built with ctr=1.
    let mut strengths = Vec::new();
    for ctr in (1..=NODES as u64).rev() {
        strengths.push(ctr * 7 + 1);
    }
    // head..tail order: last-built first. Built ctr=NODES..1, each
    // prepended, so walking head→tail sees ctr=1,2,..,NODES.
    let walk_strengths: Vec<u64> = (1..=NODES as u64).map(|c| c * 7 + 1).collect();
    let mut values = vec![0u64; NODES as usize];
    for _ in 0..PASSES {
        let mut prev = 1u64;
        for (i, s) in walk_strengths.iter().enumerate() {
            values[i] = (prev.wrapping_add(*s)) & 0xffff;
            prev = values[i];
        }
    }
    let mut acc = 0u64;
    for (i, s) in walk_strengths.iter().enumerate() {
        acc = acc.wrapping_add(values[i].wrapping_mul(3)).wrapping_add(*s);
    }
    acc
}
