//! `crypto` — big-integer arithmetic analogue.
//!
//! Octane's crypto benchmark does RSA over digit arrays; this analogue
//! keeps the mix — tight loops of multiply/add/mask over integer arrays —
//! with a schoolbook multiply-accumulate over 16-bit digit arrays.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "crypto";

/// Digits per operand.
const DIGITS: i64 = 24;
/// Multiply rounds.
const ROUNDS: i64 = 60;

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();

    // Locals: 0=a, 1=b, 2=c, 3=i, 4=round, 5=carry, 6=t.
    let mut f = FunctionBuilder::new("main", 0, 8);

    // a[i] = i*13+5 & 0xffff ; b[i] = i*29+1 & 0xffff
    f.op(Op::NewArray(DIGITS as u32));
    f.op(Op::SetLocal(0));
    f.op(Op::NewArray(DIGITS as u32));
    f.op(Op::SetLocal(1));
    f.op(Op::NewArray(DIGITS as u32));
    f.op(Op::SetLocal(2));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(3));
    {
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(3));
        f.op(Op::Const(DIGITS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(3));
        f.op(Op::Const(13));
        f.op(Op::Mul);
        f.op(Op::Const(5));
        f.op(Op::Add);
        f.op(Op::Const(0xffff));
        f.op(Op::And);
        f.op(Op::ArraySet);
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(3));
        f.op(Op::Const(29));
        f.op(Op::Mul);
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::Const(0xffff));
        f.op(Op::And);
        f.op(Op::ArraySet);
        f.op(Op::GetLocal(3));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(3));
        f.op(Op::Jump(top));
        f.bind(done);
    }

    // Rounds of multiply-accumulate with carry:
    // carry = round; for i: t = a[i]*b[i] + c[i] + carry;
    // c[i] = t & 0xffff; carry = t >> 16.
    f.counted_loop(4, ROUNDS, |f| {
        f.op(Op::GetLocal(4));
        f.op(Op::SetLocal(5)); // carry = round counter
        f.op(Op::Const(0));
        f.op(Op::SetLocal(3));
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(3));
        f.op(Op::Const(DIGITS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        // t = a[i]*b[i] + c[i] + carry
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(3));
        f.op(Op::ArrayGet);
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(3));
        f.op(Op::ArrayGet);
        f.op(Op::Mul);
        f.op(Op::GetLocal(2));
        f.op(Op::GetLocal(3));
        f.op(Op::ArrayGet);
        f.op(Op::Add);
        f.op(Op::GetLocal(5));
        f.op(Op::Add);
        f.op(Op::SetLocal(6));
        // c[i] = t & 0xffff
        f.op(Op::GetLocal(2));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(6));
        f.op(Op::Const(0xffff));
        f.op(Op::And);
        f.op(Op::ArraySet);
        // carry = t >> 16
        f.op(Op::GetLocal(6));
        f.op(Op::Shr(16));
        f.op(Op::SetLocal(5));
        f.op(Op::GetLocal(3));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(3));
        f.op(Op::Jump(top));
        f.bind(done);
    });

    // Checksum = fold of c with rotation.
    f.op(Op::Const(0));
    f.op(Op::SetLocal(6));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(3));
    {
        let top = f.new_label();
        let done = f.new_label();
        f.bind(top);
        f.op(Op::GetLocal(3));
        f.op(Op::Const(DIGITS));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(6));
        f.op(Op::Const(31));
        f.op(Op::Mul);
        f.op(Op::GetLocal(2));
        f.op(Op::GetLocal(3));
        f.op(Op::ArrayGet);
        f.op(Op::Add);
        f.op(Op::SetLocal(6));
        f.op(Op::GetLocal(3));
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::SetLocal(3));
        f.op(Op::Jump(top));
        f.bind(done);
    }
    f.op(Op::GetLocal(6));
    f.op(Op::Return);

    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation.
pub fn reference() -> u64 {
    let a: Vec<u64> = (0..DIGITS as u64).map(|i| (i * 13 + 5) & 0xffff).collect();
    let b: Vec<u64> = (0..DIGITS as u64).map(|i| (i * 29 + 1) & 0xffff).collect();
    let mut c = vec![0u64; DIGITS as usize];
    // counted_loop counts the round counter down ROUNDS..=1.
    for round in (1..=ROUNDS as u64).rev() {
        let mut carry = round;
        for i in 0..DIGITS as usize {
            let t = a[i]
                .wrapping_mul(b[i])
                .wrapping_add(c[i])
                .wrapping_add(carry);
            c[i] = t & 0xffff;
            carry = t >> 16;
        }
    }
    let mut acc = 0u64;
    for d in &c {
        acc = acc.wrapping_mul(31).wrapping_add(*d);
    }
    acc
}
