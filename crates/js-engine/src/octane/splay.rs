//! `splay` — a tree-workload analogue.
//!
//! Octane's splay benchmark stresses object allocation and tree
//! manipulation. This analogue builds a binary search tree of heap
//! objects from pseudo-random keys (an LCG computed in bytecode) and then
//! sums the keys found by repeated lookups. Allocation-heavy, branchy,
//! pointer-chasing — the same profile the original stresses.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "splay";

/// Keys inserted.
const INSERTS: i64 = 80;
/// Lookups performed.
const LOOKUPS: i64 = 240;
/// LCG parameters (16-bit keys).
const LCG_A: i64 = 1103515245;
const LCG_C: i64 = 12345;

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();
    let node = e.add_shape(vec!["key", "left", "right"]);

    // insert(root, key) -> root. Iterative insertion.
    // Locals: 0=root, 1=key, 2=cur, 3=new node.
    let insert = {
        let mut f = FunctionBuilder::new("insert", 2, 4);
        let have_root = f.new_label();
        let walk = f.new_label();
        let go_left = f.new_label();
        let done = f.new_label();
        let ret_root = f.new_label();
        // node = Node(key)
        f.op(Op::NewObject(node));
        f.op(Op::SetLocal(3));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(1));
        f.op(Op::SetProp(node, 0));
        // if root == 0: return node
        f.op(Op::GetLocal(0));
        f.op(Op::JumpIfFalse(have_root));
        f.op(Op::Jump(ret_root));
        f.bind(have_root);
        f.op(Op::GetLocal(3));
        f.op(Op::Return);
        f.bind(ret_root);
        // cur = root; loop
        f.op(Op::GetLocal(0));
        f.op(Op::SetLocal(2));
        f.bind(walk);
        // if key < cur.key → left else right; equal keys go right.
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(2));
        f.op(Op::GetProp(node, 0));
        f.op(Op::Lt);
        f.op(Op::JumpIfFalse(go_left)); // falls through to RIGHT when false
        // LEFT: if cur.left == 0 { cur.left = node; done } else cur = cur.left
        {
            let descend = f.new_label();
            f.op(Op::GetLocal(2));
            f.op(Op::GetProp(node, 1));
            f.op(Op::JumpIfFalse(descend));
            // cur = cur.left; continue
            f.op(Op::GetLocal(2));
            f.op(Op::GetProp(node, 1));
            f.op(Op::SetLocal(2));
            f.op(Op::Jump(walk));
            f.bind(descend);
            f.op(Op::GetLocal(2));
            f.op(Op::GetLocal(3));
            f.op(Op::SetProp(node, 1));
            f.op(Op::Jump(done));
        }
        f.bind(go_left);
        // RIGHT: if cur.right == 0 { cur.right = node; done } else descend
        {
            let descend = f.new_label();
            f.op(Op::GetLocal(2));
            f.op(Op::GetProp(node, 2));
            f.op(Op::JumpIfFalse(descend));
            f.op(Op::GetLocal(2));
            f.op(Op::GetProp(node, 2));
            f.op(Op::SetLocal(2));
            f.op(Op::Jump(walk));
            f.bind(descend);
            f.op(Op::GetLocal(2));
            f.op(Op::GetLocal(3));
            f.op(Op::SetProp(node, 2));
            f.op(Op::Jump(done));
        }
        f.bind(done);
        f.op(Op::GetLocal(0));
        f.op(Op::Return);
        e.add_function(f.build())
    };

    // lookup(root, key) -> key if found else 0.
    // Locals: 0=root/cur, 1=key.
    let lookup = {
        let mut f = FunctionBuilder::new("lookup", 2, 2);
        let walk = f.new_label();
        let miss = f.new_label();
        let go_right = f.new_label();
        f.bind(walk);
        f.op(Op::GetLocal(0));
        f.op(Op::JumpIfFalse(miss));
        // if key == cur.key: return key
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(node, 0));
        f.op(Op::EqCmp);
        f.op(Op::JumpIfFalse(go_right));
        f.op(Op::GetLocal(1));
        f.op(Op::Return);
        f.bind(go_right);
        // cur = key < cur.key ? cur.left : cur.right
        {
            let left = f.new_label();
            let next = f.new_label();
            f.op(Op::GetLocal(1));
            f.op(Op::GetLocal(0));
            f.op(Op::GetProp(node, 0));
            f.op(Op::Lt);
            f.op(Op::JumpIfFalse(left));
            f.op(Op::GetLocal(0));
            f.op(Op::GetProp(node, 1));
            f.op(Op::SetLocal(0));
            f.op(Op::Jump(next));
            f.bind(left);
            f.op(Op::GetLocal(0));
            f.op(Op::GetProp(node, 2));
            f.op(Op::SetLocal(0));
            f.bind(next);
            f.op(Op::Jump(walk));
        }
        f.bind(miss);
        f.op(Op::Const(0));
        f.op(Op::Return);
        e.add_function(f.build())
    };

    // main: build tree from LCG keys, then sum lookups.
    // Locals: 0=root, 1=seed, 2=ctr, 3=acc, 4=key.
    let mut f = FunctionBuilder::new("main", 0, 5);
    f.op(Op::Const(42));
    f.op(Op::SetLocal(1));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(0));
    f.counted_loop(2, INSERTS, |f| {
        // seed = seed*A + C (wrapping); key = (seed >> 8) & 0xffff
        f.op(Op::GetLocal(1));
        f.op(Op::Const(LCG_A));
        f.op(Op::Mul);
        f.op(Op::Const(LCG_C));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::GetLocal(1));
        f.op(Op::Shr(8));
        f.op(Op::Const(0xffff));
        f.op(Op::And);
        f.op(Op::SetLocal(4));
        // root = insert(root, key)
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(4));
        f.op(Op::Call(insert, 2));
        f.op(Op::SetLocal(0));
    });
    // Lookups with a fresh LCG stream (same seed → every other key hits).
    f.op(Op::Const(42));
    f.op(Op::SetLocal(1));
    f.op(Op::Const(0));
    f.op(Op::SetLocal(3));
    f.counted_loop(2, LOOKUPS, |f| {
        f.op(Op::GetLocal(1));
        f.op(Op::Const(LCG_A));
        f.op(Op::Mul);
        f.op(Op::Const(LCG_C));
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::GetLocal(1));
        f.op(Op::Shr(8));
        f.op(Op::Const(0xffff));
        f.op(Op::And);
        f.op(Op::SetLocal(4));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(0));
        f.op(Op::GetLocal(4));
        f.op(Op::Call(lookup, 2));
        f.op(Op::Add);
        f.op(Op::SetLocal(3));
    });
    f.op(Op::GetLocal(3));
    f.op(Op::Return);
    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation.
pub fn reference() -> u64 {
    #[derive(Clone)]
    struct Node {
        key: u64,
        left: usize,
        right: usize,
    }
    let mut nodes: Vec<Node> = Vec::new(); // index 0 unused (null)
    nodes.push(Node { key: 0, left: 0, right: 0 });
    let mut root = 0usize;

    let mut seed: u64 = 42;
    let next_key = |seed: &mut u64| {
        *seed = seed.wrapping_mul(LCG_A as u64).wrapping_add(LCG_C as u64);
        (*seed >> 8) & 0xffff
    };

    for _ in 0..INSERTS {
        let key = next_key(&mut seed);
        nodes.push(Node { key, left: 0, right: 0 });
        let new = nodes.len() - 1;
        if root == 0 {
            root = new;
            continue;
        }
        let mut cur = root;
        loop {
            // Equal keys go right, matching the bytecode (`Lt` strictly).
            if key < nodes[cur].key {
                if nodes[cur].left == 0 {
                    nodes[cur].left = new;
                    break;
                }
                cur = nodes[cur].left;
            } else {
                if nodes[cur].right == 0 {
                    nodes[cur].right = new;
                    break;
                }
                cur = nodes[cur].right;
            }
        }
    }

    let mut seed: u64 = 42;
    let mut acc = 0u64;
    for _ in 0..LOOKUPS {
        let key = next_key(&mut seed);
        let mut cur = root;
        while cur != 0 {
            if nodes[cur].key == key {
                acc = acc.wrapping_add(key);
                break;
            }
            cur = if key < nodes[cur].key { nodes[cur].left } else { nodes[cur].right };
        }
    }
    acc
}
