//! `earley` — a list-processing analogue of Octane's EarleyBoyer.
//!
//! EarleyBoyer is Scheme-derived list/symbol crunching: allocation-heavy
//! cons-cell manipulation with deep pointer chasing. This analogue builds
//! cons lists from objects, maps over them (allocating fresh cells), and
//! folds the result — the highest allocation rate in the suite.

use crate::bytecode::{FunctionBuilder, Op};
use crate::engine::Engine;

/// Benchmark name.
pub const NAME: &str = "earley";

/// List length.
const LEN: i64 = 48;
/// Map/fold rounds (each round allocates a fresh list).
const ROUNDS: i64 = 24;

/// Builds the engine program.
pub fn build() -> Engine {
    let mut e = Engine::new();
    let cell = e.add_shape(vec!["car", "cdr"]);

    // cons(car, cdr) -> cell. Locals: 0=car, 1=cdr, 2=cell.
    let cons = {
        let mut f = FunctionBuilder::new("cons", 2, 3);
        f.op(Op::NewObject(cell));
        f.op(Op::SetLocal(2));
        f.op(Op::GetLocal(2));
        f.op(Op::GetLocal(0));
        f.op(Op::SetProp(cell, 0));
        f.op(Op::GetLocal(2));
        f.op(Op::GetLocal(1));
        f.op(Op::SetProp(cell, 1));
        f.op(Op::GetLocal(2));
        f.op(Op::Return);
        e.add_function(f.build())
    };

    // map_add3(list) -> new list with car+3 each (reversed — order does
    // not matter for the fold). Locals: 0=list, 1=out, 2=cur.
    let map_add3 = {
        let mut f = FunctionBuilder::new("map_add3", 1, 3);
        f.op(Op::Const(0));
        f.op(Op::SetLocal(1));
        f.op(Op::GetLocal(0));
        f.op(Op::SetLocal(2));
        let walk = f.new_label();
        let done = f.new_label();
        f.bind(walk);
        f.op(Op::GetLocal(2));
        f.op(Op::JumpIfFalse(done));
        // out = cons(cur.car + 3, out)
        f.op(Op::GetLocal(2));
        f.op(Op::GetProp(cell, 0));
        f.op(Op::Const(3));
        f.op(Op::Add);
        f.op(Op::GetLocal(1));
        f.op(Op::Call(cons, 2));
        f.op(Op::SetLocal(1));
        // cur = cur.cdr
        f.op(Op::GetLocal(2));
        f.op(Op::GetProp(cell, 1));
        f.op(Op::SetLocal(2));
        f.op(Op::Jump(walk));
        f.bind(done);
        f.op(Op::GetLocal(1));
        f.op(Op::Return);
        e.add_function(f.build())
    };

    // fold(list) -> sum of (car * 2 + 1). Locals: 0=list, 1=acc.
    let fold = {
        let mut f = FunctionBuilder::new("fold", 1, 2);
        let walk = f.new_label();
        let done = f.new_label();
        f.bind(walk);
        f.op(Op::GetLocal(0));
        f.op(Op::JumpIfFalse(done));
        f.op(Op::GetLocal(1));
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(cell, 0));
        f.op(Op::Const(2));
        f.op(Op::Mul);
        f.op(Op::Const(1));
        f.op(Op::Add);
        f.op(Op::Add);
        f.op(Op::SetLocal(1));
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(cell, 1));
        f.op(Op::SetLocal(0));
        f.op(Op::Jump(walk));
        f.bind(done);
        f.op(Op::GetLocal(1));
        f.op(Op::Return);
        e.add_function(f.build())
    };

    // main: build [1..LEN] as a cons list, then ROUNDS x (map, fold, acc).
    // Locals: 0=list, 1=i, 2=round, 3=acc, 4=mapped.
    let mut f = FunctionBuilder::new("main", 0, 5);
    f.op(Op::Const(0));
    f.op(Op::SetLocal(0));
    f.counted_loop(1, LEN, |f| {
        f.op(Op::GetLocal(1)); // counter (LEN..1)
        f.op(Op::GetLocal(0));
        f.op(Op::Call(cons, 2));
        f.op(Op::SetLocal(0));
    });
    f.op(Op::Const(0));
    f.op(Op::SetLocal(3));
    f.counted_loop(2, ROUNDS, |f| {
        f.op(Op::GetLocal(0));
        f.op(Op::Call(map_add3, 1));
        f.op(Op::SetLocal(4));
        f.op(Op::GetLocal(3));
        f.op(Op::GetLocal(4));
        f.op(Op::Call(fold, 1));
        f.op(Op::Add);
        f.op(Op::SetLocal(3));
    });
    f.op(Op::GetLocal(3));
    f.op(Op::Return);
    let fid = e.add_function(f.build());
    e.set_main(fid);
    e
}

/// Independent Rust implementation.
pub fn reference() -> u64 {
    // The list is built with counter LEN..1 prepending, so head->tail
    // order is 1, 2, …, LEN.
    let base: Vec<u64> = (1..=LEN as u64).collect();
    let mut acc = 0u64;
    for _ in 0..ROUNDS {
        let mapped: Vec<u64> = base.iter().map(|v| v + 3).collect();
        let fold: u64 = mapped.iter().map(|v| v * 2 + 1).sum();
        acc = acc.wrapping_add(fold);
    }
    acc
}
