//! The engine: functions, shapes, and the run harness.

use sim_kernel::abi::nr;
use sim_kernel::{userlib, BootParams, Kernel};
use uarch::model::CpuModel;

use crate::bytecode::{FuncId, Function, ShapeId};
use crate::interp;
use crate::jit::{layout, Jit};
use crate::JsMitigations;

/// An object layout: a named set of slots.
#[derive(Debug, Clone)]
pub struct Shape {
    /// Shape id (used as the runtime header tag).
    pub id: ShapeId,
    /// Property names in slot order.
    pub slots: Vec<&'static str>,
}

/// The engine: a program (functions + shapes) ready to interpret or JIT.
#[derive(Debug, Default)]
pub struct Engine {
    functions: Vec<Function>,
    shapes: Vec<Shape>,
    main: Option<FuncId>,
}

/// Result of executing an engine program on the simulator.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// The value main returned.
    pub result: u64,
    /// Total simulated cycles (program execution only).
    pub cycles: u64,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Registers a shape; ids must start at 1 and be dense (0 is the
    /// "no shape" array header space).
    pub fn add_shape(&mut self, slots: Vec<&'static str>) -> ShapeId {
        let id = (self.shapes.len() + 1) as ShapeId;
        self.shapes.push(Shape { id, slots });
        id
    }

    /// Registers a function; returns its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// Marks the entry function.
    pub fn set_main(&mut self, fid: FuncId) {
        self.main = Some(fid);
    }

    /// The entry function.
    ///
    /// # Panics
    ///
    /// Panics if no main was set.
    pub fn main(&self) -> &Function {
        &self.functions[self.main.expect("main set")]
    }

    /// The entry function id.
    pub fn main_id(&self) -> FuncId {
        self.main.expect("main set")
    }

    /// Number of registered functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Looks up a function.
    pub fn function(&self, fid: FuncId) -> &Function {
        &self.functions[fid]
    }

    /// Slot count for a shape.
    ///
    /// # Panics
    ///
    /// Panics on an unknown shape id.
    pub fn shape_slots(&self, id: ShapeId) -> u8 {
        self.shapes[(id - 1) as usize].slots.len() as u8
    }

    /// Runs the program in the reference interpreter.
    pub fn interpret(&self) -> Result<u64, interp::InterpError> {
        interp::run(self)
    }

    /// JIT-compiles and runs the program as a sandboxed process (the
    /// engine enters seccomp like Firefox's content sandbox, which is what
    /// opts it into SSBD under the kernel's default policy, §4.3).
    pub fn run_jit(
        &self,
        model: &CpuModel,
        params: &BootParams,
        mits: JsMitigations,
    ) -> RunOutcome {
        self.run_jit_with_sandbox(model, params, mits, true)
    }

    /// As [`Engine::run_jit`], with control over whether the process
    /// enters seccomp.
    pub fn run_jit_with_sandbox(
        &self,
        model: &CpuModel,
        params: &BootParams,
        mits: JsMitigations,
        sandboxed: bool,
    ) -> RunOutcome {
        let mut k = Kernel::boot(model.clone(), params);
        let data_base = userlib::data_base();
        let jit = Jit::new(self, mits, data_base);
        let b = jit.compile(|b| {
            userlib::emit_syscall(b, nr::EXIT);
        });
        // Prepend the sandbox entry: seccomp before any JS executes. The
        // prologue is at the start of the builder, so instead emit the
        // sandbox syscall in a stub that jumps into the JIT output.
        // Simpler: the JIT program is spawned as-is and the sandbox
        // syscall is issued by poking a separate bootstrap.
        let base = k.alloc_code_base();
        let prog = b.link(base + 0x100);
        let mut boot = uarch::ProgramBuilder::new();
        if sandboxed {
            userlib::emit_syscall(&mut boot, nr::SECCOMP);
        }
        boot.push(uarch::Inst::Jmp(prog.base()));
        let boot_prog = boot.link(base);
        k.machine.load_program(prog);
        let pid = k.spawn_program(boot_prog);
        k.start();
        let start_cycles = k.cycles();
        k.run(5_000_000_000).expect("JS program must run to completion");
        let cycles = k.cycles() - start_cycles;
        let out = k.peek_user_data(pid, layout::RESULT_OFF, 8);
        RunOutcome { result: u64::from_le_bytes(out.try_into().expect("8 bytes")), cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{FunctionBuilder, Op};
    use cpu_models::zen2;

    fn engine_returning_42() -> Engine {
        let mut e = Engine::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.op(Op::Const(40));
        f.op(Op::Const(2));
        f.op(Op::Add);
        f.op(Op::Return);
        let fid = e.add_function(f.build());
        e.set_main(fid);
        e
    }

    #[test]
    fn interpreter_and_jit_agree_on_arithmetic() {
        let e = engine_returning_42();
        assert_eq!(e.interpret().unwrap(), 42);
        let out = e.run_jit(&zen2(), &BootParams::default(), JsMitigations::full());
        assert_eq!(out.result, 42);
        assert!(out.cycles > 0);
    }

    #[test]
    fn calls_pass_arguments() {
        let mut e = Engine::new();
        let mut sq = FunctionBuilder::new("square", 1, 1);
        sq.op(Op::GetLocal(0));
        sq.op(Op::GetLocal(0));
        sq.op(Op::Mul);
        sq.op(Op::Return);
        let sq_id = e.add_function(sq.build());

        let mut main = FunctionBuilder::new("main", 0, 1);
        main.op(Op::Const(7));
        main.op(Op::Call(sq_id, 1));
        main.op(Op::Const(1));
        main.op(Op::Add);
        main.op(Op::Return);
        let main_id = e.add_function(main.build());
        e.set_main(main_id);

        assert_eq!(e.interpret().unwrap(), 50);
        let out = e.run_jit(&zen2(), &BootParams::default(), JsMitigations::none());
        assert_eq!(out.result, 50);
    }

    #[test]
    fn arrays_round_trip_under_all_mitigation_sets() {
        let mut e = Engine::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        f.op(Op::NewArray(8));
        f.op(Op::SetLocal(0));
        // a[3] = 99
        f.op(Op::GetLocal(0));
        f.op(Op::Const(3));
        f.op(Op::Const(99));
        f.op(Op::ArraySet);
        // return a[3] + a.length + a[100] (out of bounds => 0)
        f.op(Op::GetLocal(0));
        f.op(Op::Const(3));
        f.op(Op::ArrayGet);
        f.op(Op::GetLocal(0));
        f.op(Op::ArrayLen);
        f.op(Op::Add);
        f.op(Op::GetLocal(0));
        f.op(Op::Const(100));
        f.op(Op::ArrayGet);
        f.op(Op::Add);
        f.op(Op::Return);
        let fid = e.add_function(f.build());
        e.set_main(fid);

        assert_eq!(e.interpret().unwrap(), 107);
        for mits in [
            JsMitigations::none(),
            JsMitigations::full(),
            JsMitigations { index_masking: true, object_guards: false, other_js: false },
            JsMitigations { index_masking: false, object_guards: false, other_js: true },
        ] {
            let out = e.run_jit(&zen2(), &BootParams::default(), mits);
            assert_eq!(out.result, 107, "{mits:?}");
        }
    }

    #[test]
    fn objects_round_trip_with_guards() {
        let mut e = Engine::new();
        let shape = e.add_shape(vec!["x", "y"]);
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.op(Op::NewObject(shape));
        f.op(Op::SetLocal(0));
        f.op(Op::GetLocal(0));
        f.op(Op::Const(5));
        f.op(Op::SetProp(shape, 0));
        f.op(Op::GetLocal(0));
        f.op(Op::Const(11));
        f.op(Op::SetProp(shape, 1));
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(shape, 0));
        f.op(Op::GetLocal(0));
        f.op(Op::GetProp(shape, 1));
        f.op(Op::Mul);
        f.op(Op::Return);
        let fid = e.add_function(f.build());
        e.set_main(fid);

        assert_eq!(e.interpret().unwrap(), 55);
        for mits in [JsMitigations::none(), JsMitigations::full()] {
            let out = e.run_jit(&zen2(), &BootParams::default(), mits);
            assert_eq!(out.result, 55, "{mits:?}");
        }
    }

    #[test]
    fn floats_compute_correctly() {
        let mut e = Engine::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.op(Op::FConst(1.5));
        f.op(Op::FConst(2.25));
        f.op(Op::FAdd);
        f.op(Op::FConst(2.0));
        f.op(Op::FMul);
        f.op(Op::Return);
        let fid = e.add_function(f.build());
        e.set_main(fid);
        let expected = (7.5f64).to_bits();
        assert_eq!(e.interpret().unwrap(), expected);
        let out = e.run_jit(&zen2(), &BootParams::default(), JsMitigations::full());
        assert_eq!(out.result, expected);
    }

    #[test]
    fn loops_and_branches() {
        // Sum of 1..=100 via a loop.
        let mut e = Engine::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        f.counted_loop(0, 100, |f| {
            f.op(Op::GetLocal(1));
            f.op(Op::GetLocal(0));
            f.op(Op::Add);
            f.op(Op::SetLocal(1));
        });
        f.op(Op::GetLocal(1));
        f.op(Op::Return);
        let fid = e.add_function(f.build());
        e.set_main(fid);
        assert_eq!(e.interpret().unwrap(), 5050);
        let out = e.run_jit(&zen2(), &BootParams::default(), JsMitigations::full());
        assert_eq!(out.result, 5050);
    }

    #[test]
    fn sandboxed_engine_gets_ssbd_by_default_policy() {
        let e = engine_returning_42();
        let mut k = Kernel::boot(zen2(), &BootParams::default());
        let _ = &mut k;
        // Run sandboxed: the kernel's SSBD policy should kick in (the
        // engine seccomps like Firefox). Observable via cycles: SSBD on
        // means the spec_ctrl write happened; easiest check is that the
        // sandboxed run is not cheaper than the unsandboxed one.
        let sand = e.run_jit_with_sandbox(&zen2(), &BootParams::default(), JsMitigations::none(), true);
        let free = e.run_jit_with_sandbox(&zen2(), &BootParams::default(), JsMitigations::none(), false);
        assert_eq!(sand.result, 42);
        assert_eq!(free.result, 42);
        assert!(sand.cycles >= free.cycles);
    }
}
