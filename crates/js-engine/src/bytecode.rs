//! Stack bytecode of the miniature JavaScript-like engine.
//!
//! The engine models the part of a production JS engine the paper
//! measures: the *JIT-compiled fast path*. Functions are shape-
//! monomorphic (every property access site knows the shape it expects and
//! guards on it, exactly like a warmed-up inline cache), arrays carry
//! their length inline, and the operand stack + locals live in memory as
//! a baseline JIT would keep them.

use std::collections::HashMap;

/// A function id within an [`crate::engine::Engine`].
pub type FuncId = usize;

/// A shape id (object layout) within an engine.
pub type ShapeId = u64;

/// A branch label inside one function's bytecode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BcLabel(pub usize);

/// One bytecode operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push an integer constant.
    Const(i64),
    /// Push a float constant (stored as raw bits on the stack).
    FConst(f64),
    /// Push local `n`.
    GetLocal(u8),
    /// Pop into local `n`.
    SetLocal(u8),
    /// Duplicate the top of stack.
    Dup,
    /// Drop the top of stack.
    Drop,

    /// Integer add: `a b -- a+b`.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (operands must be nonzero; the JIT does not guard).
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by a constant.
    Shl(u8),
    /// Logical shift right by a constant.
    Shr(u8),

    /// Float add (operands are f64 bit patterns).
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,

    /// Push 1 if `a < b` (signed), else 0.
    Lt,
    /// Push 1 if `a <= b`, else 0.
    Le,
    /// Push 1 if `a == b`, else 0.
    EqCmp,
    /// Push 1 if `a > b`, else 0.
    Gt,

    /// Unconditional jump.
    Jump(BcLabel),
    /// Pop; jump when zero.
    JumpIfFalse(BcLabel),

    /// Allocate an array of the given length; push its reference.
    NewArray(u32),
    /// `arr -- len`.
    ArrayLen,
    /// `arr idx -- value` (bounds-checked; out of bounds yields 0 like
    /// JS's `undefined` coerced).
    ArrayGet,
    /// `arr idx value --` (stores nothing when out of bounds).
    ArraySet,

    /// Allocate an object of the given shape; push its reference.
    NewObject(ShapeId),
    /// `obj -- value`: read the slot, guarded on the expected shape.
    GetProp(ShapeId, u8),
    /// `obj value --`: write the slot, guarded on the expected shape.
    SetProp(ShapeId, u8),

    /// Call a function with `nargs` stack arguments; pushes the result.
    Call(FuncId, u8),
    /// Return the top of stack.
    Return,
    /// Push the current high-resolution time (`performance.now()`).
    ///
    /// Under the "other JS" mitigations the JIT coarsens the value
    /// (timer-precision reduction, §2/§4.3 [37, 49]); the interpreter
    /// returns its own step counter — timer values are inherently
    /// non-portable between backends, so differential tests must not
    /// compare programs whose *results* depend on them.
    ReadTimer,
}

/// A function: bytecode plus frame metadata.
#[derive(Debug, Clone)]
pub struct Function {
    /// Name (diagnostics).
    pub name: String,
    /// Number of locals (arguments occupy locals `0..nargs`).
    pub n_locals: u8,
    /// Number of arguments.
    pub n_args: u8,
    /// The code.
    pub code: Vec<Op>,
    /// Label bindings: label -> bytecode index.
    pub labels: HashMap<BcLabel, usize>,
}

/// Builder for one function.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    n_locals: u8,
    n_args: u8,
    code: Vec<Op>,
    labels: HashMap<BcLabel, usize>,
    next_label: usize,
}

impl FunctionBuilder {
    /// Starts a function with `n_args` arguments and `n_locals` total
    /// locals (must be ≥ `n_args`).
    ///
    /// # Panics
    ///
    /// Panics if `n_locals < n_args`.
    pub fn new(name: &str, n_args: u8, n_locals: u8) -> FunctionBuilder {
        assert!(n_locals >= n_args, "locals include arguments");
        FunctionBuilder {
            name: name.to_string(),
            n_locals,
            n_args,
            code: Vec::new(),
            labels: HashMap::new(),
            next_label: 0,
        }
    }

    /// Allocates an unbound label.
    pub fn new_label(&mut self) -> BcLabel {
        let l = BcLabel(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if already bound.
    pub fn bind(&mut self, label: BcLabel) {
        let prev = self.labels.insert(label, self.code.len());
        assert!(prev.is_none(), "label bound twice");
    }

    /// Appends an op.
    pub fn op(&mut self, op: Op) -> &mut Self {
        self.code.push(op);
        self
    }

    /// Appends several ops.
    pub fn ops(&mut self, ops: &[Op]) -> &mut Self {
        self.code.extend_from_slice(ops);
        self
    }

    /// Emits a simple counted loop: `body` runs `count` times using
    /// `counter_local` as the induction variable counting down.
    pub fn counted_loop(
        &mut self,
        counter_local: u8,
        count: i64,
        body: impl FnOnce(&mut FunctionBuilder),
    ) -> &mut Self {
        self.op(Op::Const(count));
        self.op(Op::SetLocal(counter_local));
        let top = self.new_label();
        let done = self.new_label();
        self.bind(top);
        self.op(Op::GetLocal(counter_local));
        self.op(Op::JumpIfFalse(done));
        body(self);
        self.op(Op::GetLocal(counter_local));
        self.op(Op::Const(1));
        self.op(Op::Sub);
        self.op(Op::SetLocal(counter_local));
        self.op(Op::Jump(top));
        self.bind(done);
        self
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn build(self) -> Function {
        for op in &self.code {
            if let Op::Jump(l) | Op::JumpIfFalse(l) = op {
                assert!(self.labels.contains_key(l), "unbound label {l:?} in {}", self.name);
            }
        }
        Function {
            name: self.name,
            n_locals: self.n_locals,
            n_args: self.n_args,
            code: self.code,
            labels: self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_function() {
        let mut f = FunctionBuilder::new("f", 1, 2);
        f.op(Op::GetLocal(0));
        f.op(Op::Const(2));
        f.op(Op::Mul);
        f.op(Op::Return);
        let func = f.build();
        assert_eq!(func.name, "f");
        assert_eq!(func.code.len(), 4);
        assert_eq!(func.n_args, 1);
    }

    #[test]
    fn labels_bind_to_indices() {
        let mut f = FunctionBuilder::new("g", 0, 1);
        let l = f.new_label();
        f.op(Op::Const(0));
        f.op(Op::JumpIfFalse(l));
        f.op(Op::Const(1));
        f.bind(l);
        f.op(Op::Return);
        let func = f.build();
        assert_eq!(func.labels[&l], 3);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut f = FunctionBuilder::new("bad", 0, 1);
        let l = f.new_label();
        f.op(Op::Jump(l));
        let _ = f.build();
    }

    #[test]
    #[should_panic(expected = "locals include arguments")]
    fn locals_must_cover_args() {
        let _ = FunctionBuilder::new("bad", 3, 2);
    }

    #[test]
    fn counted_loop_emits_balanced_code() {
        let mut f = FunctionBuilder::new("loop", 0, 2);
        f.counted_loop(0, 10, |f| {
            f.op(Op::GetLocal(1));
            f.op(Op::Const(1));
            f.op(Op::Add);
            f.op(Op::SetLocal(1));
        });
        f.op(Op::GetLocal(1));
        f.op(Op::Return);
        let func = f.build();
        assert!(func.code.len() > 10);
    }
}
