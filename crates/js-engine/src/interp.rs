//! Reference interpreter for the engine bytecode.
//!
//! The interpreter defines the bytecode's semantics in plain Rust. The
//! JIT (which runs on the simulator, with mitigation sequences woven in)
//! is differentially tested against it: same program, same result,
//! regardless of which mitigations are enabled.

use crate::bytecode::{Function, Op};
use crate::engine::Engine;

/// Interpreter heap cell granularity (one u64 word, like the JIT's).
const HEAP_WORDS: usize = 1 << 17;

/// Interpreter state.
struct Interp<'e> {
    engine: &'e Engine,
    /// Flat heap of words; references are word indices shifted to look
    /// like byte addresses (×8) for parity with the JIT.
    heap: Vec<u64>,
    heap_top: usize,
    steps: u64,
    budget: u64,
}

/// Errors the interpreter can raise (a correct program raises none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Operand stack underflow (malformed bytecode).
    StackUnderflow,
    /// Step budget exhausted.
    BudgetExhausted,
    /// Heap exhausted.
    OutOfMemory,
    /// Reference did not point into the heap.
    BadReference,
}

/// Runs `engine`'s main function; returns its result.
pub fn run(engine: &Engine) -> Result<u64, InterpError> {
    let mut interp = Interp {
        engine,
        heap: vec![0; HEAP_WORDS],
        // Word 0 is reserved so no reference is ever 0: programs use 0 as
        // the null sentinel (the JIT's heap base is likewise nonzero).
        heap_top: 1,
        steps: 0,
        budget: 200_000_000,
    };
    interp.call(engine.main(), &[])
}

impl<'e> Interp<'e> {
    fn alloc(&mut self, words: usize) -> Result<u64, InterpError> {
        if self.heap_top + words > self.heap.len() {
            return Err(InterpError::OutOfMemory);
        }
        let at = self.heap_top;
        self.heap_top += words;
        Ok((at as u64) * 8)
    }

    fn heap_word(&self, byte_ref: u64, word_off: u64) -> Result<u64, InterpError> {
        let idx = (byte_ref / 8 + word_off) as usize;
        self.heap.get(idx).copied().ok_or(InterpError::BadReference)
    }

    fn heap_word_mut(&mut self, byte_ref: u64, word_off: u64) -> Result<&mut u64, InterpError> {
        let idx = (byte_ref / 8 + word_off) as usize;
        self.heap.get_mut(idx).ok_or(InterpError::BadReference)
    }

    fn call(&mut self, func: &Function, args: &[u64]) -> Result<u64, InterpError> {
        let mut locals = vec![0u64; func.n_locals as usize];
        locals[..args.len()].copy_from_slice(args);
        let mut stack: Vec<u64> = Vec::with_capacity(32);
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(InterpError::StackUnderflow)?
            };
        }

        while pc < func.code.len() {
            self.steps += 1;
            if self.steps > self.budget {
                return Err(InterpError::BudgetExhausted);
            }
            let op = func.code[pc];
            pc += 1;
            match op {
                Op::Const(v) => stack.push(v as u64),
                Op::FConst(v) => stack.push(v.to_bits()),
                Op::GetLocal(n) => stack.push(locals[n as usize]),
                Op::SetLocal(n) => {
                    let v = pop!();
                    locals[n as usize] = v;
                }
                Op::Dup => {
                    let v = *stack.last().ok_or(InterpError::StackUnderflow)?;
                    stack.push(v);
                }
                Op::Drop => {
                    pop!();
                }
                Op::Add => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(a.wrapping_add(b));
                }
                Op::Sub => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(a.wrapping_sub(b));
                }
                Op::Mul => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(a.wrapping_mul(b));
                }
                Op::Div => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(a.checked_div(b).unwrap_or(0));
                }
                Op::And => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(a & b);
                }
                Op::Or => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(a | b);
                }
                Op::Xor => {
                    let b = pop!();
                    let a = pop!();
                    stack.push(a ^ b);
                }
                Op::Shl(k) => {
                    let a = pop!();
                    stack.push(a << (k & 63));
                }
                Op::Shr(k) => {
                    let a = pop!();
                    stack.push(a >> (k & 63));
                }
                Op::FAdd => {
                    let b = f64::from_bits(pop!());
                    let a = f64::from_bits(pop!());
                    stack.push((a + b).to_bits());
                }
                Op::FSub => {
                    let b = f64::from_bits(pop!());
                    let a = f64::from_bits(pop!());
                    stack.push((a - b).to_bits());
                }
                Op::FMul => {
                    let b = f64::from_bits(pop!());
                    let a = f64::from_bits(pop!());
                    stack.push((a * b).to_bits());
                }
                Op::Lt => {
                    let b = pop!() as i64;
                    let a = pop!() as i64;
                    stack.push((a < b) as u64);
                }
                Op::Le => {
                    let b = pop!() as i64;
                    let a = pop!() as i64;
                    stack.push((a <= b) as u64);
                }
                Op::EqCmp => {
                    let b = pop!();
                    let a = pop!();
                    stack.push((a == b) as u64);
                }
                Op::Gt => {
                    let b = pop!() as i64;
                    let a = pop!() as i64;
                    stack.push((a > b) as u64);
                }
                Op::Jump(l) => pc = func.labels[&l],
                Op::JumpIfFalse(l) => {
                    if pop!() == 0 {
                        pc = func.labels[&l];
                    }
                }
                Op::NewArray(len) => {
                    let r = self.alloc(1 + len as usize)?;
                    *self.heap_word_mut(r, 0)? = len as u64;
                    stack.push(r);
                }
                Op::ArrayLen => {
                    let arr = pop!();
                    stack.push(self.heap_word(arr, 0)?);
                }
                Op::ArrayGet => {
                    let idx = pop!();
                    let arr = pop!();
                    let len = self.heap_word(arr, 0)?;
                    stack.push(if idx < len { self.heap_word(arr, 1 + idx)? } else { 0 });
                }
                Op::ArraySet => {
                    let val = pop!();
                    let idx = pop!();
                    let arr = pop!();
                    let len = self.heap_word(arr, 0)?;
                    if idx < len {
                        *self.heap_word_mut(arr, 1 + idx)? = val;
                    }
                }
                Op::NewObject(shape) => {
                    let slots = self.engine.shape_slots(shape);
                    let r = self.alloc(1 + slots as usize)?;
                    *self.heap_word_mut(r, 0)? = shape;
                    stack.push(r);
                }
                Op::GetProp(shape, slot) => {
                    let obj = pop!();
                    let actual = self.heap_word(obj, 0)?;
                    stack.push(if actual == shape {
                        self.heap_word(obj, 1 + slot as u64)?
                    } else {
                        0
                    });
                }
                Op::SetProp(shape, slot) => {
                    let val = pop!();
                    let obj = pop!();
                    let actual = self.heap_word(obj, 0)?;
                    if actual == shape {
                        *self.heap_word_mut(obj, 1 + slot as u64)? = val;
                    }
                }
                Op::Call(fid, nargs) => {
                    let mut args = vec![0u64; nargs as usize];
                    for i in (0..nargs as usize).rev() {
                        args[i] = pop!();
                    }
                    let callee = self.engine.function(fid);
                    let r = self.call(callee, &args)?;
                    stack.push(r);
                }
                Op::Return => {
                    return Ok(stack.pop().unwrap_or(0));
                }
                Op::ReadTimer => {
                    // The interpreter's clock is its step counter.
                    stack.push(self.steps);
                }
            }
        }
        Ok(0)
    }
}
