//! # hypervisor — the guest↔host security boundary
//!
//! Runs a `sim-kernel` guest under a simulated hypervisor and charges the
//! host-side costs of every VM exit: exit/entry transitions, emulated
//! device work, and — on L1TF-vulnerable hardware with default host
//! mitigations — the L1D flush before re-entering the guest (paper §4.4,
//! §5.6).
//!
//! ## Model
//!
//! Guest and host share one [`uarch`] machine: guest "physical" frames
//! are host frames (nested translation is collapsed into page-table
//! construction), so the L1D cache is genuinely shared — which is exactly
//! the channel L1TF exploits and the flush mitigation closes. VM exits
//! come from two sources:
//!
//! * **paravirtual disk**: the guest kernel's `fsync` jumps to a `vmcall`
//!   trampoline, exiting to the host's emulated disk;
//! * **timer ticks**: external interrupts exit the guest every fixed
//!   instruction slice, matching the paper's observation that VM
//!   workloads see tens of thousands of exits per second (vs millions of
//!   syscalls), which is why host mitigation costs stay invisible
//!   end-to-end.

use sim_kernel::{BootParams, Kernel, MitigationConfig};
use uarch::isa::Inst;
use uarch::machine::Stop;
use uarch::mem::PAGE_SHIFT;
use uarch::{ProgramBuilder, SimError};

/// Code address of the vmcall trampoline the hypervisor installs.
const VMCALL_PAD: u64 = 0x8100_0000;

/// Host frame holding "host kernel secrets" the L1TF attack targets.
const HOST_SECRET_FRAME: u64 = 0x8_0000;

/// Guest instructions per timer slice (one external-interrupt exit per
/// slice).
const TIMER_SLICE: u64 = 30_000;

/// Host-side cost of handling an exit (dispatch, emulation glue).
const EXIT_HANDLING_COST: u64 = 1500;

/// Extra host work for an emulated disk operation.
const DISK_EMULATION_COST: u64 = 3500;

/// Counters about the virtualization boundary.
#[derive(Debug, Default, Clone)]
pub struct VmStats {
    /// Total VM exits.
    pub exits: u64,
    /// Exits caused by the paravirtual disk.
    pub disk_exits: u64,
    /// Exits caused by the timer.
    pub timer_exits: u64,
    /// L1D flushes performed on VM entry.
    pub l1d_flushes: u64,
}

/// A hypervisor running one guest kernel.
#[derive(Debug)]
pub struct Hypervisor {
    /// The guest OS (owns the shared machine).
    pub guest: Kernel,
    /// The host's resolved mitigation configuration.
    pub host_config: MitigationConfig,
    /// Boundary statistics.
    pub stats: VmStats,
}

impl Hypervisor {
    /// Boots a guest kernel for `model` under a host with `host_params`.
    /// The guest gets its own boot parameters, as a cloud customer would.
    pub fn new(
        model: uarch::CpuModel,
        host_params: &BootParams,
        guest_params: &BootParams,
    ) -> Hypervisor {
        let host_config = MitigationConfig::resolve(&model, host_params);
        let mut guest = Kernel::boot(model, guest_params);
        // Install the vmcall trampoline: exit, then resume the kernel.
        let mut b = ProgramBuilder::new();
        b.push(Inst::Vmcall);
        b.push(Inst::Host(sim_kernel::abi::hook::VMCALL_RESUME));
        guest.machine.load_program(b.link(VMCALL_PAD));
        guest.state.vmcall_pad = Some(VMCALL_PAD);
        // Plant host secrets.
        guest
            .machine
            .mem
            .write_u64(HOST_SECRET_FRAME << PAGE_SHIFT, 0x48_53_45_43_52_45_54); // "HSECRET"
        Hypervisor { guest, host_config, stats: VmStats::default() }
    }

    /// Physical address of the host secret (for the L1TF experiments).
    pub fn host_secret_paddr(&self) -> u64 {
        HOST_SECRET_FRAME << PAGE_SHIFT
    }

    /// Runs the guest to completion, handling VM exits.
    pub fn run(&mut self, budget: u64) -> Result<(), SimError> {
        let mut remaining = budget;
        loop {
            let slice = TIMER_SLICE.min(remaining);
            if slice == 0 {
                return Err(SimError::InstructionBudgetExhausted);
            }
            match self.guest.run(slice) {
                Ok(Stop::Halted) => return Ok(()),
                Ok(Stop::Vmcall) => {
                    // The machine already charged `vmexit` at the vmcall.
                    self.stats.disk_exits += 1;
                    self.handle_exit(DISK_EMULATION_COST);
                }
                Err(SimError::InstructionBudgetExhausted) => {
                    // Timer tick: external-interrupt exit. KVM's default
                    // L1TF policy is the *conditional* flush: short
                    // kernel-only exits like this one re-enter without a
                    // flush, so only the transition costs apply.
                    self.stats.timer_exits += 1;
                    let vmexit = self.guest.machine.model.lat.vmexit;
                    self.guest.machine.charge(vmexit);
                    self.handle_tick_exit();
                }
                Err(e) => return Err(e),
            }
            remaining = remaining.saturating_sub(slice);
        }
    }

    /// Host-side exit handling for exits that run host emulation code
    /// (the "vulnerable" paths the conditional L1TF policy flushes
    /// after): host work touching host data, then the mitigated re-entry.
    fn handle_exit(&mut self, device_cost: u64) {
        self.stats.exits += 1;
        let m = &mut self.guest.machine;
        m.charge(EXIT_HANDLING_COST + device_cost);
        // The host's handling touches host-private data: its cache lines
        // are now hot in the shared L1D.
        m.l1d.access(HOST_SECRET_FRAME << PAGE_SHIFT);

        // Re-entry mitigations.
        if self.host_config.l1d_flush_vmentry {
            m.charge(m.model.lat.l1d_flush);
            m.l1d.flush_all();
            self.stats.l1d_flushes += 1;
        }
        m.charge(m.model.lat.vmentry);
    }

    /// A short kernel-only exit (timer tick): no host userspace ran, so
    /// the conditional L1TF policy skips the flush.
    fn handle_tick_exit(&mut self) {
        self.stats.exits += 1;
        let m = &mut self.guest.machine;
        m.charge(EXIT_HANDLING_COST / 3);
        m.charge(m.model.lat.vmentry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_models::{broadwell, cascade_lake, skylake_client};
    use sim_kernel::abi::nr;
    use sim_kernel::userlib::{self, begin_loop, emit_exit, emit_syscall, end_loop};
    use uarch::isa::Reg;

    const BUDGET: u64 = 2_000_000_000;

    #[test]
    fn guest_runs_to_completion_with_timer_exits() {
        let mut hv = Hypervisor::new(
            cascade_lake(),
            &BootParams::default(),
            &BootParams::default(),
        );
        hv.guest.spawn(|b| {
            let top = begin_loop(b, Reg::R7, 2000);
            userlib::emit_getpid(b);
            end_loop(b, Reg::R7, top);
            emit_exit(b);
        });
        hv.guest.start();
        hv.run(BUDGET).unwrap();
        assert!(hv.stats.timer_exits > 0, "timer must cause exits");
        assert_eq!(hv.stats.disk_exits, 0);
    }

    #[test]
    fn fsync_causes_disk_exits() {
        let mut hv = Hypervisor::new(
            cascade_lake(),
            &BootParams::default(),
            &BootParams::default(),
        );
        hv.guest.spawn(|b| {
            emit_syscall(b, nr::CREAT);
            b.push(uarch::Inst::Mov(Reg::R6, Reg::R0));
            let top = begin_loop(b, Reg::R7, 10);
            b.push(uarch::Inst::Mov(Reg::R1, Reg::R6));
            emit_syscall(b, nr::FSYNC);
            end_loop(b, Reg::R7, top);
            emit_exit(b);
        });
        hv.guest.start();
        hv.run(BUDGET).unwrap();
        assert_eq!(hv.stats.disk_exits, 10);
    }

    #[test]
    fn l1d_flush_only_on_l1tf_vulnerable_hosts() {
        let mut hv =
            Hypervisor::new(broadwell(), &BootParams::default(), &BootParams::default());
        hv.guest.spawn(|b| {
            userlib::emit_getpid(b);
            emit_exit(b);
        });
        hv.guest.start();
        hv.run(BUDGET).unwrap();
        assert!(hv.host_config.l1d_flush_vmentry);

        let mut hv =
            Hypervisor::new(cascade_lake(), &BootParams::default(), &BootParams::default());
        hv.guest.spawn(|b| {
            userlib::emit_getpid(b);
            emit_exit(b);
        });
        hv.guest.start();
        hv.run(BUDGET).unwrap();
        assert!(!hv.host_config.l1d_flush_vmentry, "fixed hardware needs no flush");
        assert_eq!(hv.stats.l1d_flushes, 0);
    }

    #[test]
    fn host_mitigations_cost_little_from_guest_view() {
        // §4.4: host-side mitigation work is amortized over tens of
        // thousands of exits/s, so guest-visible overhead stays small.
        let run_guest = |host: &str| -> u64 {
            let mut hv = Hypervisor::new(
                skylake_client(),
                &BootParams::parse(host),
                &BootParams::default(),
            );
            hv.guest.spawn(|b| {
                let top = begin_loop(b, Reg::R7, 400);
                userlib::emit_getpid(b);
                end_loop(b, Reg::R7, top);
                emit_exit(b);
            });
            hv.guest.start();
            hv.run(BUDGET).unwrap();
            hv.guest.cycles()
        };
        let mitigated = run_guest("");
        let bare = run_guest("mitigations=off");
        let overhead = mitigated as f64 / bare as f64 - 1.0;
        assert!(
            overhead.abs() < 0.05,
            "host mitigations must stay within a few percent: {:.2}%",
            overhead * 100.0
        );
    }

    #[test]
    fn l1tf_from_guest_blocked_by_vmentry_flush() {
        // The malicious-guest L1TF scenario (§5.6): the guest kernel maps
        // a non-present PTE whose frame bits point at host memory, then a
        // guest process reads it transiently. Without the host's
        // L1D-flush-on-entry the hot host line leaks; with it, nothing.
        use uarch::isa::Width;
        use uarch::mmu::Pte;

        let attack = |host_params: &str| -> bool {
            let mut hv = Hypervisor::new(
                broadwell(),
                &BootParams::parse(host_params),
                &BootParams::default(),
            );
            let secret_frame = HOST_SECRET_FRAME;
            // Guest program: fsync once (forces an exit so the host
            // touches its secret), then transiently read the evil
            // mapping and probe.
            let evil_vaddr = 0x5f00_0000u64;
            let probe = userlib::data_base() + 0x8000;
            let pid = hv.guest.spawn(move |b| {
                emit_syscall(b, nr::CREAT);
                b.push(uarch::Inst::Mov(Reg::R1, Reg::R0));
                emit_syscall(b, nr::FSYNC);
                let done = b.new_label();
                b.lea(Reg::R13, done);
                b.mov_imm(Reg::R1, evil_vaddr);
                b.mov_imm(Reg::R3, probe);
                b.push(uarch::Inst::Load {
                    dst: Reg::R4,
                    base: Reg::R1,
                    offset: 0,
                    width: Width::B1,
                });
                b.push(uarch::Inst::Shl(Reg::R4, 9));
                b.push(uarch::Inst::Add(Reg::R4, Reg::R3));
                b.push(uarch::Inst::Load {
                    dst: Reg::R5,
                    base: Reg::R4,
                    offset: 0,
                    width: Width::B1,
                });
                b.bind(done);
                emit_exit(b);
            });
            // The "malicious guest kernel": insert the evil PTE into the
            // guest process's tables (guests control their own tables).
            let (full, user) = {
                let p = hv.guest.process(pid).unwrap();
                (p.full_table, p.user_table)
            };
            let evil = Pte::user(secret_frame).non_present_stale();
            hv.guest.machine.mmu.table_mut(full).unwrap().map(evil_vaddr, evil);
            if user != full {
                hv.guest.machine.mmu.table_mut(user).unwrap().map(evil_vaddr, evil);
            }
            hv.guest.start();
            hv.run(BUDGET).unwrap();
            // Readout: the secret's low byte is 0x54 ('T').
            let secret_byte = 0x54u64;
            let p = hv.guest.process(pid).unwrap();
            let vaddr = probe + secret_byte * 512;
            let pte =
                hv.guest.machine.mmu.table(p.full_table).unwrap().lookup(vaddr).unwrap();
            let paddr = (pte.pfn << PAGE_SHIFT) | (vaddr & 0xfff);
            hv.guest.machine.l1d.probe(paddr)
        };

        assert!(attack("l1tf=off"), "unmitigated host must leak to the guest");
        assert!(!attack(""), "L1D flush on entry must block the leak");
    }

    #[test]
    fn exit_rate_is_orders_of_magnitude_below_syscall_rate() {
        // §4.4's structural argument: syscalls per exit >> 1.
        let mut hv = Hypervisor::new(
            cascade_lake(),
            &BootParams::default(),
            &BootParams::default(),
        );
        hv.guest.spawn(|b| {
            let top = begin_loop(b, Reg::R7, 500);
            userlib::emit_getpid(b);
            end_loop(b, Reg::R7, top);
            emit_exit(b);
        });
        hv.guest.start();
        hv.run(BUDGET).unwrap();
        let syscalls = hv.guest.state.stats.syscalls;
        let exits = hv.stats.exits.max(1);
        assert!(
            syscalls / exits > 10,
            "syscalls ({syscalls}) must dwarf exits ({exits})"
        );
    }
}
