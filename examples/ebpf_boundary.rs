//! Beyond the paper: the eBPF/kernel boundary the authors list as
//! unstudied. Loads a BPF program through the simulated kernel's
//! verifier + JIT, runs the Spectre V1 attack through it, and measures
//! what the verifier's index masking costs.
//!
//! ```text
//! cargo run --release --example ebpf_boundary
//! ```

use attacks::ebpf as ebpf_attack;
use cpu_models::CpuId;
use sim_kernel::abi::nr;
use sim_kernel::bpf::BpfInsn;
use sim_kernel::{userlib, BootParams, Kernel};
use spectrebench::experiments::ebpf;
use uarch::isa::Reg;

fn main() {
    // 1. Functional: load and run a small program in kernel context.
    let mut k = Kernel::boot(CpuId::IceLakeServer.model(), &BootParams::default());
    let map = k.bpf_create_map(8);
    for i in 0..8 {
        k.bpf_map_write(map, i, i * i);
    }
    // r0 = map[3] + map[5]
    let prog = k
        .bpf_load(&[
            BpfInsn::MovImm(1, 3),
            BpfInsn::MapLookup { dst: 2, map, idx: 1 },
            BpfInsn::MovImm(1, 5),
            BpfInsn::MapLookup { dst: 3, map, idx: 1 },
            BpfInsn::Mov(0, 2),
            BpfInsn::Add(0, 3),
            BpfInsn::Exit,
        ])
        .expect("verifies");
    let pid = k.spawn(move |b| {
        b.mov_imm(Reg::R1, prog as u64);
        userlib::emit_syscall(b, nr::BPF_PROG_RUN);
        b.mov_imm(Reg::R4, userlib::data_base());
        b.push(uarch::Inst::Store {
            src: Reg::R0,
            base: Reg::R4,
            offset: 0,
            width: uarch::Width::B8,
        });
        userlib::emit_exit(b);
    });
    k.start();
    k.run(10_000_000).expect("runs");
    let out = k.peek_user_data(pid, 0, 8);
    println!(
        "bpf program returned {} (expected {})",
        u64::from_le_bytes(out.try_into().unwrap()),
        9 + 25
    );

    // 2. Security: Spectre V1 from inside a BPF program, with and without
    //    the verifier's index masking.
    let bare = ebpf_attack::run(CpuId::IceLakeServer.model(), "nospectre_v1");
    let masked = ebpf_attack::run(CpuId::IceLakeServer.model(), "");
    println!(
        "in-kernel Spectre V1 via BPF: unmasked leaks={}, verifier-masked leaks={}",
        bare.leaked(),
        masked.leaked()
    );
    assert!(bare.leaked() && !masked.leaked());

    // 3. Performance: what the boundary's mitigations cost.
    let rows = ebpf::run(
        &spectrebench::Executor::default(),
        &[CpuId::Broadwell, CpuId::CascadeLake, CpuId::IceLakeServer],
    )
    .expect("clean eBPF sweep");
    println!("\n{}", ebpf::render(&rows));
    println!(
        "Same trajectory as the paper's OS boundary: entry/exit mitigations\n\
         dominate old parts and vanish on new ones, while the Spectre V1\n\
         masking — like the JS sandbox's — persists everywhere."
    );
}
