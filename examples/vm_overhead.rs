//! The hypervisor boundary (§4.4): run LFS against an emulated disk
//! inside a guest, toggle the host's mitigations, and watch the overhead
//! stay small — then show the L1TF attack the host's flush prevents.
//!
//! ```text
//! cargo run --release --example vm_overhead
//! ```

use cpu_models::CpuId;
use hypervisor::Hypervisor;
use sim_kernel::BootParams;
use spectrebench::experiments::vm;
use uarch::mem::PAGE_SHIFT;
use uarch::mmu::Pte;

fn main() {
    // Guest-visible overhead of host mitigations for LEBench-in-VM and
    // the two LFS benchmarks.
    let rows = vm::run(
        &spectrebench::Executor::default(),
        &[CpuId::SkylakeClient, CpuId::CascadeLake, CpuId::Zen3],
    )
    .expect("clean VM sweep");
    println!("{}", vm::render(&rows));
    println!(
        "Exits stay in the tens of thousands per second while syscalls reach\n\
         millions, which is why per-exit mitigation work stays invisible (section 4.4).\n"
    );

    // The malicious-guest L1TF scenario on a vulnerable host.
    let attack = |host: &str| -> bool {
        let mut hv = Hypervisor::new(
            CpuId::SkylakeClient.model(),
            &BootParams::parse(host),
            &BootParams::default(),
        );
        let evil_vaddr = 0x5f00_0000u64;
        let probe = sim_kernel::userlib::data_base() + 0x8000;
        let secret_paddr = hv.host_secret_paddr();
        let pid = hv.guest.spawn(move |b| {
            use sim_kernel::abi::nr;
            use sim_kernel::userlib::{emit_exit, emit_syscall};
            use uarch::isa::{Inst, Reg, Width};
            emit_syscall(b, nr::CREAT);
            b.push(Inst::Mov(Reg::R1, Reg::R0));
            emit_syscall(b, nr::FSYNC); // force an exit: the host touches its data
            let done = b.new_label();
            b.lea(Reg::R13, done);
            b.mov_imm(Reg::R1, evil_vaddr);
            b.mov_imm(Reg::R3, probe);
            b.push(Inst::Load { dst: Reg::R4, base: Reg::R1, offset: 0, width: Width::B1 });
            b.push(Inst::Shl(Reg::R4, 9));
            b.push(Inst::Add(Reg::R4, Reg::R3));
            b.push(Inst::Load { dst: Reg::R5, base: Reg::R4, offset: 0, width: Width::B1 });
            b.bind(done);
            emit_exit(b);
        });
        // The "malicious guest kernel" plants a non-present PTE whose
        // frame bits point at host memory.
        let (full, user) = {
            let p = hv.guest.process(pid).unwrap();
            (p.full_table, p.user_table)
        };
        let evil = Pte::user(secret_paddr >> PAGE_SHIFT).non_present_stale();
        hv.guest.machine.mmu.table_mut(full).unwrap().map(evil_vaddr, evil);
        if user != full {
            hv.guest.machine.mmu.table_mut(user).unwrap().map(evil_vaddr, evil);
        }
        hv.guest.start();
        hv.run(4_000_000_000).expect("guest completes");
        // Did the host-secret byte's probe line get hot?
        let secret_byte = 0x54u64; // low byte of the planted host secret
        let p = hv.guest.process(pid).unwrap();
        let vaddr = probe + secret_byte * 512;
        let pte = hv.guest.machine.mmu.table(p.full_table).unwrap().lookup(vaddr).unwrap();
        let paddr = (pte.pfn << PAGE_SHIFT) | (vaddr & 0xfff);
        hv.guest.machine.l1d.probe(paddr)
    };
    let leaked_bare = attack("l1tf=off");
    let leaked_mitigated = attack("");
    println!(
        "guest L1TF against the host: l1tf=off leaks={leaked_bare}, \
         default (flush on entry) leaks={leaked_mitigated}"
    );
    assert!(leaked_bare && !leaked_mitigated);
    println!("vm_overhead OK");
}
