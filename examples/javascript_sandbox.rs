//! The browser boundary: run the Octane-like suite in the sandboxed JS
//! engine and attribute the slowdown to each sandbox mitigation
//! (Figure 3), then demonstrate what index masking actually prevents.
//!
//! ```text
//! cargo run --release --example javascript_sandbox
//! ```

use attacks::spectre_v1::{self, V1Mitigation};
use cpu_models::CpuId;
use js_engine::octane::{run_suite, OctaneBench};
use js_engine::JsMitigations;
use sim_kernel::BootParams;
use spectrebench::experiments::figure3;

fn main() {
    // Per-benchmark cycles on one CPU, with and without JS mitigations.
    let model = CpuId::SkylakeClient.model();
    let params = BootParams::default();
    let (with, score_with) = run_suite(&model, &params, JsMitigations::full());
    let (without, score_without) = run_suite(&model, &params, JsMitigations::none());
    println!("Octane-like suite on Skylake Client (simulated cycles):");
    println!("{:16} {:>12} {:>12} {:>9}", "benchmark", "mitigated", "bare", "slowdown");
    for ((b, on), (_, off)) in with.iter().zip(&without) {
        println!(
            "{:16} {:>12} {:>12} {:>8.1}%",
            b.name(),
            on,
            off,
            (*on as f64 / *off as f64 - 1.0) * 100.0
        );
    }
    println!(
        "suite score: {score_with:.1} mitigated vs {score_without:.1} bare ({:.1}% decrease)\n",
        (1.0 - score_with / score_without) * 100.0
    );

    // The Figure 3 attribution across a CPU subset.
    let fig = figure3::run(
        &spectrebench::Executor::default(),
        &[CpuId::Broadwell, CpuId::IceLakeServer, CpuId::Zen3],
        false,
    )
    .expect("clean figure 3 run");
    println!("{}", figure3::render(&fig));

    // What the 4% buys: index masking stops the in-sandbox Spectre V1.
    let bare = spectre_v1::run(CpuId::Zen3.model(), V1Mitigation::Off);
    let masked = spectre_v1::run(CpuId::Zen3.model(), V1Mitigation::Mask);
    println!(
        "Spectre V1 inside the sandbox on Zen 3: unmitigated recovers {:?}, \
         index-masked recovers {:?}",
        bare.recovered, masked.recovered
    );
    assert!(bare.leaked() && !masked.leaked());

    // Sanity: each benchmark computes the independently-verified result.
    for b in OctaneBench::ALL {
        assert_eq!(b.build().interpret().unwrap(), b.reference(), "{}", b.name());
    }
    println!("javascript_sandbox OK");
}
