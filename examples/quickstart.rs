//! Quickstart: boot a simulated CPU + kernel, run a program, watch a
//! mitigation stop an attack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use attacks::meltdown;
use cpu_models::{broadwell, ice_lake_server};
use sim_kernel::{userlib, BootParams, Kernel};
use uarch::isa::Reg;

fn main() {
    // 1. Boot a 2014 Broadwell with the default (fully mitigated) kernel.
    let mut kernel = Kernel::boot(broadwell(), &BootParams::default());
    println!("booted Broadwell; mitigations: {}", kernel.state.config.summary());

    // 2. Run a user program: sum 1..=100, then exit via syscall.
    let pid = kernel.spawn(|b| {
        let top = userlib::begin_loop(b, Reg::R6, 100);
        b.push(uarch::Inst::Add(Reg::R5, Reg::R6));
        userlib::end_loop(b, Reg::R6, top);
        // Store the result where the host can read it.
        b.mov_imm(Reg::R4, userlib::data_base());
        b.push(uarch::Inst::Store {
            src: Reg::R5,
            base: Reg::R4,
            offset: 0,
            width: uarch::Width::B8,
        });
        userlib::emit_exit(b);
    });
    kernel.start();
    kernel.run(10_000_000).expect("program runs");
    let out = kernel.peek_user_data(pid, 0, 8);
    println!(
        "program computed {} in {} simulated cycles",
        u64::from_le_bytes(out.try_into().unwrap()),
        kernel.cycles()
    );

    // 3. The same syscall-heavy loop costs more with mitigations than
    //    without — the paper's core observation.
    let cost = |cmdline: &str| {
        let mut k = Kernel::boot(broadwell(), &BootParams::parse(cmdline));
        k.spawn(|b| {
            let top = userlib::begin_loop(b, Reg::R6, 200);
            userlib::emit_getpid(b);
            userlib::end_loop(b, Reg::R6, top);
            userlib::emit_exit(b);
        });
        k.start();
        k.run(100_000_000).expect("runs");
        k.cycles()
    };
    let on = cost("");
    let off = cost("mitigations=off");
    println!(
        "getpid loop: {on} cycles mitigated vs {off} bare ({:.1}% overhead)",
        (on as f64 / off as f64 - 1.0) * 100.0
    );

    // 4. Why we pay: without PTI, a user process Meltdowns the kernel.
    let unmitigated = meltdown::run_against_kernel(broadwell(), "nopti");
    let mitigated = meltdown::run_against_kernel(broadwell(), "");
    println!(
        "Meltdown on Broadwell: nopti leaks {:?} (secret {:#x}); PTI leaks {:?}",
        unmitigated.recovered, unmitigated.secret, mitigated.recovered
    );
    assert!(unmitigated.leaked() && !mitigated.leaked());

    // 5. New hardware doesn't need the mitigation at all.
    let modern = meltdown::run_against_kernel(ice_lake_server(), "nopti");
    println!(
        "Meltdown on Ice Lake Server without PTI: leaks {:?} (hardware fix)",
        modern.recovered
    );
    assert!(!modern.leaked());
    println!("quickstart OK");
}
