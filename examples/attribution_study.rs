//! Figure 2 end-to-end: attribute LEBench mitigation overhead to
//! individual mitigations on every CPU, using the paper's
//! successive-disable methodology.
//!
//! ```text
//! cargo run --release --example attribution_study              # all CPUs
//! cargo run --release --example attribution_study -- quick     # getpid only
//! cargo run --release --example attribution_study -- faulty    # + injected faults
//! ```
//!
//! The `faulty` mode drives the same sweep through a `FaultPlan` that
//! permanently kills one lattice cell: the harness retries, gives up,
//! and `attribute()` bridges the adjacent slices instead of aborting.

use cpu_models::CpuId;
use spectrebench::experiments::figure2;
use spectrebench::{Executor, FaultKind, FaultPlan, Harness};

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let faulty = std::env::args().any(|a| a == "faulty");
    if quick {
        println!("(quick mode: attribution over getpid only)\n");
    }
    let harness = if faulty {
        println!("(faulty mode: Broadwell's [nopti] cell fails permanently)\n");
        Harness::new()
            .with_plan(FaultPlan::new().fail_cell("Broadwell/getpid/[nopti]", FaultKind::SimFault, None))
    } else {
        Harness::new()
    };
    let exec = Executor::new(harness);
    let fig = figure2::run(&exec, &CpuId::ALL, quick || faulty).expect("figure 2 sweep");
    println!("{}", figure2::render(&fig));
    let stats = exec.stats();
    if stats.retries > 0 || stats.faults_injected > 0 {
        println!(
            "(harness: {} retries, {} faults injected, {} cells failed)\n",
            stats.retries, stats.faults_injected, stats.cells_failed
        );
    }

    // The paper's headline, restated from the data.
    let total = |id: CpuId| {
        fig.bars.iter().find(|(c, _)| *c == id).map(|(_, a)| a.total).unwrap()
    };
    println!(
        "OS-boundary overhead: Broadwell {:.1}% -> Ice Lake Server {:.1}% ({}x decline)",
        total(CpuId::Broadwell) * 100.0,
        total(CpuId::IceLakeServer) * 100.0,
        (total(CpuId::Broadwell) / total(CpuId::IceLakeServer).max(0.001)).round()
    );
}
