//! Figure 2 end-to-end: attribute LEBench mitigation overhead to
//! individual mitigations on every CPU, using the paper's
//! successive-disable methodology.
//!
//! ```text
//! cargo run --release --example attribution_study              # all CPUs
//! cargo run --release --example attribution_study -- quick     # getpid only
//! ```

use cpu_models::CpuId;
use spectrebench::experiments::figure2;

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    if quick {
        println!("(quick mode: attribution over getpid only)\n");
    }
    let fig = figure2::run(&CpuId::ALL, quick);
    println!("{}", figure2::render(&fig));

    // The paper's headline, restated from the data.
    let total = |id: CpuId| {
        fig.bars.iter().find(|(c, _)| *c == id).map(|(_, a)| a.total).unwrap()
    };
    println!(
        "OS-boundary overhead: Broadwell {:.1}% -> Ice Lake Server {:.1}% ({}x decline)",
        total(CpuId::Broadwell) * 100.0,
        total(CpuId::IceLakeServer) * 100.0,
        (total(CpuId::Broadwell) / total(CpuId::IceLakeServer).max(0.001)).round()
    );
}
