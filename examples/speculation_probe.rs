//! The §6 speculation probe: poison the BTB, redirect the pointer, and
//! catch the speculative dispatch with the divider performance counter
//! (Figure 6) — then print the full Tables 9 and 10.
//!
//! ```text
//! cargo run --release --example speculation_probe
//! ```

use cpu_models::CpuId;
use spectrebench::experiments::tables9and10;
use spectrebench::probe::{run, ProbeConfig, ProbeResult};
use spectrebench::Executor;
use uarch::PrivMode;

fn main() {
    // A single cell first, narrated: the classic user->kernel attack on
    // Broadwell vs the eIBRS-tagged Cascade Lake.
    for id in [CpuId::Broadwell, CpuId::CascadeLake] {
        let cfg = ProbeConfig {
            train: PrivMode::User,
            victim: PrivMode::Kernel,
            intervening_syscall: true,
            ibrs: false,
        };
        let r = run(&id.model(), cfg).expect("probe runs clean");
        println!(
            "{}: train in user mode, victim indirect branch in kernel mode -> {}",
            id.microarch(),
            match r {
                ProbeResult::Speculated => "victim_target ran speculatively!",
                ProbeResult::Blocked => "no speculation (BTB is privilege-tagged)",
                ProbeResult::NotApplicable => "n/a",
            }
        );
    }
    println!();

    let exec = Executor::default();
    let t9 = tables9and10::run(&exec, false).expect("table 9 runs clean");
    let t10 = tables9and10::run(&exec, true).expect("table 10 runs clean");
    println!("{}", tables9and10::render(&t9));
    println!("{}", tables9and10::render(&t10));
    println!(
        "Note the pre-Spectre parts under IBRS: all prediction blocked, even\n\
         user->user (section 6.2.1), and Zen 3's empty rows (section 6.2)."
    );
}
