//! Root crate of the spectrebench reproduction workspace.
//!
//! The substance lives in the member crates (see the README's
//! architecture section); this crate exists to host the cross-crate
//! integration tests under `tests/` and the runnable walkthroughs under
//! `examples/`. For library use, depend on the member crates directly;
//! the re-export below is a convenience for the examples.

/// The measurement harness (the `spectrebench` crate in `crates/core`).
pub use spectrebench as harness;
