//! The golden-output acceptance test: regenerating every artifact at
//! the default seed, in-process, must reproduce the committed
//! `results_regenerated.txt` byte for byte.
//!
//! This pins the entire pipeline — simulator timing, noise seeding,
//! statistics, attribution, rendering — so any change that shifts a
//! published number is caught in review, deliberately. If a change is
//! *supposed* to move numbers (e.g. a statistics fix), regenerate the
//! file and commit it alongside the change:
//!
//! ```text
//! cargo run --release -p bench --bin regen > results_regenerated.txt
//! ```
//!
//! This is the full sweep (not `--quick`), so it is the slowest test in
//! the suite by design; everything else covers the quick variants.

use bench::{render_report, run_regen, RegenOptions};

#[test]
fn full_sweep_matches_committed_golden_file() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/results_regenerated.txt");
    let golden = std::fs::read_to_string(golden_path).expect("committed golden file exists");

    let report = run_regen(&RegenOptions::default()).expect("no journal, so no I/O to fail");
    assert!(report.is_clean(), "failures: {:?}, degraded: {:?}", report.failures(), report.degraded());
    let rendered = render_report(&report);

    if rendered != golden {
        // Byte equality failed; point at the first diverging line so the
        // failure names the artifact instead of dumping both documents.
        for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "first divergence at line {} (regenerate results_regenerated.txt if this \
                 change is meant to move published numbers)",
                i + 1
            );
        }
        assert_eq!(
            rendered.lines().count(),
            golden.lines().count(),
            "line counts differ (one output is a prefix of the other)"
        );
        panic!("outputs differ only in trailing whitespace or final newline");
    }
}
