//! Structural invariants of the observability event stream, checked on
//! real sweeps driven through `run_regen` with a virtual clock:
//!
//! * every queued cell starts and finishes exactly once;
//! * spans on one worker lane never overlap, and per-worker timestamps
//!   are strictly monotone;
//! * a cell served from the cache never emits a retry afterwards;
//! * the Prometheus exposition's counters (derived from events) agree
//!   with the harness's own `HarnessStats` counters — a genuine
//!   cross-check, since the two are maintained independently;
//! * the Chrome trace export is well-formed JSON containing the spans;
//! * attaching the bus never changes rendered artifacts.
//!
//! All of it holds serially, in parallel, and under an injected
//! `FaultPlan` (CI additionally runs this suite with `REGEN_JOBS=1`
//! and `=4`).

use std::collections::HashMap;
use std::sync::Arc;

use bench::{run_regen, Artifact, RegenOptions};
use spectrebench::obs::{metrics, trace};
use spectrebench::{Event, EventBus, EventKind, FaultKind, FaultPlan, HarnessStats, VirtualClock};

/// A small sweep exercising fresh cells, cross-plan cache hits (table9
/// appears twice, so its second pass is served entirely from cache),
/// and — optionally — injected transient faults.
fn sweep(jobs: Option<usize>, inject: Option<FaultPlan>) -> (Vec<Event>, HarnessStats) {
    let bus = Arc::new(EventBus::with_clock(Arc::new(VirtualClock::new())));
    let opts = RegenOptions {
        artifacts: vec![Artifact::Table1, Artifact::Table9, Artifact::Table10, Artifact::Table9],
        quick: true,
        retries: Some(4),
        inject,
        jobs,
        obs: Some(Arc::clone(&bus)),
        ..RegenOptions::default()
    };
    let report = run_regen(&opts).expect("no journal, so no I/O to fail");
    assert!(report.failures().is_empty(), "{:?}", report.failures());
    (bus.snapshot(), report.stats)
}

/// The structural invariants every event stream must satisfy.
fn assert_invariants(events: &[Event]) {
    assert!(!events.is_empty());

    // -- Lifecycle: per cell key, queued == started == finished, and
    // every finish carries ok (no permanent failures in these sweeps).
    let mut queued: HashMap<&str, u32> = HashMap::new();
    let mut started: HashMap<&str, u32> = HashMap::new();
    let mut finished: HashMap<&str, u32> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::CellQueued => *queued.entry(e.cell.as_str()).or_default() += 1,
            EventKind::CellStarted => *started.entry(e.cell.as_str()).or_default() += 1,
            EventKind::CellFinished { ok, .. } => {
                assert!(ok, "cell {} failed permanently", e.cell);
                *finished.entry(e.cell.as_str()).or_default() += 1;
            }
            _ => {}
        }
    }
    assert_eq!(queued, started, "every queued cell starts exactly once per queueing");
    assert_eq!(started, finished, "every started cell finishes exactly once");

    // -- Per-worker discipline: timestamps strictly monotone (the
    // virtual clock ticks on every read, so ties would be real bugs)
    // and spans never overlap — a worker opens a second cell only
    // after closing the first.
    let mut by_worker: HashMap<usize, Vec<&Event>> = HashMap::new();
    for e in events {
        by_worker.entry(e.worker).or_default().push(e);
    }
    for (worker, stream) in &by_worker {
        let mut open: Option<&str> = None;
        for pair in stream.windows(2) {
            assert!(
                pair[1].ts > pair[0].ts,
                "worker {worker}: timestamps must be strictly monotone"
            );
        }
        for e in stream {
            match e.kind {
                EventKind::CellStarted => {
                    assert!(
                        open.is_none(),
                        "worker {worker}: {} started while {:?} still open",
                        e.cell,
                        open
                    );
                    open = Some(e.cell.as_str());
                }
                EventKind::CellFinished { .. } => {
                    assert_eq!(
                        open,
                        Some(e.cell.as_str()),
                        "worker {worker}: finish must close the open span"
                    );
                    open = None;
                }
                _ => {}
            }
        }
        assert!(open.is_none(), "worker {worker}: span left open at end of stream");
    }

    // -- Cache discipline: once a cell is served from the cache, it is
    // never re-attempted, so no retry for it may appear later.
    for (i, e) in events.iter().enumerate() {
        if e.kind == EventKind::CacheHit {
            let late_retry = events[i..]
                .iter()
                .any(|r| r.kind == EventKind::Retry && r.cell == e.cell);
            assert!(!late_retry, "cache-hit cell {} retried afterwards", e.cell);
        }
    }
}

#[test]
fn invariants_hold_serially_and_in_parallel() {
    // None defers to REGEN_JOBS (what CI varies); 1 and 4 pin both
    // scheduling shapes regardless of the environment.
    for jobs in [None, Some(1), Some(4)] {
        let (events, stats) = sweep(jobs, None);
        assert_invariants(&events);
        assert!(
            events.iter().any(|e| e.kind == EventKind::CacheHit),
            "jobs={jobs:?}: the repeated table9 must hit the cache"
        );
        assert!(stats.cells_from_cache > 0);
        assert!(!events.iter().any(|e| e.kind == EventKind::Retry), "clean sweep never retries");
    }
}

#[test]
fn invariants_hold_under_injected_faults() {
    let plan = || {
        FaultPlan::new()
            .fail_cell("table9/Cascade Lake", FaultKind::SimFault, Some(2))
            .fail_cell("table10/Zen 2", FaultKind::Timeout, Some(1))
    };
    for jobs in [Some(1), Some(4)] {
        let (events, stats) = sweep(jobs, Some(plan()));
        assert_invariants(&events);
        assert!(
            events.iter().any(|e| e.kind == EventKind::Retry),
            "jobs={jobs:?}: transient faults must surface as retry events"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::FaultInjected { fault: FaultKind::SimFault })),
            "jobs={jobs:?}: injected faults must surface with their kind"
        );
        assert!(stats.retries >= 3, "jobs={jobs:?}: {stats:?}");
    }
}

#[test]
fn metrics_cross_check_harness_stats() {
    let plan = FaultPlan::new().fail_cell("table9/Cascade Lake", FaultKind::SimFault, Some(2));
    let (events, stats) = sweep(Some(2), Some(plan));
    let text = metrics::prometheus_text(&events, &stats);
    let value = |name: &str| {
        metrics::metric_value(&text, name).unwrap_or_else(|| panic!("{name} missing:\n{text}"))
    };
    // The exposition counts events; the harness counts operations. They
    // are maintained on opposite sides of the executor, so agreement
    // means the instrumentation is complete.
    assert_eq!(value("regen_cells_simulated_total") as u64, stats.cells_run);
    assert_eq!(value("regen_cells_cached_total") as u64, stats.cells_from_cache);
    assert_eq!(value("regen_cells_replayed_total") as u64, stats.cells_from_journal);
    assert_eq!(value("regen_retries_total") as u64, stats.retries);
    assert_eq!(value("regen_faults_injected_total") as u64, stats.faults_injected);
    assert_eq!(value("regen_cells_failed_total") as u64, stats.cells_failed);
    assert_eq!(value("regen_watchdog_fired_total"), 0.0);
    assert!(value("regen_plans_total") >= 4.0, "one plan per artifact at least");
    // Histograms paired every queue/start and plan start/finish.
    assert_eq!(
        value("regen_queue_latency_seconds_count") as u64,
        stats.cells_run,
        "every fresh cell contributes one queue-latency sample"
    );
}

#[test]
fn chrome_trace_is_wellformed_json_with_spans() {
    let (events, _) = sweep(Some(2), None);
    let json = trace::chrome_trace_json(&events);
    trace::validate_json(&json).expect("trace must be parseable JSON");
    assert!(json.contains("\"ph\":\"X\""), "complete spans present");
    assert!(json.contains("\"ph\":\"M\""), "lane metadata present");
    assert!(json.contains("cache_hit"), "instant events present");
    assert!(json.ends_with("]}\n"));
}

#[test]
fn attaching_the_bus_never_changes_artifacts() {
    let artifacts = vec![Artifact::Table1, Artifact::Table9, Artifact::Table10];
    let base = RegenOptions { artifacts, quick: true, ..RegenOptions::default() };
    let silent = run_regen(&base).expect("no I/O");
    let observed = run_regen(&RegenOptions {
        obs: Some(Arc::new(EventBus::with_clock(Arc::new(VirtualClock::new())))),
        ..base
    })
    .expect("no I/O");
    assert_eq!(
        bench::render_report(&silent),
        bench::render_report(&observed),
        "tracing must be observational only"
    );
}
