//! The fault-tolerance acceptance test: a `FaultPlan` that permanently
//! kills one lattice cell must not take the sweep down with it.
//!
//! * `--keep-going` still renders *every* artifact;
//! * exactly the slices adjacent to the failed cell are marked degraded
//!   (and only on the affected CPU's bar);
//! * the report is not clean (the regen binary maps that to a nonzero
//!   exit code);
//! * `--resume <log>` re-runs only the failed cell, reusing every
//!   journaled measurement, and converges to the fault-free rendering.

use bench::{run_regen, Artifact, RegenOptions};
use spectrebench::{Executor, FaultKind, FaultPlan, Harness, Journal};

/// The one lattice cell this test assassinates: Figure 2's quick-mode
/// Broadwell measurement with PTI disabled. It is a *middle* cell of the
/// successive-disable lattice, so `attribute()` must bridge over it.
const VICTIM_CELL: &str = "figure2/Broadwell/getpid/[nopti]";

fn journal_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spectrebench-recovery-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn keep_going_sweep_degrades_one_slice_and_resume_reruns_only_the_failed_cell() {
    let log = journal_path("sweep");

    // ---- Sweep 1: every artifact, quick, with the victim cell dead. ----
    let opts = RegenOptions {
        artifacts: Vec::new(), // all of them
        quick: true,
        keep_going: true,
        retries: Some(2), // fail fast; the fault is permanent anyway
        inject: Some(FaultPlan::new().fail_cell(VICTIM_CELL, FaultKind::SimFault, None)),
        resume: Some(log.clone()),
        ..RegenOptions::default()
    };
    let report = run_regen(&opts).expect("journal opens");

    // Every artifact still rendered.
    assert_eq!(report.results.len(), Artifact::ALL.len());
    assert!(
        report.failures().is_empty(),
        "no artifact may fail outright: {:?}",
        report.failures()
    );
    // Exactly Figure 2 is degraded, and the sweep is not clean (the
    // binary turns that into a nonzero exit).
    assert_eq!(report.degraded(), vec![Artifact::Figure2]);
    assert!(!report.is_clean());
    assert!(report.stats.faults_injected >= 2, "{:?}", report.stats);
    assert!(report.stats.cells_failed >= 1);

    // Only the Broadwell bar carries degraded slices, and they are the
    // two bridged over the dead [nopti] cell.
    let fig2 = &report
        .results
        .iter()
        .find(|r| r.artifact == Artifact::Figure2)
        .unwrap()
        .outcome
        .as_ref()
        .unwrap()
        .text;
    for line in fig2.lines() {
        // Skip the footnote legend explaining the marker itself.
        if line.contains('†') && !line.trim_start().starts_with('†') {
            assert!(line.contains("Broadwell"), "only Broadwell is degraded: {line}");
        }
    }
    assert!(fig2.contains('†'), "the degraded slice is marked:\n{fig2}");

    // ---- Sweep 2: resume Figure 2 from the journal, fault-free. ----
    let opts = RegenOptions {
        artifacts: vec![Artifact::Figure2],
        quick: true,
        resume: Some(log.clone()),
        ..RegenOptions::default()
    };
    let resumed = run_regen(&opts).expect("journal reopens");
    assert!(resumed.failures().is_empty());
    assert!(resumed.degraded().is_empty(), "the bridged slice heals on resume");
    assert!(resumed.is_clean());
    // Every cell except the previously failed one comes from the journal.
    assert_eq!(
        resumed.stats.cells_run, 1,
        "resume re-measures only the failed cell: {:?}",
        resumed.stats
    );
    assert!(
        resumed.stats.cells_from_journal >= 8,
        "the rest replays from the journal: {:?}",
        resumed.stats
    );

    // The healed figure matches a fault-free run exactly (cell noise
    // seeds are deterministic, and successful first attempts use the
    // same seed as a never-faulted run).
    let clean = Artifact::Figure2
        .regenerate(true, &Executor::default())
        .expect("clean reference run");
    let resumed_text = &resumed
        .results
        .first()
        .unwrap()
        .outcome
        .as_ref()
        .unwrap()
        .text;
    assert_eq!(resumed_text, &clean.text);

    let _ = std::fs::remove_file(&log);
}

#[test]
fn journal_survives_truncation_mid_line() {
    // An interrupted run can die mid-write; the loader must skip the
    // torn final line and resume from the intact prefix.
    let log = journal_path("torn");
    {
        let j = Journal::open(&log).expect("create");
        let exec = Executor::new(Harness::new()).with_journal(j);
        // Populate with real journaled lattice cells.
        let _ =
            spectrebench::experiments::figure2::run(&exec, &[cpu_models::CpuId::Broadwell], true)
                .unwrap();
    }
    // Tear the file: chop the last 10 bytes.
    let bytes = std::fs::read(&log).expect("journal exists");
    assert!(bytes.len() > 20);
    std::fs::write(&log, &bytes[..bytes.len() - 10]).expect("truncate");

    let j = Journal::open(&log).expect("reopen tolerates torn line");
    assert!(!j.is_empty(), "intact prefix survives");
    let _ = std::fs::remove_file(&log);
}
