//! Workspace-level integration tests: the paper's headline conclusions,
//! reproduced end to end across crates.

use cpu_models::CpuId;
use js_engine::octane::{run_suite as octane_suite, OctaneBench};
use js_engine::JsMitigations;
use sim_kernel::{BootParams, Kernel, Mitigation};
use spectrebench::experiments::{eibrs_bimodal, figure2, tables9and10};
use spectrebench::probe::ProbeResult;
use spectrebench::Executor;
use workloads::lebench::{geomean, run_suite as lebench_suite};

/// §4.6 / §9: "overheads on LEBench have gone from over 30% on older
/// Intel CPUs to under 3% on the latest models" — we reproduce the shape:
/// a large overhead on Broadwell, a near-zero one on Ice Lake Server, and
/// an order-of-magnitude decline.
#[test]
fn headline_os_boundary_overhead_evolution() {
    let overhead = |id: CpuId| {
        let model = id.model();
        let on = geomean(&lebench_suite(&model, &BootParams::default()));
        let off = geomean(&lebench_suite(&model, &BootParams::parse("mitigations=off")));
        on / off - 1.0
    };
    let bdw = overhead(CpuId::Broadwell);
    let icx = overhead(CpuId::IceLakeServer);
    assert!(bdw > 0.30, "Broadwell pays heavily: {:.1}%", bdw * 100.0);
    assert!(icx < 0.03, "Ice Lake Server is nearly free: {:.1}%", icx * 100.0);
    assert!(bdw / icx.max(0.003) > 10.0, "an order-of-magnitude decline");
}

/// §4.6: "none of the attacks impacting JavaScript performance have been
/// addressed in hardware" — the browser boundary stays expensive on the
/// newest parts.
#[test]
fn headline_browser_boundary_overhead_persists() {
    for id in [CpuId::Broadwell, CpuId::IceLakeServer] {
        let model = id.model();
        let (_, bare) = octane_suite(
            &model,
            &BootParams::parse("mitigations=off"),
            JsMitigations::none(),
        );
        let (_, full) = octane_suite(&model, &BootParams::default(), JsMitigations::full());
        let decrease = 1.0 - full / bare;
        assert!(
            decrease > 0.08,
            "{id}: browser overhead must persist, got {:.1}%",
            decrease * 100.0
        );
    }
}

/// Table 1 consistency: the kernel deploys a mitigation exactly when the
/// matching attack succeeds unmitigated on that hardware.
#[test]
fn mitigations_track_vulnerabilities() {
    for id in CpuId::ALL {
        let model = id.model();
        let k = Kernel::boot(model.clone(), &BootParams::default());
        // PTI deployed <=> raw Meltdown works.
        let meltdown = attacks::meltdown::run_raw(model.clone()).leaked();
        assert_eq!(k.state.config.pti, meltdown, "{id}: PTI iff Meltdown");
        // verw clearing deployed <=> the CPU samples fill buffers.
        assert_eq!(k.state.config.mds_clear, model.vuln.mds, "{id}: verw iff MDS");
        // L1D flush on VM entry <=> L1TF leaks.
        let l1tf = attacks::l1tf::run(model.clone(), attacks::l1tf::L1tfSetup::StalePteHotL1)
            .leaked();
        assert_eq!(k.state.config.l1d_flush_vmentry, l1tf, "{id}: flush iff L1TF");
    }
}

/// §4.6: Spectre V1, V2 and SSB — the oldest attacks — still work on
/// every CPU, which is why their mitigations still cost something.
#[test]
fn old_attacks_remain_unfixed_everywhere() {
    use attacks::{spectre_v1, spectre_v2, ssb};
    for id in CpuId::ALL {
        assert!(
            spectre_v1::run(id.model(), spectre_v1::V1Mitigation::Off).leaked(),
            "{id}: Spectre V1"
        );
        assert!(
            spectre_v2::run(
                id.model(),
                spectre_v2::V2Dispatch::Indirect,
                spectre_v2::V2Barrier::None
            )
            .leaked(),
            "{id}: Spectre V2"
        );
        assert!(ssb::run_raw(id.model(), false).leaked(), "{id}: SSB");
    }
}

/// Figure 2's per-mitigation story: PTI and MDS slices vanish exactly on
/// the parts whose hardware fixed the underlying attacks.
#[test]
fn attribution_slices_vanish_with_hardware_fixes() {
    let fig = figure2::run(&Executor::default(), &[CpuId::Broadwell, CpuId::IceLakeServer], true)
        .expect("clean figure 2 run");
    let slice = |cpu: CpuId, name: &str| {
        fig.bars
            .iter()
            .find(|(c, _)| *c == cpu)
            .unwrap()
            .1
            .slices
            .iter()
            .find(|s| s.name.contains(name))
            .unwrap()
            .overhead
    };
    assert!(slice(CpuId::Broadwell, "Page Table") > 0.10);
    assert!(slice(CpuId::Broadwell, "MDS") > 0.10);
    assert!(slice(CpuId::IceLakeServer, "Page Table").abs() < 0.02);
    assert!(slice(CpuId::IceLakeServer, "MDS").abs() < 0.02);
}

/// Tables 9/10 summarized: eIBRS-class parts never let user-mode training
/// steer kernel speculation, while pre-Spectre parts always do (without
/// IBRS).
#[test]
fn speculation_matrix_summary() {
    let t9 = tables9and10::run(&Executor::default(), false).expect("clean probe matrix");
    for (cpu, row) in &t9.rows {
        let uk = row.iter().find(|(n, _)| n.contains("user->kernel")).unwrap().1;
        let expected = match cpu {
            CpuId::Broadwell | CpuId::SkylakeClient | CpuId::Zen | CpuId::Zen2 => {
                ProbeResult::Speculated
            }
            _ => ProbeResult::Blocked,
        };
        assert_eq!(uk, expected, "{cpu}");
    }
}

/// §6.2.2: eIBRS parts show the bimodal kernel-entry latency; the slow
/// mode correlates with a kernel-BTB flush interval of 8–20 entries.
#[test]
fn eibrs_bimodal_behaviour() {
    let b = eibrs_bimodal::run(&Executor::default(), &CpuId::CascadeLake.model(), 200)
        .expect("clean bimodal run");
    assert!(b.modes.len() >= 2);
    assert_eq!(b.slow_extra, 210);
    assert!((8..=20).contains(&b.slow_interval));
}

/// Table 1 renders with the exact paper semantics for every cell.
#[test]
fn table1_cells_from_policy_logic() {
    for id in CpuId::ALL {
        let model = id.model();
        for mit in Mitigation::TABLE1_ORDER {
            // Every cell is computable without panicking, and ✓ cells for
            // hardware-dependent rows imply the vulnerability.
            if mit.table1_cell(&model) == Some(true) {
                match mit.name() {
                    "Page Table Isolation" => assert!(model.vuln.meltdown, "{id}"),
                    "Flush CPU Buffers" => assert!(model.vuln.mds, "{id}"),
                    "PTE Inversion" | "Flush L1 Cache" => assert!(model.vuln.l1tf, "{id}"),
                    _ => {}
                }
            }
        }
    }
}

/// The Octane-like suite is *correct* under every mitigation combination
/// on a representative CPU — the overhead numbers mean something.
#[test]
fn octane_correct_under_all_mitigation_combinations() {
    let model = CpuId::Zen2.model();
    let params = BootParams::default();
    for bench in [OctaneBench::Richards, OctaneBench::Splay, OctaneBench::NavierStokes] {
        for im in [false, true] {
            for og in [false, true] {
                for other in [false, true] {
                    let mits = JsMitigations {
                        index_masking: im,
                        object_guards: og,
                        other_js: other,
                    };
                    let out = bench.build().run_jit(&model, &params, mits);
                    assert_eq!(
                        out.result,
                        bench.reference(),
                        "{} under {mits:?}",
                        bench.name()
                    );
                }
            }
        }
    }
}
