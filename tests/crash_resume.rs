//! The kill-and-resume proof: SIGKILL a real `regen` process mid-sweep
//! at seeded points, fsck the journal it left behind, resume, and
//! demand the final artifact is byte-identical to the committed golden
//! file. This is the crash-safety contract end to end — journal v2
//! checksums, torn-tail classification, `regen fsck` quarantine +
//! compaction, and atomic (`tmp + fsync + rename`) artifact writes —
//! exercised through the actual binary, not in-process shims.
//!
//! Also proves the panic-isolation acceptance criterion: a sweep whose
//! compute closures panic permanently still renders every artifact
//! (degraded, `†`-bridged) and exits 1 — never a process abort.
//!
//! Set `REGEN_CRASH_SEED` to vary the kill points (CI loops over
//! several seeds).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

/// Locates the `regen` binary next to this test's own executable
/// (`target/<profile>/deps/crash_resume-*` -> `target/<profile>/regen`),
/// building it if a partial build got here first. Root-package tests
/// don't get `CARGO_BIN_EXE_regen` — that env var only exists for the
/// crate that owns the binary.
fn regen_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary has a path");
    let profile_dir = exe
        .parent() // deps/
        .and_then(Path::parent) // target/<profile>/
        .expect("test binary lives under target/<profile>/deps");
    let bin = profile_dir.join(format!("regen{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "bench", "--bin", "regen"])
            .status()
            .expect("spawn cargo build");
        assert!(status.success(), "cargo build -p bench --bin regen failed");
    }
    assert!(bin.exists(), "regen binary at {}", bin.display());
    bin
}

/// Scratch directory unique to (test, process).
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("regen-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The same xorshift64* generator the other property tests use.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn crash_seed() -> u64 {
    std::env::var("REGEN_CRASH_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

#[test]
fn sigkill_fsck_resume_reproduces_the_golden_file() {
    let bin = regen_binary();
    let dir = scratch("kill");
    let journal = dir.join("run.jsonl");
    let out_path = dir.join("final.txt");
    let mut rng = Rng::new(crash_seed());

    // Three progressive kills on ONE journal: each round the child
    // replays everything already journaled, gets a little further, and
    // is killed at a seeded instant mid-sweep. Work is never lost, so
    // the whole chain costs roughly one full sweep.
    for round in 0..3 {
        let mut child = Command::new(&bin)
            .args(["--keep-going", "--resume"])
            .arg(&journal)
            .arg("--out")
            .arg(&out_path)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn regen");
        // 200ms..2.2s after launch: early kills land mid-plan, late
        // kills land between plans — both must be survivable.
        let delay = Duration::from_millis(200 + rng.next() % 2000);
        std::thread::sleep(delay);
        // SIGKILL: no atexit handlers, no flush, no unwinding. If the
        // sweep already finished, the exit status is real; otherwise it
        // must report the kill signal.
        child.kill().expect("SIGKILL regen");
        let status = child.wait().expect("reap regen");
        assert!(
            !status.success() || out_path.exists(),
            "round {round}: a successful exit implies the artifact was written"
        );

        // fsck whatever the kill left: any severity is legal (clean,
        // torn tail, or a tear that mimics corruption), but fsck must
        // terminate, compact, and leave a journal a second fsck calls
        // clean.
        let fsck = Command::new(&bin)
            .arg("fsck")
            .arg(&journal)
            .output()
            .expect("spawn regen fsck");
        assert!(
            matches!(fsck.status.code(), Some(0) | Some(1) | Some(2)),
            "round {round}: fsck exits by severity, got {:?}",
            fsck.status.code()
        );
        let refsck = Command::new(&bin)
            .arg("fsck")
            .arg(&journal)
            .output()
            .expect("spawn regen fsck again");
        assert_eq!(
            refsck.status.code(),
            Some(0),
            "round {round}: a compacted journal must verify clean: {}",
            String::from_utf8_lossy(&refsck.stderr)
        );
    }

    // Final, uninterrupted run: resumes from the surviving journal and
    // must complete cleanly.
    let out = Command::new(&bin)
        .args(["--keep-going", "--resume"])
        .arg(&journal)
        .arg("--out")
        .arg(&out_path)
        .stdout(Stdio::null())
        .output()
        .expect("spawn final regen");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "final resumed run is clean:\n{stderr}");

    // The acceptance bar: byte identity with the committed golden file.
    // Replayed journal values went through f64 Display/parse, so any
    // rounding drift or seed mismatch shows up here as a diff.
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/results_regenerated.txt");
    let golden = std::fs::read(golden_path).expect("committed golden file exists");
    let produced = std::fs::read(&out_path).expect("final artifact written");
    assert!(
        produced == golden,
        "resumed artifact must be byte-identical to the golden file \
         (first divergence at byte {})",
        produced
            .iter()
            .zip(golden.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| produced.len().min(golden.len()))
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn permanent_panics_degrade_under_the_breaker_but_every_artifact_renders() {
    let bin = regen_binary();
    // The first three middle cells of every successive-disable lattice
    // panic forever (bracket-exact config substrings, so the `default`
    // and `mitigations=off` anchors — and every other experiment's
    // cells — are untouched). The harness must catch each unwind, the
    // circuit breaker must trip after 3 consecutive panicked cells and
    // degrade the remaining middles unrun (anchors are critical cells
    // and still run), and the sweep must still render EVERY artifact —
    // Figure 2 degraded with `†` bridges, the rest clean — and exit 1.
    // A SIGABRT (panic reaching the process boundary) fails the status
    // assertions below. Serial (`--jobs 1`) keeps the streak
    // deterministic: a clean cell finishing mid-trip would reset it.
    let inject = "cell=[nopti]:kind=panic:times=forever,\
                  cell=[nopti mds=off]:kind=panic:times=forever,\
                  cell=[nopti mds=off nospectre_v2]:kind=panic:times=forever";
    let out = Command::new(&bin)
        .args([
            "--quick",
            "--keep-going",
            "--retries",
            "2",
            "--jobs",
            "1",
            "--inject",
            inject,
        ])
        .output()
        .expect("spawn regen");
    assert_eq!(
        out.status.code(),
        Some(1),
        "degraded sweep exits 1, never aborts; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Every artifact block rendered — nothing was cut short.
    for caption in ["Table 1", "Table 2", "Figure 2", "Figure 3", "Table 9", "Table 10"] {
        assert!(stdout.contains(caption), "{caption} must render:\n{stderr}");
    }
    assert!(stdout.contains('†'), "figure2's dead cells are bridged:\n{stdout}");
    assert!(stderr.contains("panic(s) caught"), "summary counts panics:\n{stderr}");
    assert!(
        stderr.contains("degraded by the panic circuit breaker"),
        "summary counts breaker skips:\n{stderr}"
    );
    assert!(stderr.contains("DEGRADED"), "figure2 reported degraded:\n{stderr}");
}
