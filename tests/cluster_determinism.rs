//! Cluster determinism: a sharded `regend` deployment — N shard
//! servers behind a forwarding proxy — must hand every client the
//! exact bytes a serial in-process sweep produces, with faults on the
//! proxy↔shard network hop, and with a shard lost mid-burst and later
//! resumed from its journal.
//!
//! Everything here is in-process (threads + loopback TCP, ports
//! chosen by the kernel) so drains are deterministic; the CI
//! `cluster-soak` job covers the spawned-process path with a real
//! SIGKILL.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use bench::client::{http_get_retrying, HttpResponse};
use bench::{render_artifact_block, run_regen, Artifact, RegenOptions};
use serve::{
    boot_shards, percent_encode_path, proxy_config, HashRing, Server, ServerConfig, ServerHandle,
    ShardInstance,
};
use spectrebench::{NetFaultKind, NetFaultPlan};

/// Scratch directory unique to (test, process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regend-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Boots one server (shard, proxy, or plain) on a free port.
fn boot(cfg: ServerConfig) -> (String, ServerHandle, std::thread::JoinHandle<serve::RunSummary>) {
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".to_string(), ..cfg })
        .expect("bind to a free port");
    let base = format!("http://{}", server.local_addr());
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("event loop"));
    (base, handle, join)
}

/// GET with retries and a cold-compute-sized timeout.
fn get(base: &str, path: &str) -> HttpResponse {
    http_get_retrying(&format!("{base}{path}"), Duration::from_secs(300), 10)
        .unwrap_or_else(|e| panic!("GET {path}: {e}"))
}

/// The serial oracle: one in-process sweep, rendered per artifact.
fn serial_blocks(artifacts: &[Artifact], quick: bool) -> Vec<String> {
    let report = run_regen(&RegenOptions {
        artifacts: artifacts.to_vec(),
        quick,
        keep_going: true,
        ..RegenOptions::default()
    })
    .expect("serial sweep");
    report.results.iter().map(render_artifact_block).collect()
}

/// Reads one counter out of a Prometheus-style exposition, summed over
/// labels.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.split_once(' '))
        .filter(|(k, _)| *k == name || k.starts_with(&format!("{name}{{")))
        .map(|(_, v)| v.trim().parse::<f64>().unwrap_or(0.0))
        .sum()
}

/// Polls a metric on `base` until it reaches `min` or the deadline.
fn await_metric(base: &str, name: &str, min: f64, deadline: Duration) -> f64 {
    let start = std::time::Instant::now();
    loop {
        let v = metric(&get(base, "/metrics").text(), name);
        if v >= min || start.elapsed() > deadline {
            return v;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Table 1's per-CPU cell keys (one per catalog microarchitecture);
/// routed across shards by content key, and computable on demand from
/// either side of a failover.
fn cell_keys() -> Vec<String> {
    [
        "Broadwell",
        "Skylake Client",
        "Cascade Lake",
        "Ice Lake Client",
        "Ice Lake Server",
        "Zen",
        "Zen 2",
        "Zen 3",
    ]
    .iter()
    .map(|m| format!("{m}/mitigations"))
    .collect()
}

fn cell_path(key: &str) -> String {
    format!("/cell/table1/{}?seed=0", percent_encode_path(key))
}

fn drain_all(shards: Vec<ShardInstance>) {
    for s in shards {
        s.handle.drain();
        let _ = s.join.join();
    }
}

/// The tentpole guarantee: 64 concurrent clients bursting against a
/// 4-shard cluster observe bytes identical to a serial sweep; the
/// reassembled `/results` document matches too; the proxy actually
/// fetched from shards (this was not one server wearing a trench
/// coat); and `/healthz` reports the full shard roster healthy.
#[test]
fn sixty_four_clients_against_four_shards_match_a_serial_sweep() {
    const CLIENTS: usize = 64;
    let artifacts = Artifact::ALL;
    let expect = serial_blocks(&artifacts, true);
    let expected_results: String = expect.concat();

    let base_cfg = ServerConfig {
        quick: true,
        workers: 2,
        queue_capacity: 2 * CLIENTS * artifacts.len(),
        probe_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let shards = boot_shards(&base_cfg, 4).expect("boot shard tier");
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();
    let (proxy, handle, join) = boot(proxy_config(&base_cfg, addrs));

    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (proxy, expect, mismatches) = (&proxy, &expect, &mismatches);
            s.spawn(move || {
                for i in 0..artifacts.len() {
                    let idx = (i + client) % artifacts.len();
                    let a = artifacts[idx];
                    let r = get(proxy, &format!("/artifact/{}", a.name()));
                    assert_eq!(r.status, 200, "client {client}: {}", a.name());
                    assert!(
                        r.header("x-regend-shard-degraded").is_none(),
                        "no failover on a healthy cluster ({})",
                        a.name()
                    );
                    if r.text() != expect[idx] {
                        mismatches.fetch_add(1, Ordering::SeqCst);
                        eprintln!("client {client}: byte mismatch on {}", a.name());
                    }
                }
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::SeqCst), 0, "every client sees the serial bytes");

    let results = get(&proxy, "/results");
    assert_eq!(results.status, 200);
    assert_eq!(
        results.text(),
        expected_results,
        "/results reassembled from shard fan-out is the serial document"
    );

    // The proxy's own telemetry: it really fetched from shards, and
    // /healthz names all four, healthy, with fresh probe ages.
    let metrics = get(&proxy, "/metrics").text();
    assert!(
        metric(&metrics, "regend_shard_fetches_total") >= artifacts.len() as f64,
        "at least one owner fetch per artifact"
    );
    assert_eq!(metric(&metrics, "regend_shard_failovers_total"), 0.0);
    let health = get(&proxy, "/healthz").text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    for shard in 0..4 {
        assert!(health.contains(&format!("\"shard\":{shard}")), "{health}");
    }
    assert_eq!(health.matches("\"state\":\"healthy\"").count(), 4, "{health}");

    handle.drain();
    let summary = join.join().expect("proxy thread");
    assert_eq!(summary.rejected, 0, "queue was sized for the burst");
    drain_all(shards);
}

/// Seeded network faults on every proxy↔shard hop: a targeted
/// first-attempt fault on each distinct hop plus background noise on
/// later attempts. Retry and failover must keep every response at 200
/// with serial bytes — the CRC check turns wire damage into detected
/// transient failures, so no corruption can reach a client.
#[test]
fn bursts_under_net_faults_on_every_hop_stay_byte_identical() {
    const CLIENTS: usize = 16;
    let artifacts = [Artifact::Table1, Artifact::Table2, Artifact::Table9, Artifact::Table10];
    let expect = serial_blocks(&artifacts, true);

    // Ground truth for cell bodies: a plain single server (already
    // pinned against the sweep by tests/serve_determinism.rs).
    let keys = cell_keys();
    let (plain, plain_handle, plain_join) = boot(ServerConfig {
        quick: true,
        workers: 2,
        ..ServerConfig::default()
    });
    let cell_expect: Vec<String> =
        keys.iter().map(|k| get(&plain, &cell_path(k)).text()).collect();
    plain_handle.drain();
    plain_join.join().expect("plain server");

    // Every distinct hop takes a drop on its first attempt; later
    // attempts roll seeded dice over all four fault kinds. Both plans
    // ride the same deterministic (seed, hop, attempt) hashing.
    let plan = NetFaultPlan::seeded(0xC1A5_7E12, 0.2)
        .fail_hop(None, "", NetFaultKind::Drop, Some(1));
    let base_cfg = ServerConfig {
        quick: true,
        workers: 2,
        queue_capacity: 4 * CLIENTS * keys.len(),
        probe_interval: Duration::from_millis(50),
        fetch_attempts: 3,
        ..ServerConfig::default()
    };
    let shards = boot_shards(&base_cfg, 4).expect("boot shard tier");
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();
    let mut proxy_cfg = proxy_config(&base_cfg, addrs);
    proxy_cfg.net_inject = Some(plan);
    let (proxy, handle, join) = boot(proxy_cfg);

    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (proxy, expect, keys, cell_expect, mismatches) =
                (&proxy, &expect, &keys, &cell_expect, &mismatches);
            s.spawn(move || {
                for (i, a) in artifacts.iter().enumerate() {
                    let r = get(proxy, &format!("/artifact/{}", a.name()));
                    assert_eq!(r.status, 200, "client {client}: {}", a.name());
                    if r.text() != expect[i] {
                        mismatches.fetch_add(1, Ordering::SeqCst);
                    }
                }
                // Cells are never cached on the proxy, so every one of
                // these crosses the faulted wire.
                for (i, key) in keys.iter().enumerate() {
                    let r = get(proxy, &cell_path(key));
                    assert_eq!(r.status, 200, "client {client}: cell {key}");
                    if r.text() != cell_expect[i] {
                        mismatches.fetch_add(1, Ordering::SeqCst);
                        eprintln!("client {client}: cell mismatch on {key}");
                    }
                }
            });
        }
    });
    assert_eq!(
        mismatches.load(Ordering::SeqCst),
        0,
        "faults on the shard hop never surface as different bytes"
    );

    let metrics = get(&proxy, "/metrics").text();
    assert!(
        metric(&metrics, "regend_net_faults_injected_total") >= keys.len() as f64,
        "the plan actually fired on the hops"
    );

    handle.drain();
    join.join().expect("proxy thread");
    drain_all(shards);
}

/// Shard loss and resume: one shard of two goes away mid-burst — every
/// in-burst response still carries serial bytes (failover recomputes
/// locally, stamped with degraded markers); the prober marks the shard
/// down; and a replacement booted from the lost shard's journal
/// replays its cells instead of recomputing, behind a fresh proxy,
/// still byte-identical.
#[test]
fn shard_loss_mid_burst_fails_over_and_resumes_from_the_journal() {
    const CLIENTS: usize = 16;
    let dir = scratch("cluster-journal");
    let keys = cell_keys();

    let base_cfg = ServerConfig {
        quick: true,
        workers: 2,
        queue_capacity: 4 * CLIENTS * keys.len(),
        journal: Some(dir.join("journal.jsonl")),
        probe_interval: Duration::from_millis(25),
        fetch_attempts: 2,
        ..ServerConfig::default()
    };
    let mut shards = boot_shards(&base_cfg, 2).expect("boot shard tier");
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();
    let (proxy, handle, join) = boot(proxy_config(&base_cfg, addrs.clone()));

    // Phase 1: warm pass. Each cell computes on its owning shard (and
    // lands in that shard's journal); the bodies are the ground truth
    // for everything after.
    let expect: Vec<String> = keys.iter().map(|k| get(&proxy, &cell_path(k)).text()).collect();

    // Kill the shard that owns the first key, so the burst is
    // guaranteed to cross the hole. (In-process stand-in for SIGKILL;
    // the CI soak job kills a real process.)
    let victim = HashRing::new(2).owner(&keys[0]);
    let lost = shards.remove(victim);
    lost.handle.drain();
    let _ = lost.join.join();

    // Phase 2: burst across the hole. Every response must still be the
    // phase-1 bytes; requests that needed the dead shard fail over to
    // the proxy's local executor and say so on the wire.
    let failovers = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (proxy, keys, expect, failovers) = (&proxy, &keys, &expect, &failovers);
            s.spawn(move || {
                for (i, key) in keys.iter().enumerate() {
                    let r = get(proxy, &cell_path(key));
                    assert_eq!(r.status, 200, "client {client}: cell {key}");
                    assert_eq!(r.text(), expect[i], "client {client}: bytes changed after loss");
                    if r.header("x-regend-shard-degraded").is_some() {
                        failovers.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert!(
        failovers.load(Ordering::SeqCst) >= 1,
        "keys owned by the lost shard were answered via failover"
    );
    assert!(
        await_metric(&proxy, "regend_shard_failovers_total", 1.0, Duration::from_secs(10)) >= 1.0
    );
    // The prober marks the victim down (gauge 2; the survivor holds 0).
    assert!(
        await_metric(&proxy, "regend_shard_state", 2.0, Duration::from_secs(10)) >= 2.0,
        "prober never marked the lost shard down"
    );

    handle.drain();
    join.join().expect("proxy thread");

    // Resume: a replacement shard boots from the victim's journal on a
    // fresh port. Its first queries replay journalled cells instead of
    // recomputing them.
    let resumed_cfg = ServerConfig {
        journal: base_cfg.journal.as_ref().map(|p| {
            let mut os = p.clone().into_os_string();
            os.push(format!("-shard{victim}"));
            PathBuf::from(os)
        }),
        ..base_cfg.clone()
    };
    let (resumed, resumed_handle, resumed_join) = boot(resumed_cfg);
    let survivor_addr = shards[0].addr.clone();
    let resumed_addr = resumed.strip_prefix("http://").expect("base url").to_string();
    let new_addrs = if victim == 0 {
        vec![resumed_addr, survivor_addr]
    } else {
        vec![survivor_addr, resumed_addr]
    };
    let (proxy2, handle2, join2) = boot(proxy_config(&base_cfg, new_addrs));
    for (i, key) in keys.iter().enumerate() {
        let r = get(&proxy2, &cell_path(key));
        assert_eq!(r.status, 200, "post-resume cell {key}");
        assert_eq!(r.text(), expect[i], "post-resume bytes for {key}");
        assert!(
            r.header("x-regend-shard-degraded").is_none(),
            "no failover once the shard is back ({key})"
        );
    }
    let replayed = metric(&get(&resumed, "/metrics").text(), "regen_cells_replayed_total");
    assert!(
        replayed >= 1.0,
        "the resumed shard answered from its journal, not by recomputing"
    );

    handle2.drain();
    join2.join().expect("proxy2 thread");
    resumed_handle.drain();
    resumed_join.join().expect("resumed shard");
    drain_all(shards);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a proxy whose rendered cache was filled from shard
/// bytes (one `/results` fetch) must still answer cells by failover
/// when the owner dies. The rendered body proves nothing about the
/// proxy's *cell* cache — an earlier build answered 404 here, because
/// cell failover asked `obtain`, which was satisfied by the
/// shard-filled rendered entry without ever running the sweep locally.
#[test]
fn cell_failover_still_computes_after_results_warmed_the_rendered_cache() {
    let keys = cell_keys();
    let base_cfg = ServerConfig {
        quick: true,
        workers: 2,
        probe_interval: Duration::from_millis(25),
        fetch_attempts: 2,
        ..ServerConfig::default()
    };
    let mut shards = boot_shards(&base_cfg, 2).expect("boot shard tier");
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();
    let (proxy, handle, join) = boot(proxy_config(&base_cfg, addrs));

    // Ground truth for the cells, fetched through the healthy cluster
    // (these hops warm nothing on the proxy: cells pass through).
    let expect: Vec<String> = keys.iter().map(|k| get(&proxy, &cell_path(k)).text()).collect();
    // THE trigger: /results fills the proxy's rendered cache for every
    // artifact from shard bytes, without a single local cell value.
    assert_eq!(get(&proxy, "/results").status, 200);

    let victim = HashRing::new(2).owner(&keys[0]);
    let lost = shards.remove(victim);
    lost.handle.drain();
    let _ = lost.join.join();

    for (i, key) in keys.iter().enumerate() {
        let r = get(&proxy, &cell_path(key));
        assert_eq!(r.status, 200, "cell {key} after owner loss");
        assert_eq!(r.text(), expect[i], "cell {key} bytes after owner loss");
    }
    let metrics = get(&proxy, "/metrics").text();
    assert!(
        metric(&metrics, "regend_shard_failovers_total") >= 1.0,
        "the lost shard's keys were answered by local recompute"
    );

    handle.drain();
    join.join().expect("proxy thread");
    drain_all(shards);
}

/// The seeded net-fault plan itself is deterministic: the same (seed,
/// hop, attempt) triple decides the same way in two independently
/// parsed plans — the property the campaign baseline rests on.
#[test]
fn net_fault_spec_round_trip_is_deterministic() {
    let a = NetFaultPlan::parse_spec("seed=7:prob=0.3").expect("spec");
    let b = NetFaultPlan::parse_spec("seed=7:prob=0.3").expect("spec");
    for attempt in 0..50u32 {
        for shard in 0..4usize {
            assert_eq!(
                a.inject(shard, "/cell/table1/x", attempt),
                b.inject(shard, "/cell/table1/x", attempt)
            );
        }
    }
}
