//! The plan/executor determinism guarantee: rendered artifacts are
//! byte-identical for any `--jobs` value, with or without injected
//! transient faults. Noise is applied in each driver's reduce step,
//! seeded from plan indices — never from scheduling order or retry
//! counts — so the worker pool can interleave cells arbitrarily.

use std::sync::Arc;

use cpu_models::CpuId;
use spectrebench::experiments::{figure2, tables9and10};
use spectrebench::{EventBus, Executor, FaultKind, FaultPlan, Harness, RetryPolicy, VirtualClock};

fn exec_with_jobs(jobs: usize) -> Executor {
    Executor::new(Harness::new().with_retry(RetryPolicy::immediate(4))).with_jobs(jobs)
}

fn render_all(exec: &Executor) -> String {
    let fig2 = figure2::run(exec, &CpuId::ALL, true).expect("figure 2");
    let t9 = tables9and10::run(exec, false).expect("table 9");
    let t10 = tables9and10::run(exec, true).expect("table 10");
    format!(
        "{}\n{}\n{}",
        figure2::render(&fig2),
        tables9and10::render(&t9),
        tables9and10::render(&t10)
    )
}

#[test]
fn rendered_output_is_identical_for_any_job_count() {
    let serial = render_all(&exec_with_jobs(1));
    for jobs in [2, 8] {
        let parallel = render_all(&exec_with_jobs(jobs));
        assert_eq!(serial, parallel, "jobs={jobs} must render byte-identically");
    }
}

#[test]
fn rendered_output_is_identical_with_tracing_attached() {
    // The event bus is observational only: attaching it (system or
    // virtual clock) must not perturb a single rendered byte, at any
    // worker count.
    let silent = render_all(&exec_with_jobs(1));
    for jobs in [1, 8] {
        let bus = Arc::new(EventBus::with_clock(Arc::new(VirtualClock::new())));
        let exec = Executor::new(Harness::new().with_retry(RetryPolicy::immediate(4)))
            .with_jobs(jobs)
            .with_obs(Arc::clone(&bus));
        let traced = render_all(&exec);
        assert_eq!(silent, traced, "jobs={jobs} with tracing attached");
        assert!(!bus.is_empty(), "jobs={jobs}: the sweep must have been recorded");
    }
}

#[test]
fn rendered_output_survives_transient_faults_at_any_job_count() {
    let clean = render_all(&exec_with_jobs(1));
    // Transient faults (fewer than the retry limit) on cells spread
    // across the three artifacts: the worker pool retries them and the
    // reduce step reproduces the exact clean values.
    let plan = || {
        FaultPlan::new()
            .fail_cell("figure2/Broadwell/getpid/[nopti]", FaultKind::SimFault, Some(2))
            .fail_cell("figure2/Zen 3/getpid", FaultKind::Timeout, Some(1))
            .fail_cell("table9/Cascade Lake", FaultKind::SimFault, Some(2))
            .fail_cell("table10/Zen 2", FaultKind::Timeout, Some(1))
    };
    for jobs in [1, 8] {
        let exec = Executor::new(
            Harness::new().with_retry(RetryPolicy::immediate(4)).with_plan(plan()),
        )
        .with_jobs(jobs);
        let faulted = render_all(&exec);
        assert_eq!(clean, faulted, "jobs={jobs} with transient faults");
        let stats = exec.stats();
        assert!(stats.faults_injected >= 4, "jobs={jobs}: {stats:?}");
        assert!(stats.retries >= 4, "jobs={jobs}: {stats:?}");
    }
}
