//! Fault-campaign proofs: the coordinate space is duplicate-free and
//! deterministic, stratified samples are seed-stable subsets, a full
//! campaign over a small experiment classifies every coordinate with
//! zero silent corruption (byte-identical report for a fixed seed),
//! and a campaign SIGKILLed mid-flight resumes from its journal
//! instead of starting over.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use bench::campaign::{run_campaign, CampaignOptions};
use bench::Artifact;
use spectrebench::campaign::{enumerate_coordinates, stratified_sample, Coordinate, SurvivalClass};
use spectrebench::obs::metrics::prometheus_text;
use spectrebench::{EventBus, FaultKind};

/// Locates the `regen` binary next to this test's own executable,
/// building it if a partial build got here first (same contract as
/// tests/crash_resume.rs).
fn regen_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary has a path");
    let profile_dir = exe
        .parent() // deps/
        .and_then(Path::parent) // target/<profile>/
        .expect("test binary lives under target/<profile>/deps");
    let bin = profile_dir.join(format!("regen{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let status = Command::new(env!("CARGO"))
            .args(["build", "-p", "bench", "--bin", "regen"])
            .status()
            .expect("spawn cargo build");
        assert!(status.success(), "cargo build -p bench --bin regen failed");
    }
    assert!(bin.exists(), "regen binary at {}", bin.display());
    bin
}

/// Scratch directory unique to (test, process).
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("regen-campaign-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The same xorshift64* generator the other property tests use.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn coordinate_space_is_duplicate_free_and_deterministic() {
    let mut rng = Rng::new(0xCA3);
    for round in 0..25 {
        // Random cell census (with deliberate duplicates) and retry
        // budget.
        let n_cells = 1 + (rng.next() % 12) as usize;
        let retries = 1 + (rng.next() % 4) as u32;
        let mut cells: Vec<(String, u64)> = (0..n_cells)
            .map(|i| (format!("cpu{}/w{}/[c]", rng.next() % 6, i % 4), rng.next() % 3))
            .collect();
        let dup = cells[(rng.next() as usize) % cells.len()].clone();
        cells.push(dup);

        let space = enumerate_coordinates(&cells, retries);
        let distinct: HashSet<(String, u64)> = cells.iter().cloned().collect();
        // Size law: compute kinds get `retries` attempt depths, the two
        // I/O kinds one each.
        let compute = FaultKind::ALL.iter().filter(|k| !k.is_io()).count();
        let io = FaultKind::ALL.len() - compute;
        assert_eq!(
            space.len(),
            distinct.len() * (compute * retries as usize + io),
            "round {round}"
        );
        let ids: HashSet<String> = space.iter().map(Coordinate::id).collect();
        assert_eq!(ids.len(), space.len(), "round {round}: duplicate-free");
        assert_eq!(
            space,
            enumerate_coordinates(&cells, retries),
            "round {round}: deterministic"
        );
        // Ids round-trip, so the campaign journal can name any point.
        for c in &space {
            assert_eq!(Coordinate::parse_id(&c.id()).as_ref(), Some(c), "round {round}");
        }
    }
}

#[test]
fn stratified_sample_is_seed_stable_and_a_subset() {
    let mut rng = Rng::new(0x5A11);
    let cells: Vec<(String, u64)> =
        (0..15).map(|i| (format!("cpu{i}/w/[c]"), 0)).collect();
    let space = enumerate_coordinates(&cells, 3);
    let all_ids: HashSet<String> = space.iter().map(Coordinate::id).collect();
    for _ in 0..25 {
        let n = 1 + (rng.next() as usize) % (space.len() + 20);
        let seed = rng.next();
        let sample = stratified_sample(&space, n, seed);
        assert_eq!(sample.len(), n.min(space.len()), "exact quota");
        assert_eq!(sample, stratified_sample(&space, n, seed), "seed-stable");
        assert!(
            sample.iter().all(|c| all_ids.contains(&c.id())),
            "subset of the full space"
        );
        // Enumeration order is preserved, so sampled reports read like
        // filtered full reports.
        let positions: Vec<usize> = sample
            .iter()
            .map(|c| space.iter().position(|s| s == c).expect("member"))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "order preserved");
        // Every fault kind keeps representation once the sample is at
        // least one per stratum.
        if n >= FaultKind::ALL.len() {
            for kind in FaultKind::ALL {
                assert!(sample.iter().any(|c| c.kind == kind), "stratum {kind} covered");
            }
        }
    }
}

#[test]
fn full_campaign_classifies_every_coordinate_with_no_silent_corruption() {
    let dir = scratch("full");
    let bus = Arc::new(EventBus::new());
    let opts = CampaignOptions {
        artifacts: vec![Artifact::Table1],
        quick: true,
        retries: 2,
        dir: dir.join("a"),
        report_out: Some(dir.join("report-a.json")),
        obs: Some(Arc::clone(&bus)),
        ..CampaignOptions::default()
    };
    let run = run_campaign(&opts).expect("campaign completes");

    // Every coordinate of the enumerated space is classified, exactly
    // once, in enumeration order.
    assert_eq!(run.report.outcomes.len(), run.report.space, "full enumeration");
    assert_eq!(run.executed, run.report.outcomes.len());
    assert_eq!(run.replayed, 0);
    let ids: Vec<String> = run.report.outcomes.iter().map(|o| o.coord.id()).collect();
    let unique: HashSet<&String> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len(), "each coordinate classified once");

    // The standing invariant: nothing corrupts silently.
    assert!(
        run.report.silent_corruptions().is_empty(),
        "zero silent-corruption rows:\n{}",
        run.report.render_matrix()
    );
    // Every fault the plan was asked to deliver actually fired.
    assert!(
        run.report.outcomes.iter().all(|o| o.faults_injected > 0),
        "every coordinate injected at least one fault"
    );
    // The attempt axis means retry depth is really explored: shallow
    // compute faults absorb, budget-exhausting ones fail loud.
    for o in &run.report.outcomes {
        if !o.coord.kind.is_io() {
            let expect = if o.coord.attempt + 1 < opts.retries {
                SurvivalClass::Absorbed
            } else {
                SurvivalClass::FailedLoud
            };
            assert_eq!(o.class, expect, "{}", o.coord.id());
        } else {
            assert_eq!(o.class, SurvivalClass::Absorbed, "{}", o.coord.id());
        }
    }

    // The campaign surfaced through the metrics exposition.
    let text = prometheus_text(&bus.snapshot(), &run.stats);
    assert!(text.contains("regen_campaign_runs_total 1"), "{text}");
    let absorbed =
        run.report.outcomes.iter().filter(|o| o.class == SurvivalClass::Absorbed).count();
    assert!(
        text.contains(&format!(
            "regen_campaign_coordinates_total{{class=\"absorbed\"}} {absorbed}"
        )),
        "{text}"
    );

    // Byte-determinism: a second campaign with identical inputs renders
    // an identical report.
    let rerun = run_campaign(&CampaignOptions {
        dir: dir.join("b"),
        report_out: Some(dir.join("report-b.json")),
        obs: None,
        ..opts
    })
    .expect("second campaign completes");
    assert_eq!(
        run.report.to_json(),
        rerun.report.to_json(),
        "same inputs, byte-identical report"
    );
    let a = std::fs::read(dir.join("report-a.json")).expect("report a written");
    let b = std::fs::read(dir.join("report-b.json")).expect("report b written");
    assert_eq!(a, b, "written reports byte-identical");
    assert_eq!(a, run.report.to_json().into_bytes(), "file matches in-memory render");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampled_campaign_is_seed_stable_and_exit_clean() {
    let dir = scratch("sampled");
    let opts = CampaignOptions {
        artifacts: vec![Artifact::Table1],
        quick: true,
        retries: 2,
        sample: Some(18),
        seed: 42,
        dir: dir.join("a"),
        ..CampaignOptions::default()
    };
    let run = run_campaign(&opts).expect("sampled campaign completes");
    assert_eq!(run.report.outcomes.len(), 18);
    assert!(run.report.outcomes.len() < run.report.space, "a strict subset");
    assert!(run.report.silent_corruptions().is_empty());
    let rerun = run_campaign(&CampaignOptions { dir: dir.join("b"), ..opts })
        .expect("re-run completes");
    assert_eq!(run.report.to_json(), rerun.report.to_json(), "seed-stable");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_survives_sigkill_and_resumes_from_its_journal() {
    let bin = regen_binary();
    let dir = scratch("kill");
    let report_path = dir.join("report.json");
    let campaign_args = |resume: bool| {
        let mut v = vec![
            "campaign".to_string(),
            "--quick".to_string(),
            "--retries".to_string(),
            "2".to_string(),
            "--dir".to_string(),
            dir.to_string_lossy().into_owned(),
            "--report".to_string(),
            report_path.to_string_lossy().into_owned(),
            "table1".to_string(),
        ];
        if resume {
            v.push("--resume".to_string());
        }
        v
    };

    // Start a full campaign and SIGKILL it mid-flight. The kill may
    // land before, during, or after the reference sweep — all must be
    // survivable.
    let mut child = Command::new(&bin)
        .args(campaign_args(false))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn regen campaign");
    std::thread::sleep(Duration::from_millis(400));
    child.kill().expect("SIGKILL regen campaign");
    let _ = child.wait().expect("reap regen campaign");

    // Resume: verdicts already journaled replay; the rest execute. The
    // resumed campaign must finish clean with the complete report.
    let out = Command::new(&bin)
        .args(campaign_args(true))
        .output()
        .expect("spawn resumed campaign");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resumed campaign exits clean:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no silent corruption"),
        "matrix reports the invariant:\n{stdout}"
    );
    // 8 table1 cells x (4 compute kinds x 2 attempts + 2 io kinds).
    let report = std::fs::read_to_string(&report_path).expect("report written");
    assert_eq!(report.matches("\"coord\":").count(), 80, "every coordinate classified");
    assert!(report.contains("\"silent-corruption\":0"), "summary is all clear");

    // A second resume replays everything and re-renders the same
    // report bytes: the journal is the source of truth.
    let again = Command::new(&bin)
        .args(campaign_args(true))
        .output()
        .expect("spawn second resume");
    assert_eq!(again.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&again.stderr);
    assert!(
        stderr.contains("(0 executed now, 80 replayed"),
        "fully replayed from the journal:\n{stderr}"
    );
    let report_again = std::fs::read_to_string(&report_path).expect("report rewritten");
    assert_eq!(report, report_again, "replayed report is byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
}
