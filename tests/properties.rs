//! Property-based tests (proptest) over the core invariants:
//!
//! * architectural determinism: mitigations may change *timing* and
//!   microarchitectural state, but never computed results;
//! * the JIT agrees with the reference interpreter on randomly generated
//!   bytecode programs, under random mitigation sets;
//! * transient windows never commit architectural state;
//! * statistics invariants (CI shrinks, geomean bounds).

use js_engine::{Engine, FunctionBuilder, JsMitigations, Op};
use proptest::prelude::*;
use sim_kernel::BootParams;
use spectrebench::stats::{geomean, Accumulator, NoiseModel};
use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::ProgramBuilder;

// ---------------------------------------------------------------------
// Machine-level properties.
// ---------------------------------------------------------------------

/// A tiny random straight-line program over R0–R5 plus memory in a fixed
/// arena, ending in Halt.
#[derive(Debug, Clone)]
enum RandOp {
    MovImm(u8, u32),
    Add(u8, u8),
    Sub(u8, u8),
    Mul(u8, u8),
    Xor(u8, u8),
    Shl(u8, u8),
    Store(u8, u16),
    Load(u8, u16),
    CmpJump(u8, u32),
}

fn rand_op() -> impl Strategy<Value = RandOp> {
    prop_oneof![
        (0u8..6, any::<u32>()).prop_map(|(r, v)| RandOp::MovImm(r, v)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| RandOp::Add(a, b)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| RandOp::Sub(a, b)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| RandOp::Mul(a, b)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| RandOp::Xor(a, b)),
        (0u8..6, 0u8..16).prop_map(|(a, k)| RandOp::Shl(a, k)),
        (0u8..6, 0u16..512).prop_map(|(r, o)| RandOp::Store(r, o * 8)),
        (0u8..6, 0u16..512).prop_map(|(r, o)| RandOp::Load(r, o * 8)),
        (0u8..6, any::<u32>()).prop_map(|(r, v)| RandOp::CmpJump(r, v)),
    ]
}

fn build_machine(model: CpuModel, ops: &[RandOp]) -> Machine {
    let mut m = Machine::new(model);
    let mut pt = PageTable::new();
    pt.map_range(0x10_0000, 0x100, 16, Pte::user(0));
    pt.map_range(0x20_0000 - 0x4000, 0x300, 4, Pte::user(0));
    let t = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(t, 0, false)));
    m.set_reg(Reg::SP, 0x20_0000 - 64);
    m.mode = PrivMode::User;

    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R7, 0x10_0000); // arena base
    for op in ops {
        let r = |i: &u8| Reg::from_index(*i as usize);
        match op {
            RandOp::MovImm(d, v) => {
                b.mov_imm(r(d), *v as u64);
            }
            RandOp::Add(d, s) => {
                b.push(Inst::Add(r(d), r(s)));
            }
            RandOp::Sub(d, s) => {
                b.push(Inst::Sub(r(d), r(s)));
            }
            RandOp::Mul(d, s) => {
                b.push(Inst::Mul(r(d), r(s)));
            }
            RandOp::Xor(d, s) => {
                b.push(Inst::Xor(r(d), r(s)));
            }
            RandOp::Shl(d, k) => {
                b.push(Inst::Shl(r(d), *k));
            }
            RandOp::Store(s, off) => {
                b.push(Inst::Store {
                    src: r(s),
                    base: Reg::R7,
                    offset: *off as i64,
                    width: Width::B8,
                });
            }
            RandOp::Load(d, off) => {
                b.push(Inst::Load {
                    dst: r(d),
                    base: Reg::R7,
                    offset: *off as i64,
                    width: Width::B8,
                });
            }
            RandOp::CmpJump(a, v) => {
                // A short forward conditional skip over one nop: exercises
                // the predictor + transient path without changing results.
                let skip = b.new_label();
                b.cmp_imm(r(a), *v as u64);
                b.jcc(Cond::Below, skip);
                b.push(Inst::Nop);
                b.bind(skip);
            }
        }
    }
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    m
}

fn final_regs(model: CpuModel, ops: &[RandOp]) -> [u64; 16] {
    let mut m = build_machine(model, ops);
    m.run(&mut NoEnv, 1_000_000).expect("random program halts");
    m.regs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The architectural result of a program is identical on every CPU
    /// model: speculation, SSBD, history-tagged BTBs etc. only change
    /// timing and microarchitectural state.
    #[test]
    fn architectural_results_are_model_independent(ops in prop::collection::vec(rand_op(), 1..40)) {
        let reference = final_regs(cpu_models::broadwell(), &ops);
        for model in [cpu_models::ice_lake_server(), cpu_models::zen3(), cpu_models::zen()] {
            prop_assert_eq!(final_regs(model, &ops), reference);
        }
    }

    /// Forcing SSBD changes cycles, never results.
    #[test]
    fn ssbd_changes_timing_not_results(ops in prop::collection::vec(rand_op(), 1..40)) {
        use uarch::isa::{msr_index, spec_ctrl};
        let plain = final_regs(cpu_models::zen3(), &ops);
        let mut m = build_machine(cpu_models::zen3(), &ops);
        m.msrs.write(msr_index::IA32_SPEC_CTRL, spec_ctrl::SSBD).unwrap();
        m.run(&mut NoEnv, 1_000_000).expect("halts");
        prop_assert_eq!(m.regs, plain);
    }

    /// The simulator is deterministic: two fresh machines running the
    /// same program produce identical registers *and* identical cycle
    /// counts (there is no hidden global state).
    #[test]
    fn fresh_runs_are_fully_deterministic(ops in prop::collection::vec(rand_op(), 1..30)) {
        let mut a = build_machine(cpu_models::skylake_client(), &ops);
        a.run(&mut NoEnv, 1_000_000).expect("halts");
        let mut b = build_machine(cpu_models::skylake_client(), &ops);
        b.run(&mut NoEnv, 1_000_000).expect("halts");
        prop_assert_eq!(a.regs, b.regs);
        prop_assert_eq!(a.cycles(), b.cycles());
    }
}

// ---------------------------------------------------------------------
// JS engine differential properties.
// ---------------------------------------------------------------------

/// Random arithmetic-only bytecode over 3 locals (always stack-balanced:
/// generated as expression evaluation).
#[derive(Debug, Clone)]
enum JsExpr {
    Const(i32),
    Local(u8),
    Add(Box<JsExpr>, Box<JsExpr>),
    Sub(Box<JsExpr>, Box<JsExpr>),
    Mul(Box<JsExpr>, Box<JsExpr>),
    And(Box<JsExpr>, Box<JsExpr>),
}

fn js_expr() -> impl Strategy<Value = JsExpr> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(JsExpr::Const),
        (0u8..3).prop_map(JsExpr::Local),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| JsExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| JsExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| JsExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| JsExpr::And(Box::new(a), Box::new(b))),
        ]
    })
}

fn emit_expr(f: &mut FunctionBuilder, e: &JsExpr) {
    match e {
        JsExpr::Const(v) => {
            f.op(Op::Const(*v as i64));
        }
        JsExpr::Local(n) => {
            f.op(Op::GetLocal(*n));
        }
        JsExpr::Add(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::Add);
        }
        JsExpr::Sub(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::Sub);
        }
        JsExpr::Mul(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::Mul);
        }
        JsExpr::And(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::And);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The JIT (on the simulator, with arbitrary mitigation sets) agrees
    /// with the reference interpreter on random expression programs.
    #[test]
    fn jit_matches_interpreter(
        e in js_expr(),
        l0 in any::<i32>(),
        l1 in any::<i32>(),
        im in any::<bool>(),
        og in any::<bool>(),
        oj in any::<bool>(),
    ) {
        let mut engine = Engine::new();
        let mut f = FunctionBuilder::new("main", 0, 3);
        f.op(Op::Const(l0 as i64));
        f.op(Op::SetLocal(0));
        f.op(Op::Const(l1 as i64));
        f.op(Op::SetLocal(1));
        emit_expr(&mut f, &e);
        f.op(Op::Return);
        let fid = engine.add_function(f.build());
        engine.set_main(fid);

        let expect = engine.interpret().expect("interpreter runs");
        let mits = JsMitigations { index_masking: im, object_guards: og, other_js: oj };
        let out = engine.run_jit(&cpu_models::zen2(), &BootParams::default(), mits);
        prop_assert_eq!(out.result, expect);
    }
}

// ---------------------------------------------------------------------
// Statistics properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Geomean lies between min and max.
    #[test]
    fn geomean_bounded(v in prop::collection::vec(0.001f64..1e9, 1..30)) {
        let g = geomean(&v);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        let max = v.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001);
    }

    /// The accumulator's mean equals the arithmetic mean.
    #[test]
    fn accumulator_mean_matches(v in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut a = Accumulator::new();
        for x in &v {
            a.add(*x);
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        prop_assert!((a.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
    }

    /// Noise streams are reproducible from the seed.
    #[test]
    fn noise_reproducible(seed in any::<u64>()) {
        let mut a = NoiseModel::paper_default(seed);
        let mut b = NoiseModel::paper_default(seed);
        for _ in 0..10 {
            prop_assert_eq!(a.factor(), b.factor());
        }
    }
}

// ---------------------------------------------------------------------
// BPF differential properties.
// ---------------------------------------------------------------------

mod bpf_props {
    use super::*;
    use sim_kernel::abi::nr;
    use sim_kernel::bpf::{self, BpfInsn};
    use sim_kernel::{userlib, Kernel};
    use uarch::isa::Inst;

    /// Random verifier-valid straight-line program over two maps.
    fn bpf_insn() -> impl Strategy<Value = BpfInsn> {
        prop_oneof![
            (0u8..8, -64i64..64).prop_map(|(d, v)| BpfInsn::MovImm(d, v)),
            (0u8..8, 0u8..8).prop_map(|(d, s)| BpfInsn::Mov(d, s)),
            (0u8..8, 0u8..8).prop_map(|(d, s)| BpfInsn::Add(d, s)),
            (0u8..8, 0u8..8).prop_map(|(d, s)| BpfInsn::Sub(d, s)),
            (0u8..8, 0u8..8).prop_map(|(d, s)| BpfInsn::Mul(d, s)),
            (0u8..8, 0i64..256).prop_map(|(d, v)| BpfInsn::AndImm(d, v)),
            (0u8..8, 0u8..8).prop_map(|(d, k)| BpfInsn::Shl(d, k)),
            (0u8..8, 0u8..8).prop_map(|(d, k)| BpfInsn::Shr(d, k)),
            (0u8..8, 0u32..2u32, 0u8..8)
                .prop_map(|(d, m, i)| BpfInsn::MapLookup { dst: d, map: m, idx: i }),
            (0u32..2u32, 0u8..8, 0u8..8)
                .prop_map(|(m, i, s)| BpfInsn::MapUpdate { map: m, idx: i, src: s }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The in-kernel JIT (running through the full syscall path, with
        /// or without verifier masking) computes exactly what the BPF
        /// reference interpreter computes — and leaves the maps in the
        /// same state.
        #[test]
        fn bpf_jit_matches_reference_interpreter(
            body in prop::collection::vec(bpf_insn(), 0..24),
            seed0 in prop::collection::vec(0u64..1000, 8),
            seed1 in prop::collection::vec(0u64..1000, 8),
            masked in any::<bool>(),
        ) {
            let mut insns = body;
            insns.push(BpfInsn::Exit);
            let verified = bpf::verify(&insns, 2).expect("generated programs verify");

            // Reference run.
            let mut ref_maps = vec![seed0.clone(), seed1.clone()];
            let expect = bpf::interpret(&verified, &mut ref_maps);

            // Kernel run.
            let cmdline = if masked { "" } else { "nospectre_v1" };
            let mut k = Kernel::boot(
                cpu_models::cascade_lake(),
                &BootParams::parse(cmdline),
            );
            let m0 = k.bpf_create_map(8);
            let m1 = k.bpf_create_map(8);
            for (i, v) in seed0.iter().enumerate() {
                k.bpf_map_write(m0, i as u64, *v);
            }
            for (i, v) in seed1.iter().enumerate() {
                k.bpf_map_write(m1, i as u64, *v);
            }
            let prog = k.bpf_load(&insns).expect("loads");
            let pid = k.spawn(move |b| {
                b.mov_imm(Reg::R1, prog as u64);
                userlib::emit_syscall(b, nr::BPF_PROG_RUN);
                b.mov_imm(Reg::R4, userlib::data_base());
                b.push(Inst::Store {
                    src: Reg::R0,
                    base: Reg::R4,
                    offset: 0,
                    width: Width::B8,
                });
                userlib::emit_exit(b);
            });
            k.start();
            k.run(100_000_000).expect("runs");
            let out = k.peek_user_data(pid, 0, 8);
            prop_assert_eq!(u64::from_le_bytes(out.try_into().unwrap()), expect);
            for i in 0..8u64 {
                prop_assert_eq!(k.bpf_map_read(m0, i), ref_maps[0][i as usize]);
                prop_assert_eq!(k.bpf_map_read(m1, i), ref_maps[1][i as usize]);
            }
        }
    }
}
