//! Property-based tests over the core invariants, driven by a
//! hand-rolled seeded generator (no external framework):
//!
//! * architectural determinism: mitigations may change *timing* and
//!   microarchitectural state, but never computed results;
//! * the JIT agrees with the reference interpreter on randomly generated
//!   bytecode programs, under random mitigation sets;
//! * the in-kernel BPF JIT agrees with the BPF reference interpreter;
//! * statistics invariants: geomean bounds, accumulator mean, noise
//!   reproducibility, no panic/NaN on empty/single/zero/infinite input,
//!   and a 95% CI that shrinks monotonically with sample count.

use js_engine::{Engine, FunctionBuilder, JsMitigations, Op};
use sim_kernel::BootParams;
use spectrebench::stats::{
    geomean, measure_until, Accumulator, NoiseModel, StatsError, StopPolicy,
};
use uarch::isa::{Cond, Inst, Reg, Width};
use uarch::machine::{Machine, NoEnv};
use uarch::mmu::{make_cr3, PageTable, Pte};
use uarch::model::CpuModel;
use uarch::predictor::PrivMode;
use uarch::ProgramBuilder;

// ---------------------------------------------------------------------
// A tiny deterministic generator (xorshift64*), replacing proptest.
// ---------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Machine-level properties.
// ---------------------------------------------------------------------

/// A tiny random straight-line program over R0–R5 plus memory in a fixed
/// arena, ending in Halt.
#[derive(Debug, Clone)]
enum RandOp {
    MovImm(u8, u32),
    Add(u8, u8),
    Sub(u8, u8),
    Mul(u8, u8),
    Xor(u8, u8),
    Shl(u8, u8),
    Store(u8, u16),
    Load(u8, u16),
    CmpJump(u8, u32),
}

fn rand_op(rng: &mut Rng) -> RandOp {
    let r = |rng: &mut Rng| rng.below(6) as u8;
    match rng.below(9) {
        0 => RandOp::MovImm(r(rng), rng.next() as u32),
        1 => RandOp::Add(r(rng), r(rng)),
        2 => RandOp::Sub(r(rng), r(rng)),
        3 => RandOp::Mul(r(rng), r(rng)),
        4 => RandOp::Xor(r(rng), r(rng)),
        5 => RandOp::Shl(r(rng), rng.below(16) as u8),
        6 => RandOp::Store(r(rng), (rng.below(512) * 8) as u16),
        7 => RandOp::Load(r(rng), (rng.below(512) * 8) as u16),
        _ => RandOp::CmpJump(r(rng), rng.next() as u32),
    }
}

fn rand_program(rng: &mut Rng, max_len: u64) -> Vec<RandOp> {
    let len = 1 + rng.below(max_len);
    (0..len).map(|_| rand_op(rng)).collect()
}

fn build_machine(model: CpuModel, ops: &[RandOp]) -> Machine {
    let mut m = Machine::new(model);
    let mut pt = PageTable::new();
    pt.map_range(0x10_0000, 0x100, 16, Pte::user(0));
    pt.map_range(0x20_0000 - 0x4000, 0x300, 4, Pte::user(0));
    let t = m.mmu.register_table(pt);
    assert!(m.mmu.load_cr3(make_cr3(t, 0, false)));
    m.set_reg(Reg::SP, 0x20_0000 - 64);
    m.mode = PrivMode::User;

    let mut b = ProgramBuilder::new();
    b.mov_imm(Reg::R7, 0x10_0000); // arena base
    for op in ops {
        let r = |i: &u8| Reg::from_index(*i as usize);
        match op {
            RandOp::MovImm(d, v) => {
                b.mov_imm(r(d), *v as u64);
            }
            RandOp::Add(d, s) => {
                b.push(Inst::Add(r(d), r(s)));
            }
            RandOp::Sub(d, s) => {
                b.push(Inst::Sub(r(d), r(s)));
            }
            RandOp::Mul(d, s) => {
                b.push(Inst::Mul(r(d), r(s)));
            }
            RandOp::Xor(d, s) => {
                b.push(Inst::Xor(r(d), r(s)));
            }
            RandOp::Shl(d, k) => {
                b.push(Inst::Shl(r(d), *k));
            }
            RandOp::Store(s, off) => {
                b.push(Inst::Store {
                    src: r(s),
                    base: Reg::R7,
                    offset: *off as i64,
                    width: Width::B8,
                });
            }
            RandOp::Load(d, off) => {
                b.push(Inst::Load {
                    dst: r(d),
                    base: Reg::R7,
                    offset: *off as i64,
                    width: Width::B8,
                });
            }
            RandOp::CmpJump(a, v) => {
                // A short forward conditional skip over one nop: exercises
                // the predictor + transient path without changing results.
                let skip = b.new_label();
                b.cmp_imm(r(a), *v as u64);
                b.jcc(Cond::Below, skip);
                b.push(Inst::Nop);
                b.bind(skip);
            }
        }
    }
    b.push(Inst::Halt);
    m.load_program(b.link(0x1000));
    m.pc = 0x1000;
    m
}

fn final_regs(model: CpuModel, ops: &[RandOp]) -> [u64; 16] {
    let mut m = build_machine(model, ops);
    m.run(&mut NoEnv, 1_000_000).expect("random program halts");
    m.regs
}

/// The architectural result of a program is identical on every CPU
/// model: speculation, SSBD, history-tagged BTBs etc. only change
/// timing and microarchitectural state.
#[test]
fn architectural_results_are_model_independent() {
    for seed in 0..64 {
        let ops = rand_program(&mut Rng::new(seed), 40);
        let reference = final_regs(cpu_models::broadwell(), &ops);
        for model in [cpu_models::ice_lake_server(), cpu_models::zen3(), cpu_models::zen()] {
            assert_eq!(final_regs(model, &ops), reference, "seed {seed}");
        }
    }
}

/// Forcing SSBD changes cycles, never results.
#[test]
fn ssbd_changes_timing_not_results() {
    use uarch::isa::{msr_index, spec_ctrl};
    for seed in 0..64 {
        let ops = rand_program(&mut Rng::new(0x55B_D000 + seed), 40);
        let plain = final_regs(cpu_models::zen3(), &ops);
        let mut m = build_machine(cpu_models::zen3(), &ops);
        m.msrs.write(msr_index::IA32_SPEC_CTRL, spec_ctrl::SSBD).unwrap();
        m.run(&mut NoEnv, 1_000_000).expect("halts");
        assert_eq!(m.regs, plain, "seed {seed}");
    }
}

/// The simulator is deterministic: two fresh machines running the
/// same program produce identical registers *and* identical cycle
/// counts (there is no hidden global state).
#[test]
fn fresh_runs_are_fully_deterministic() {
    for seed in 0..64 {
        let ops = rand_program(&mut Rng::new(0xDE7_0000 + seed), 30);
        let mut a = build_machine(cpu_models::skylake_client(), &ops);
        a.run(&mut NoEnv, 1_000_000).expect("halts");
        let mut b = build_machine(cpu_models::skylake_client(), &ops);
        b.run(&mut NoEnv, 1_000_000).expect("halts");
        assert_eq!(a.regs, b.regs, "seed {seed}");
        assert_eq!(a.cycles(), b.cycles(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// JS engine differential properties.
// ---------------------------------------------------------------------

/// Random arithmetic-only bytecode over 3 locals (always stack-balanced:
/// generated as expression evaluation).
#[derive(Debug, Clone)]
enum JsExpr {
    Const(i32),
    Local(u8),
    Add(Box<JsExpr>, Box<JsExpr>),
    Sub(Box<JsExpr>, Box<JsExpr>),
    Mul(Box<JsExpr>, Box<JsExpr>),
    And(Box<JsExpr>, Box<JsExpr>),
}

fn js_expr(rng: &mut Rng, depth: u32) -> JsExpr {
    if depth == 0 || rng.below(3) == 0 {
        return if rng.bool() {
            JsExpr::Const(rng.next() as i32)
        } else {
            JsExpr::Local(rng.below(3) as u8)
        };
    }
    let a = Box::new(js_expr(rng, depth - 1));
    let b = Box::new(js_expr(rng, depth - 1));
    match rng.below(4) {
        0 => JsExpr::Add(a, b),
        1 => JsExpr::Sub(a, b),
        2 => JsExpr::Mul(a, b),
        _ => JsExpr::And(a, b),
    }
}

fn emit_expr(f: &mut FunctionBuilder, e: &JsExpr) {
    match e {
        JsExpr::Const(v) => {
            f.op(Op::Const(*v as i64));
        }
        JsExpr::Local(n) => {
            f.op(Op::GetLocal(*n));
        }
        JsExpr::Add(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::Add);
        }
        JsExpr::Sub(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::Sub);
        }
        JsExpr::Mul(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::Mul);
        }
        JsExpr::And(a, b) => {
            emit_expr(f, a);
            emit_expr(f, b);
            f.op(Op::And);
        }
    }
}

/// The JIT (on the simulator, with arbitrary mitigation sets) agrees
/// with the reference interpreter on random expression programs.
#[test]
fn jit_matches_interpreter() {
    for seed in 0..24 {
        let mut rng = Rng::new(0x15_E7 + seed);
        let e = js_expr(&mut rng, 4);
        let l0 = rng.next() as i32;
        let l1 = rng.next() as i32;
        let mits = JsMitigations {
            index_masking: rng.bool(),
            object_guards: rng.bool(),
            other_js: rng.bool(),
        };

        let mut engine = Engine::new();
        let mut f = FunctionBuilder::new("main", 0, 3);
        f.op(Op::Const(l0 as i64));
        f.op(Op::SetLocal(0));
        f.op(Op::Const(l1 as i64));
        f.op(Op::SetLocal(1));
        emit_expr(&mut f, &e);
        f.op(Op::Return);
        let fid = engine.add_function(f.build());
        engine.set_main(fid);

        let expect = engine.interpret().expect("interpreter runs");
        let out = engine.run_jit(&cpu_models::zen2(), &BootParams::default(), mits);
        assert_eq!(out.result, expect, "seed {seed} under {mits:?}");
    }
}

// ---------------------------------------------------------------------
// Statistics properties.
// ---------------------------------------------------------------------

/// Geomean lies between min and max.
#[test]
fn geomean_bounded() {
    for seed in 0..64 {
        let mut rng = Rng::new(0x6E0 + seed);
        let n = 1 + rng.below(30);
        let v: Vec<f64> = (0..n).map(|_| 0.001 + rng.unit() * 1e9).collect();
        let g = geomean(&v);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        let max = v.iter().cloned().fold(0.0, f64::max);
        assert!(g >= min * 0.999 && g <= max * 1.001, "seed {seed}: {g} vs [{min}, {max}]");
    }
}

/// The accumulator's mean equals the arithmetic mean.
#[test]
fn accumulator_mean_matches() {
    for seed in 0..64 {
        let mut rng = Rng::new(0xACC + seed);
        let n = 1 + rng.below(100);
        let v: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let mut a = Accumulator::new();
        for x in &v {
            a.add(*x);
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            (a.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "seed {seed}: {} vs {mean}",
            a.mean()
        );
    }
}

/// Noise streams are reproducible from the seed.
#[test]
fn noise_reproducible() {
    for seed in 0..64 {
        let s = Rng::new(0x4015E + seed).next();
        let mut a = NoiseModel::paper_default(s);
        let mut b = NoiseModel::paper_default(s);
        for _ in 0..10 {
            assert_eq!(a.factor(), b.factor());
        }
    }
}

/// Degenerate inputs never panic and never smuggle NaN into results:
/// empty and constant-zero geomeans are defined, a fresh accumulator
/// reports infinite (not NaN) statistics, single samples have zero
/// variance, and infinities poison rather than crash.
#[test]
fn degenerate_statistics_inputs_are_total() {
    // geomean: empty, single, zero, infinite.
    assert_eq!(geomean(&[]), 1.0);
    assert_eq!(geomean(&[7.25]), 7.25);
    assert_eq!(geomean(&[0.0, 1.0]), 0.0);
    assert_eq!(geomean(&[f64::INFINITY, 1.0]), f64::INFINITY);
    assert_eq!(geomean(&[f64::NAN]), 0.0);

    // Accumulator: empty / single / non-finite.
    let empty = Accumulator::new();
    assert!(!empty.mean().is_nan());
    assert!(!empty.variance().is_nan());
    let mut single = Accumulator::new();
    single.add(3.0);
    assert_eq!(single.mean(), 3.0);
    assert_eq!(single.variance(), 0.0);
    let mut inf = Accumulator::new();
    inf.add(f64::INFINITY);
    assert!(inf.is_degenerate());
    let mut nan = Accumulator::new();
    nan.add(f64::NAN);
    assert!(nan.is_degenerate());

    // measure_until: a NaN sample is a typed error, not a poisoned mean.
    let policy = StopPolicy { min_runs: 3, max_runs: 5, target_relative_ci: 0.01 };
    let err = measure_until(policy, || f64::NAN);
    assert!(matches!(err, Err(StatsError::NonFiniteSample { .. })));
    // Zero samples are legitimate (relative CI guards divide-by-zero).
    let m = measure_until(policy, || 0.0).expect("zeros are finite");
    assert_eq!(m.mean, 0.0);
    assert!(!m.ci95.is_nan());
}

/// Welford's single-pass moments agree with the naive two-pass mean and
/// unbiased variance on random samples spanning many magnitudes.
#[test]
fn accumulator_matches_two_pass_variance() {
    for seed in 0..64 {
        let mut rng = Rng::new(0x2FA55 + seed);
        let n = 2 + rng.below(200);
        let scale = 10f64.powi(rng.below(9) as i32 - 3);
        let v: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * scale).collect();

        let mut a = Accumulator::new();
        for x in &v {
            a.add(*x);
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (v.len() - 1) as f64;
        assert!(
            (a.mean() - mean).abs() <= 1e-9 * (1.0 + mean.abs()),
            "seed {seed}: mean {} vs two-pass {mean}",
            a.mean()
        );
        assert!(
            (a.variance() - var).abs() <= 1e-9 * (1.0 + var),
            "seed {seed}: variance {} vs two-pass {var}",
            a.variance()
        );
    }
}

/// Geomean is permutation-invariant: reordering the slice changes only
/// floating-point rounding, never the value beyond ~1 ulp-scale noise.
#[test]
fn geomean_is_permutation_invariant() {
    for seed in 0..64 {
        let mut rng = Rng::new(0x6E02 + seed);
        let n = 2 + rng.below(40);
        let v: Vec<f64> = (0..n).map(|_| 0.001 + rng.unit() * 1e6).collect();
        let reference = geomean(&v);

        let mut shuffled = v.clone();
        // Fisher–Yates with the same deterministic generator.
        for i in (1..shuffled.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        let permuted = geomean(&shuffled);
        assert!(
            (permuted - reference).abs() <= 1e-12 * reference,
            "seed {seed}: {permuted} vs {reference}"
        );
    }
}

/// The 95% confidence interval shrinks monotonically in sample count
/// (fixed noise stream, checked at doubling intervals).
#[test]
fn ci95_shrinks_monotonically_with_samples() {
    for seed in 0..16 {
        let mut noise = NoiseModel::paper_default(0xC195 + seed);
        let mut acc = Accumulator::new();
        let mut previous = f64::INFINITY;
        for _ in 0..6 {
            for _ in 0..32 {
                acc.add(noise.apply(1000.0));
            }
            let ci = acc.ci95_half_width();
            assert!(
                ci < previous,
                "seed {seed}: ci95 must shrink, {ci} after {} samples (was {previous})",
                acc.count(),
            );
            previous = ci;
        }
    }
}

// ---------------------------------------------------------------------
// BPF differential properties.
// ---------------------------------------------------------------------

mod bpf_props {
    use super::*;
    use sim_kernel::abi::nr;
    use sim_kernel::bpf::{self, BpfInsn};
    use sim_kernel::{userlib, Kernel};
    use uarch::isa::Inst;

    /// Random verifier-valid straight-line instruction over two maps.
    fn bpf_insn(rng: &mut Rng) -> BpfInsn {
        let r = |rng: &mut Rng| rng.below(8) as u8;
        match rng.below(10) {
            0 => BpfInsn::MovImm(r(rng), rng.below(128) as i64 - 64),
            1 => BpfInsn::Mov(r(rng), r(rng)),
            2 => BpfInsn::Add(r(rng), r(rng)),
            3 => BpfInsn::Sub(r(rng), r(rng)),
            4 => BpfInsn::Mul(r(rng), r(rng)),
            5 => BpfInsn::AndImm(r(rng), rng.below(256) as i64),
            6 => BpfInsn::Shl(r(rng), r(rng)),
            7 => BpfInsn::Shr(r(rng), r(rng)),
            8 => BpfInsn::MapLookup { dst: r(rng), map: rng.below(2) as u32, idx: r(rng) },
            _ => BpfInsn::MapUpdate { map: rng.below(2) as u32, idx: r(rng), src: r(rng) },
        }
    }

    /// The in-kernel JIT (running through the full syscall path, with
    /// or without verifier masking) computes exactly what the BPF
    /// reference interpreter computes — and leaves the maps in the
    /// same state.
    #[test]
    fn bpf_jit_matches_reference_interpreter() {
        for seed in 0..24 {
            let mut rng = Rng::new(0xB9F + seed);
            let len = rng.below(24);
            let mut insns: Vec<BpfInsn> = (0..len).map(|_| bpf_insn(&mut rng)).collect();
            insns.push(BpfInsn::Exit);
            let seed0: Vec<u64> = (0..8).map(|_| rng.below(1000)).collect();
            let seed1: Vec<u64> = (0..8).map(|_| rng.below(1000)).collect();
            let masked = rng.bool();
            let verified = bpf::verify(&insns, 2).expect("generated programs verify");

            // Reference run.
            let mut ref_maps = vec![seed0.clone(), seed1.clone()];
            let expect = bpf::interpret(&verified, &mut ref_maps);

            // Kernel run.
            let cmdline = if masked { "" } else { "nospectre_v1" };
            let mut k = Kernel::boot(cpu_models::cascade_lake(), &BootParams::parse(cmdline));
            let m0 = k.bpf_create_map(8);
            let m1 = k.bpf_create_map(8);
            for (i, v) in seed0.iter().enumerate() {
                k.bpf_map_write(m0, i as u64, *v);
            }
            for (i, v) in seed1.iter().enumerate() {
                k.bpf_map_write(m1, i as u64, *v);
            }
            let prog = k.bpf_load(&insns).expect("loads");
            let pid = k.spawn(move |b| {
                b.mov_imm(Reg::R1, prog as u64);
                userlib::emit_syscall(b, nr::BPF_PROG_RUN);
                b.mov_imm(Reg::R4, userlib::data_base());
                b.push(Inst::Store {
                    src: Reg::R0,
                    base: Reg::R4,
                    offset: 0,
                    width: Width::B8,
                });
                userlib::emit_exit(b);
            });
            k.start();
            k.run(100_000_000).expect("runs");
            let out = k.peek_user_data(pid, 0, 8);
            assert_eq!(
                u64::from_le_bytes(out.try_into().unwrap()),
                expect,
                "seed {seed}"
            );
            for i in 0..8u64 {
                assert_eq!(k.bpf_map_read(m0, i), ref_maps[0][i as usize], "seed {seed}");
                assert_eq!(k.bpf_map_read(m1, i), ref_maps[1][i as usize], "seed {seed}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Journal v2 checksum properties.
// ---------------------------------------------------------------------

/// Every single-byte corruption of a valid v2 journal line is detected:
/// the line classifies as `Corrupt` mid-file, and is never misread as a
/// valid entry. This is the contract that makes `regen fsck` sound —
/// CRC-32 catches any error burst up to 32 bits, so a one-byte flip
/// anywhere (prefix, checksum field, payload) cannot replay as data.
#[test]
fn prop_journal_v2_single_byte_corruption_never_replays() {
    use spectrebench::{classify_line, crc32, LineClass};

    let mut rng = Rng::new(0x6A51);
    // A spread of payload shapes: escaped quotes in keys, every value
    // kind's syntax, random seeds and magnitudes.
    let mut payloads = vec![
        r#"{"cell":"Broadwell/getpid/[nopti]","seed":0,"kind":"meas","mean":1.083,"ci95":0.004,"n":12,"retries":1}"#.to_string(),
        r#"{"cell":"a/b \"q\"","seed":3,"kind":"num","v":[2.5]}"#.to_string(),
        r#"{"cell":"a/opt","seed":1,"kind":"optnums","v":[4,null]}"#.to_string(),
        r#"{"cell":"a/flags","seed":2,"kind":"flags","v":[1,0,null]}"#.to_string(),
        // Real cell keys contain spaces; a flip of the crc/payload
        // separator must not resynchronize on one of them.
        r#"{"cell":"Broadwell (i7-5650U)/lebench/[nopti]","seed":7,"kind":"num","v":[3.25]}"#
            .to_string(),
    ];
    for _ in 0..8 {
        payloads.push(format!(
            r#"{{"cell":"p/{}/w{}","seed":{},"kind":"num","v":[{}]}}"#,
            rng.below(100),
            rng.below(100),
            rng.below(1 << 32),
            rng.unit() * 1e6 - 5e5,
        ));
    }

    for payload in &payloads {
        let line = format!("v2 {:08x} {}", crc32(payload.as_bytes()), payload);
        // The undamaged line is valid in any position...
        assert!(
            matches!(classify_line(&line, false), LineClass::Valid(..)),
            "pristine line must be valid: {line}"
        );
        // ...and no single-byte flip survives: XOR each byte with every
        // single-bit mask (skipping flips that leave ASCII/UTF-8, since
        // the line reader is UTF-8; a non-UTF-8 journal fails earlier,
        // at read time).
        for i in 0..line.len() {
            for bit in 0..8u8 {
                let mut bytes = line.as_bytes().to_vec();
                bytes[i] ^= 1 << bit;
                if bytes[i] == b'\n' {
                    // A flip *into* a newline splits the line at read
                    // time instead; both halves then fail this same
                    // classification, covered below by truncation.
                    continue;
                }
                let Ok(corrupted) = std::str::from_utf8(&bytes) else {
                    continue;
                };
                let class = classify_line(corrupted, false);
                assert!(
                    !matches!(class, LineClass::Valid(..)),
                    "flip byte {i} bit {bit} must not replay: {corrupted}"
                );
                assert_eq!(
                    class,
                    LineClass::Corrupt,
                    "mid-file damage is corrupt, not a crash artifact: {corrupted}"
                );
            }
        }
        // Every proper prefix (a torn write) is refused too: truncated
        // on the tail, corrupt mid-file.
        for cut in 1..line.len() {
            let torn = &line[..cut];
            if !line.is_char_boundary(cut) {
                continue;
            }
            assert!(
                !matches!(classify_line(torn, true), LineClass::Valid(..)),
                "torn prefix must not replay: {torn}"
            );
            assert!(
                !matches!(classify_line(torn, false), LineClass::Valid(..)),
                "torn mid-file line must not replay: {torn}"
            );
        }
    }
}
