//! Serving determinism: `regend` must hand every client the exact
//! bytes an in-process sweep produces, no matter how many clients ask
//! at once, and no matter what faults the executor is absorbing
//! underneath.
//!
//! The servers here are in-process (bound to port 0) so the tests can
//! drain them deterministically via [`ServerHandle`]; the CI
//! `serve-smoke` job covers the spawned-binary path (SIGTERM drain,
//! release build, scripted overload).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use bench::client::{http_get, http_get_retrying, Connection, HttpResponse};
use bench::{render_artifact_block, run_regen, Artifact, RegenOptions};
use serve::{Server, ServerConfig, ServerHandle};
use spectrebench::{FaultKind, FaultPlan};

/// Scratch directory unique to (test, process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regend-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Boots a server on a free port and runs it on a background thread.
fn boot(cfg: ServerConfig) -> (String, ServerHandle, std::thread::JoinHandle<serve::RunSummary>) {
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".to_string(), ..cfg })
        .expect("bind to a free port");
    let base = format!("http://{}", server.local_addr());
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("event loop"));
    (base, handle, join)
}

/// GET that fails the test on transport errors, with a long timeout:
/// cold artifacts compute a full quick sweep behind the first request.
fn get(base: &str, path: &str) -> HttpResponse {
    http_get_retrying(&format!("{base}{path}"), Duration::from_secs(300), 10)
        .unwrap_or_else(|e| panic!("GET {path}: {e}"))
}

/// The serial oracle: one in-process sweep, rendered per artifact.
fn serial_blocks(artifacts: &[Artifact], quick: bool, opts: RegenOptions) -> Vec<String> {
    let report = run_regen(&RegenOptions {
        artifacts: artifacts.to_vec(),
        quick,
        keep_going: true,
        ..opts
    })
    .expect("serial sweep");
    assert_eq!(report.results.len(), artifacts.len());
    report.results.iter().map(render_artifact_block).collect()
}

/// Polls `/metrics` until `name` reaches `min` (or the deadline
/// passes), returning the last value seen. Close-derived counters are
/// updated when the event loop processes the close, a beat after the
/// client observes it — polling absorbs that gap without sleeps sized
/// by guesswork.
fn await_metric(base: &str, name: &str, min: f64, deadline: Duration) -> f64 {
    let start = std::time::Instant::now();
    loop {
        let v = metric(&get(base, "/metrics").text(), name);
        if v >= min || start.elapsed() > deadline {
            return v;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Reads one counter out of a Prometheus-style exposition.
fn metric(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| l.split_once(' '))
        .filter(|(k, _)| *k == name || k.starts_with(&format!("{name}{{")))
        .map(|(_, v)| v.trim().parse::<f64>().unwrap_or(0.0))
        .sum()
}

/// The tentpole guarantee: 64 concurrent clients each fetching the
/// full artifact set observe bytes identical to a serial in-process
/// sweep, the concatenated `/results` document matches too, and the
/// hot traffic is served almost entirely out of the rendered cache
/// (single-flight keeps the cold computations to one per artifact).
#[test]
fn sixty_four_parallel_clients_match_a_serial_sweep() {
    const CLIENTS: usize = 64;
    let artifacts = Artifact::ALL;
    let expect = serial_blocks(&artifacts, true, RegenOptions::default());
    let expected_results: String = expect.concat();

    let (base, handle, join) = boot(ServerConfig {
        quick: true,
        workers: 4,
        queue_capacity: 2 * CLIENTS * artifacts.len(),
        ..ServerConfig::default()
    });

    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (base, expect, mismatches) = (&base, &expect, &mismatches);
            s.spawn(move || {
                // Stagger the artifact order per client so the cold
                // phase exercises coalescing across different flights.
                for i in 0..artifacts.len() {
                    let idx = (i + client) % artifacts.len();
                    let a = artifacts[idx];
                    let r = get(base, &format!("/artifact/{}", a.name()));
                    assert_eq!(r.status, 200, "client {client}: {}", a.name());
                    if r.text() != expect[idx] {
                        mismatches.fetch_add(1, Ordering::SeqCst);
                        eprintln!("client {client}: byte mismatch on {}", a.name());
                    }
                }
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::SeqCst), 0, "every client sees the serial bytes");

    let results = get(&base, "/results");
    assert_eq!(results.status, 200);
    assert_eq!(results.text(), expected_results, "/results is the whole serial document");

    // A hot pass: every artifact again, all answered from the rendered
    // cache (>= 90% hit rate is the acceptance bar; in-process it is
    // exactly 100% because every flight already landed).
    let before = metric(&get(&base, "/metrics").text(), "regend_artifact_cache_hits_total");
    for a in artifacts {
        assert_eq!(get(&base, &format!("/artifact/{}", a.name())).status, 200);
    }
    let metrics = get(&base, "/metrics").text();
    let hot_hits = metric(&metrics, "regend_artifact_cache_hits_total") - before;
    assert!(
        hot_hits >= 0.9 * artifacts.len() as f64,
        "hot pass mostly cache hits: {hot_hits} of {}",
        artifacts.len()
    );
    // Cold-phase accounting: every artifact request beyond the first
    // computation per artifact was a rendered-cache hit or coalesced
    // into the in-flight computation.
    let requests = CLIENTS * artifacts.len();
    let deduped = metric(&metrics, "regend_artifact_cache_hits_total")
        + metric(&metrics, "regend_coalesced_total");
    assert!(
        deduped >= (requests - artifacts.len()) as f64,
        "single-flight + cache absorbed the fan-in: {deduped} of {requests}"
    );
    assert!(metric(&metrics, "regend_requests_total") >= requests as f64);
    assert_eq!(metric(&metrics, "regend_rejected_total"), 0.0, "queue was sized for the burst");

    handle.drain();
    let summary = join.join().expect("server thread");
    assert!(summary.served >= (requests + artifacts.len()) as u64);
    assert_eq!(summary.rejected, 0);
}

/// Fault tolerance is invisible on the wire: a server absorbing
/// injected compute panics and torn journal writes returns bytes
/// identical to a serial sweep under the same fault plan.
#[test]
fn faulted_server_matches_faulted_serial_sweep() {
    let dir = scratch("faults");
    // Transient faults only: two panics per matching cell (retry budget
    // is three) and torn writes on the journal append path. Both
    // recover, so the rendering must be the clean bytes.
    let plan = FaultPlan::new()
        .fail_cell("mitigations", FaultKind::PanicFault, Some(2))
        .fail_cell("table9", FaultKind::TornWrite, Some(3));
    let artifacts = [Artifact::Table1, Artifact::Table2, Artifact::Table9, Artifact::Table10];

    let expect = serial_blocks(
        &artifacts,
        true,
        RegenOptions {
            inject: Some(plan.clone()),
            resume: Some(dir.join("serial.jsonl")),
            ..RegenOptions::default()
        },
    );
    // The clean oracle: the faulted sweep must not have degraded.
    let clean = serial_blocks(&artifacts, true, RegenOptions::default());
    assert_eq!(expect, clean, "transient faults fully recovered serially");

    let (base, handle, join) = boot(ServerConfig {
        quick: true,
        workers: 2,
        inject: Some(plan),
        journal: Some(dir.join("served.jsonl")),
        ..ServerConfig::default()
    });

    std::thread::scope(|s| {
        for _ in 0..8 {
            let (base, expect) = (&base, &expect);
            s.spawn(move || {
                for (i, a) in artifacts.iter().enumerate() {
                    let r = get(base, &format!("/artifact/{}", a.name()));
                    assert_eq!(r.status, 200);
                    assert_eq!(r.text(), expect[i], "{} under faults", a.name());
                    assert!(
                        r.header("x-regend-degraded").is_none(),
                        "{} should have recovered, not degraded",
                        a.name()
                    );
                }
            });
        }
    });

    // The journal absorbed the torn writes and still recorded the rest.
    assert!(dir.join("served.jsonl").exists());

    handle.drain();
    let summary = join.join().expect("server thread");
    assert!(summary.stats.faults_injected > 0, "the plan actually fired");
    assert!(summary.stats.retries > 0, "panics cost retries");
    assert_eq!(summary.stats.cells_failed, 0, "every cell recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Individual cells are queryable once their artifact has been
/// computed, in the journal's JSON payload shape, and unknown names
/// are guided toward valid ones.
#[test]
fn cell_queries_and_name_suggestions() {
    let (base, handle, join) = boot(ServerConfig {
        quick: true,
        workers: 2,
        ..ServerConfig::default()
    });

    // /cell computes the owning artifact on demand (table1's cells are
    // keyed <microarch>/mitigations, without the experiment segment).
    let r = get(&base, "/cell/table1/Broadwell/mitigations?seed=0");
    assert_eq!(r.status, 200, "{}", r.text());
    assert_eq!(r.header("content-type"), Some("application/json"));
    let body = r.text();
    assert!(body.contains("\"cell\":\"Broadwell/mitigations\""), "{body}");
    assert!(body.contains("\"seed\":0"), "{body}");
    assert!(body.contains("\"kind\":"), "{body}");

    // Unknown cell under a real experiment: 404 with a hint, not 500.
    let r = get(&base, "/cell/table1/NoSuchCpu/mitigations");
    assert_eq!(r.status, 404);
    assert!(r.text().contains("no cell"), "{}", r.text());

    // Typo'd artifact names suggest the closest valid one.
    let r = get(&base, "/artifact/figre2");
    assert_eq!(r.status, 404);
    assert!(r.text().contains("did you mean: figure2?"), "{}", r.text());
    let r = get(&base, "/cell/tabel1/Broadwell/mitigations");
    assert_eq!(r.status, 404);
    assert!(r.text().contains("did you mean: table1?"), "{}", r.text());

    // Non-default seeds are refused (the golden pin is seed 0).
    let r = get(&base, "/artifact/table1?seed=7");
    assert_eq!(r.status, 400);

    // The artifact index lists every name.
    let index = get(&base, "/artifacts").text();
    for a in Artifact::ALL {
        assert!(index.contains(a.name()), "index missing {}", a.name());
    }

    let health = get(&base, "/healthz");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    handle.drain();
    join.join().expect("server thread");
}

/// Backpressure: with one worker busy and a one-slot queue, a burst of
/// clients sees 429 + `Retry-After` — and the polite retrying client
/// eventually gets the real bytes.
#[test]
fn overload_answers_429_with_retry_after() {
    let (base, handle, join) = boot(ServerConfig {
        quick: true,
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });

    // Occupy the single worker with a slow cold artifact.
    let slow = {
        let base = base.clone();
        std::thread::spawn(move || get(&base, "/artifact/discussion"))
    };
    std::thread::sleep(Duration::from_millis(500));

    // Flood: plain GETs with no 429-retry, concurrently.
    let rejected = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let (base, rejected) = (&base, &rejected);
            s.spawn(move || {
                let r = http_get(&format!("{base}/artifact/discussion"), Duration::from_secs(300))
                    .expect("transport");
                if r.status == 429 {
                    assert_eq!(r.header("retry-after"), Some("1"), "429 names a retry delay");
                    assert!(r.text().contains("queue full"), "{}", r.text());
                    rejected.fetch_add(1, Ordering::SeqCst);
                } else {
                    assert_eq!(r.status, 200);
                }
            });
        }
    });
    assert!(
        rejected.load(Ordering::SeqCst) >= 1,
        "a one-slot queue under an 8-client burst must shed load"
    );

    let slow = slow.join().expect("slow client");
    assert_eq!(slow.status, 200);

    handle.drain();
    let summary = join.join().expect("server thread");
    assert_eq!(summary.rejected, rejected.load(Ordering::SeqCst) as u64);
}

/// Keep-alive must change the framing, never the bytes: 64 clients
/// each holding ONE socket and sending interleaved pipelined bursts
/// see responses byte-identical to the serial sweep and to the
/// close-per-request wire pin — with transient faults injected
/// underneath, exactly as the thread-per-connection front end was
/// pinned in PR 5.
#[test]
fn keepalive_pipelined_bursts_match_serial_and_close_framing() {
    const CLIENTS: usize = 64;
    const ROUNDS: usize = 3;
    let artifacts = [Artifact::Table1, Artifact::Table2, Artifact::Table9, Artifact::Table10];
    let paths: Vec<String> =
        artifacts.iter().map(|a| format!("/artifact/{}", a.name())).collect();
    // Transient compute panics under the retry budget: the faulted
    // serial test already pins that these recover to the clean bytes,
    // so the clean sweep is the oracle here too.
    let plan = FaultPlan::new().fail_cell("mitigations", FaultKind::PanicFault, Some(2));
    let expect = serial_blocks(&artifacts, true, RegenOptions::default());

    let (base, handle, join) = boot(ServerConfig {
        quick: true,
        workers: 2,
        queue_capacity: 2 * CLIENTS * artifacts.len(),
        inject: Some(plan),
        ..ServerConfig::default()
    });

    // The close-per-request wire pin: one `Connection: close` GET per
    // artifact (this is also the cold phase — each artifact computes
    // once, through the injected faults).
    for (i, path) in paths.iter().enumerate() {
        let r = http_get(&format!("{base}{path}"), Duration::from_secs(300))
            .unwrap_or_else(|e| panic!("close-framing GET {path}: {e}"));
        assert_eq!(r.status, 200, "{path}");
        assert_eq!(r.text(), expect[i], "close framing disagrees with the serial sweep");
    }

    let mismatches = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (base, paths, expect, mismatches) = (&base, &paths, &expect, &mismatches);
            s.spawn(move || {
                let mut conn =
                    Connection::to_url(base, Duration::from_secs(300)).expect("client url");
                for _ in 0..ROUNDS {
                    // Stagger the order per client so concurrent bursts
                    // interleave different artifacts on the wire.
                    let order: Vec<usize> =
                        (0..paths.len()).map(|i| (i + client) % paths.len()).collect();
                    let burst: Vec<&str> =
                        order.iter().map(|&i| paths[i].as_str()).collect();
                    let responses = conn.pipeline(&burst).expect("pipelined burst");
                    assert_eq!(responses.len(), burst.len());
                    for (r, &idx) in responses.iter().zip(&order) {
                        assert_eq!(r.status, 200, "client {client}: {}", paths[idx]);
                        if r.text() != expect[idx] {
                            mismatches.fetch_add(1, Ordering::SeqCst);
                            eprintln!("client {client}: keep-alive mismatch on {}", paths[idx]);
                        }
                    }
                }
                // The whole session rode one socket: pipelining and
                // keep-alive actually happened, this was not 768
                // reconnects that accidentally pass.
                assert_eq!(conn.sockets_opened(), 1, "client {client} reconnected");
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::SeqCst), 0, "keep-alive bytes == serial bytes");

    // Keep-alive accounting (counted when the event loop processes each
    // close, so poll): every client connection closed having carried
    // ROUNDS bursts, and the loop observed pipelined reads.
    let per_client = (ROUNDS * paths.len()) as f64;
    let closed =
        await_metric(&base, "regend_keepalive_closed_total", CLIENTS as f64, Duration::from_secs(10));
    assert!(closed >= CLIENTS as f64, "clients closed: {closed}");
    let ka_requests = metric(&get(&base, "/metrics").text(), "regend_keepalive_requests_total");
    assert!(
        ka_requests >= CLIENTS as f64 * per_client,
        "requests carried over keep-alive: {ka_requests}"
    );
    let depth_samples = metric(&get(&base, "/metrics").text(), "regend_pipeline_depth_count");
    assert!(depth_samples >= 1.0, "no pipelined read was ever observed");

    handle.drain();
    let summary = join.join().expect("server thread");
    assert!(summary.stats.faults_injected > 0, "the plan actually fired");
    assert!(summary.connections >= CLIENTS as u64);
    assert!(summary.served >= (CLIENTS * ROUNDS * paths.len() + paths.len()) as u64);
    assert_eq!(summary.rejected, 0, "queue was sized for the burst");
    assert_eq!(summary.disconnects, 0, "clean keep-alive closes are not disconnects");
}

/// Connection hygiene: a client that stalls mid-request is idle-reaped
/// without touching anyone else, and a client that vanishes with a
/// response owed is detected, counted in `regend_disconnects_total`,
/// and its admitted work accounted — the event loop keeps serving
/// throughout.
#[test]
fn stalled_and_vanished_clients_are_reaped_without_poisoning_the_loop() {
    use std::io::{Read, Write};

    let (base, handle, join) = boot(ServerConfig {
        quick: true,
        workers: 1,
        idle_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let addr = base.strip_prefix("http://").expect("base url").to_string();

    // Warm the cheap artifact so its responses come from the rendered
    // cache while the single worker is busy later.
    assert_eq!(get(&base, "/artifact/table2").status, 200);

    // --- A peer that sends half a request head and stalls. ---
    let mut stall = std::net::TcpStream::connect(&addr).expect("connect");
    stall.write_all(b"GET /healthz HTT").expect("partial head");
    stall.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    // The idle sweep must reap it (close, not hang): EOF within the
    // read timeout, well after the 2s idle deadline.
    let mut sink = [0u8; 64];
    match stall.read(&mut sink) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("stalled connection got {n} unexpected byte(s)"),
    }
    let idle = await_metric(&base, "regend_idle_timeouts_total", 1.0, Duration::from_secs(10));
    assert!(idle >= 1.0, "stall reap counted: {idle}");

    // --- A peer that vanishes with a response owed. ---
    // Pipelined pair: a cached hit (whose response lands in the client
    // kernel, unread) and a slow cold artifact (admitted to the single
    // worker). Closing with unread data makes TCP send RST, so the
    // event loop sees the death immediately — while the slow slot is
    // still owed — and must free the connection without waiting for
    // the computation.
    {
        let mut doomed = std::net::TcpStream::connect(&addr).expect("connect");
        doomed
            .write_all(
                b"GET /artifact/table2 HTTP/1.1\r\nHost: x\r\n\r\n\
                  GET /artifact/discussion HTTP/1.1\r\nHost: x\r\n\r\n",
            )
            .expect("pipelined pair");
        // Let the cached response reach this socket's receive buffer.
        std::thread::sleep(Duration::from_millis(300));
        // Drop without reading: RST.
    }
    let disconnects =
        await_metric(&base, "regend_disconnects_total", 1.0, Duration::from_secs(30));
    assert!(disconnects >= 1.0, "vanished client counted: {disconnects}");

    // Neither casualty poisoned the loop: fast and slow paths both
    // still answer (the latter also proves the worker pool survived
    // the orphaned computation).
    assert_eq!(get(&base, "/healthz").status, 200);
    assert_eq!(get(&base, "/artifact/table9").status, 200);

    handle.drain();
    let summary = join.join().expect("server thread");
    assert!(summary.idle_timeouts >= 1, "summary counts the stall reap");
    assert!(summary.disconnects >= 1, "summary counts the vanish");
    assert_eq!(summary.stats.cells_failed, 0);
}

/// Graceful drain: `POST /shutdown` answers the in-flight queue, then
/// the listener goes away; new connections are refused rather than
/// silently hung.
#[test]
fn shutdown_drains_and_stops_accepting() {
    let (base, handle, join) = boot(ServerConfig {
        quick: true,
        workers: 2,
        ..ServerConfig::default()
    });
    assert_eq!(get(&base, "/artifact/table2").status, 200);
    assert!(!handle.is_draining());

    // POST via a raw socket (the regen client only speaks GET).
    {
        use std::io::{Read, Write};
        let addr = base.strip_prefix("http://").expect("base url");
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.write_all(b"POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
            .expect("send shutdown");
        let mut reply = String::new();
        let _ = s.read_to_string(&mut reply);
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.ends_with("draining\n"), "{reply}");
    }
    assert!(handle.is_draining());

    let summary = join.join().expect("server thread");
    assert!(summary.served >= 2);

    // The listener is gone: connecting now fails fast.
    let addr = base.strip_prefix("http://").expect("base url");
    let refused = std::net::TcpStream::connect_timeout(
        &addr.parse().expect("socket addr"),
        Duration::from_secs(2),
    );
    assert!(refused.is_err(), "post-drain connections are refused");
}
